//! VIPS-style block tree extraction.
//!
//! "In VIPS, each page is represented as a 'tree structure' of blocks.
//! These blocks are delimited based on: (i) the DOM tree of the page,
//! and (ii) the separators between them" (paper §III).
//!
//! Here a *block* is a block-level element whose rectangle is visually
//! significant (non-trivial area) and which is separated from its
//! siblings by vertical whitespace or by being a distinct block-level
//! child. The block tree nests blocks exactly as their rectangles nest.

use crate::layout::{is_block_element, LayoutMap, LayoutOptions, Rect};
use objectrunner_html::{Document, NodeId, NodeKind};

/// One visual block.
#[derive(Debug, Clone)]
pub struct Block {
    /// The DOM element this block corresponds to.
    pub node: NodeId,
    /// Its rectangle from the layout pass.
    pub rect: Rect,
    /// Child blocks (indices into [`BlockTree::blocks`]).
    pub children: Vec<usize>,
    /// Nesting depth in the block tree (root block = 0).
    pub depth: usize,
}

/// The page's block hierarchy.
#[derive(Debug, Clone, Default)]
pub struct BlockTree {
    /// All blocks; index 0 is the root block when non-empty.
    pub blocks: Vec<Block>,
}

impl BlockTree {
    /// The root block, if the page produced any.
    pub fn root(&self) -> Option<&Block> {
        self.blocks.first()
    }

    /// Iterate over blocks at a given depth.
    pub fn at_depth(&self, depth: usize) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(move |b| b.depth == depth)
    }

    /// Leaf blocks (no block children).
    pub fn leaves(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(|b| b.children.is_empty())
    }
}

/// Minimum area (fraction of viewport width × one line) for a block to
/// be visually significant.
const MIN_BLOCK_AREA: f64 = 400.0;

/// Build the block tree of `doc` from its layout.
pub fn block_tree(doc: &Document, layout: &LayoutMap, _opts: &LayoutOptions) -> BlockTree {
    let mut tree = BlockTree::default();
    // The root block is <body> if present, else the document root.
    let root_node = doc
        .elements_by_tag(doc.root(), "body")
        .first()
        .copied()
        .unwrap_or_else(|| doc.root());
    let root_rect = layout.get(&root_node).copied().unwrap_or(Rect::ZERO);
    tree.blocks.push(Block {
        node: root_node,
        rect: root_rect,
        children: Vec::new(),
        depth: 0,
    });
    collect_blocks(doc, layout, root_node, 0, 1, &mut tree);
    tree
}

/// Recursively find block-level descendants of `parent_node` and attach
/// them under block index `parent_idx`.
fn collect_blocks(
    doc: &Document,
    layout: &LayoutMap,
    parent_node: NodeId,
    parent_idx: usize,
    depth: usize,
    tree: &mut BlockTree,
) {
    for &child in doc.children(parent_node) {
        let is_block = matches!(
            &doc.node(child).kind,
            NodeKind::Element { name, .. } if is_block_element(*name)
        );
        if is_block {
            let rect = layout.get(&child).copied().unwrap_or(Rect::ZERO);
            if rect.area() >= MIN_BLOCK_AREA {
                let idx = tree.blocks.len();
                tree.blocks.push(Block {
                    node: child,
                    rect,
                    children: Vec::new(),
                    depth,
                });
                tree.blocks[parent_idx].children.push(idx);
                collect_blocks(doc, layout, child, idx, depth + 1, tree);
            } else {
                // Too small to be a visual block of its own; its block
                // descendants may still qualify.
                collect_blocks(doc, layout, child, parent_idx, depth, tree);
            }
        } else {
            // Inline subtree: does not create blocks.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout_document;
    use objectrunner_html::parse;

    fn tree_of(html: &str) -> (Document, BlockTree) {
        let doc = parse(html);
        let opts = LayoutOptions::default();
        let layout = layout_document(&doc, &opts);
        let tree = block_tree(&doc, &layout, &opts);
        (doc, tree)
    }

    #[test]
    fn root_block_is_body() {
        let (doc, tree) = tree_of("<html><body><div>hello world content</div></body></html>");
        let root = tree.root().expect("non-empty page");
        assert_eq!(doc.tag_name(root.node), Some("body"));
    }

    #[test]
    fn sibling_divs_become_sibling_blocks() {
        let txt = "some sufficiently long content here ".repeat(3);
        let (doc, tree) = tree_of(&format!(
            "<body><div id=\"a\">{txt}</div><div id=\"b\">{txt}</div></body>"
        ));
        let root_children = &tree.root().expect("root").children;
        assert_eq!(root_children.len(), 2);
        for &i in root_children {
            assert_eq!(doc.tag_name(tree.blocks[i].node), Some("div"));
            assert_eq!(tree.blocks[i].depth, 1);
        }
    }

    #[test]
    fn nested_divs_nest_in_tree() {
        let txt = "enough text to be a real visual block ".repeat(3);
        let (_, tree) = tree_of(&format!(
            "<body><div id=\"outer\"><div id=\"inner\">{txt}</div></div></body>"
        ));
        let root = tree.root().expect("root");
        assert_eq!(root.children.len(), 1);
        let outer = &tree.blocks[root.children[0]];
        assert_eq!(outer.children.len(), 1);
        let inner = &tree.blocks[outer.children[0]];
        assert!(outer.rect.contains(&inner.rect));
    }

    #[test]
    fn tiny_blocks_are_skipped_but_descendants_kept() {
        // The outer div holds only a tiny inline marker; the inner list
        // is big. The list should attach directly under the root block.
        let items: String = (0..20)
            .map(|i| format!("<li>item number {i} with some text</li>"))
            .collect();
        let (doc, tree) = tree_of(&format!("<body><div>x</div><ul>{items}</ul></body>"));
        let root = tree.root().expect("root");
        let child_tags: Vec<_> = root
            .children
            .iter()
            .map(|&i| doc.tag_name(tree.blocks[i].node).unwrap_or(""))
            .collect();
        assert!(child_tags.contains(&"ul"), "tags: {child_tags:?}");
    }

    #[test]
    fn leaves_have_no_children() {
        let txt = "leaf content that is long enough to count as a block ".repeat(2);
        let (_, tree) = tree_of(&format!("<body><div><p>{txt}</p><p>{txt}</p></div></body>"));
        for leaf in tree.leaves() {
            assert!(leaf.children.is_empty());
        }
        assert!(tree.leaves().count() >= 2);
    }

    #[test]
    fn empty_page_has_just_root() {
        let (_, tree) = tree_of("");
        assert_eq!(tree.blocks.len(), 1);
    }
}
