//! Object-store trajectory point (`BENCH_objstore.json`).
//!
//! Exercises the durable sink at crawl scale: N synthetic concert
//! sightings are ingested in page-sized batches (a second pass
//! re-offers an overlapping slice with an extra attribute, so the
//! dedup/fusion path pays its full cost), then the store answers a
//! query mix — point `get`s, filtered scans, cursor pagination — and
//! compacts. The document records:
//!
//! * `ingest_objects_per_sec` — offered objects through `ingest`,
//!   including identity-key construction, fusion and the per-batch
//!   manifest commit;
//! * `query_p50_micros` / `query_p99_micros` — quantiles of the
//!   `objectrunner.objstore.query.latency_micros` histogram the store
//!   itself publishes (the number the daemon's `trace` command shows);
//! * `reopen_ok` / `compact_preserves_reads` — the durability sanity
//!   gates: a cold reopen and a compaction must both leave every
//!   record byte-identical.
//!
//! Output is one JSON document on stdout; `ci.sh` redirects it into a
//! scratch file and checks the sanity fields, and a recorded run is
//! committed as `BENCH_objstore.json` at the repository root.

use objectrunner_objstore::{IngestContext, IngestObject, ObjectStore, Query};
use objectrunner_obs::{Clock, Obs, DEFAULT_SPAN_CAPACITY};
use objectrunner_sod::Instance;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Offers per ingest batch — the shape a 100-objects-per-page crawl
/// produces, so every batch pays one manifest commit like the daemon.
const BATCH: usize = 100;

fn concert(i: usize, with_theater: bool) -> Instance {
    // Index-derived values: deterministic, no RNG, ~unique keys.
    let mut fields = vec![
        Instance::atomic("artist", &format!("artist {:05}", i)),
        Instance::atomic("date", &format!("May {}, 20{:02}", 1 + i % 28, 10 + i % 10)),
    ];
    if with_theater {
        fields.push(Instance::atomic("theater", &format!("theater {}", i % 97)));
    }
    Instance::Tuple {
        name: "concert".into(),
        fields,
    }
}

fn ingest_batches(
    store: &mut ObjectStore,
    source: &str,
    range: std::ops::Range<usize>,
    with_theater: bool,
) -> u64 {
    let ctx = IngestContext {
        source,
        domain: "Concerts",
        wrapper_revision: 1,
        repaired_from: None,
        extracted_unix_micros: 1_700_000_000_000_000,
        confidence: 0.9,
        key_attrs: &["artist", "date"],
    };
    let mut offered = 0;
    let mut at = range.start;
    while at < range.end {
        let hi = (at + BATCH).min(range.end);
        let offers: Vec<IngestObject> = (at..hi)
            .map(|i| IngestObject {
                instance: concert(i, with_theater),
                page_id: format!("page-{:04}", i / BATCH),
            })
            .collect();
        offered += offers.len() as u64;
        store.ingest(offers, &ctx, None).expect("bench ingest");
        at = hi;
    }
    offered
}

/// Canonical rendering of every live record, one full pagination walk.
fn contents(dir: &Path, obs: &Obs) -> Vec<String> {
    let store = ObjectStore::open(dir, obs.clone()).expect("reopen");
    let mut out = Vec::new();
    let mut cursor = None;
    loop {
        let result = store
            .query(
                &Query {
                    limit: 500,
                    cursor: cursor.take(),
                    ..Query::all()
                },
                None,
            )
            .expect("walk");
        out.extend(result.hits.iter().map(|r| r.render()));
        match result.next_cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let objects: usize = arg("--objects", 50_000);
    let queries: usize = arg("--queries", 2_000);

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "objectrunner-bench-objstore-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::with_clock_and_capacity(Clock::system(), DEFAULT_SPAN_CAPACITY);

    // Ingest: a first crawl over everything, then a second source
    // re-sighting the front half with venue data (fusion writes a new
    // version for each) — both timed together as the sink's cost.
    let mut store = ObjectStore::open(&dir, obs.clone()).expect("fresh store");
    let t0 = Instant::now();
    let mut offered = ingest_batches(&mut store, "zvents", 0..objects, false);
    offered += ingest_batches(&mut store, "yellowpages", 0..objects / 2, true);
    let ingest_micros = t0.elapsed().as_micros();
    let ingest_objects_per_sec = offered as f64 / (ingest_micros as f64 / 1e6);
    let status = store.status();

    // Query mix: point gets by key, normalized filter scans, and a
    // full pagination walk, all feeding the store's own histogram.
    let t0 = Instant::now();
    let mut hits = 0usize;
    for q in 0..queries {
        match q % 4 {
            0 => {
                let i = (q * 7919) % objects;
                let key = format!(
                    "artist=artist {:05}|date=may {} 20{:02}",
                    i,
                    1 + i % 28,
                    10 + i % 10
                );
                hits += store.get(&key).expect("get").is_some() as usize;
            }
            1 => {
                let result = store
                    .query(
                        &Query::from_json(
                            &objectrunner_store::Json::parse(&format!(
                                r#"{{"where":[{{"attr":"theater","value":"theater {}"}}],"limit":20}}"#,
                                q % 97
                            ))
                            .unwrap(),
                        )
                        .unwrap(),
                        None,
                    )
                    .expect("filter query");
                hits += result.hits.len();
            }
            _ => {
                let cursor = format!("artist=artist {:05}", (q * 31) % objects);
                let result = store
                    .query(
                        &Query {
                            limit: 50,
                            cursor: Some(cursor),
                            ..Query::all()
                        },
                        None,
                    )
                    .expect("page query");
                hits += result.hits.len();
            }
        }
    }
    let query_micros = t0.elapsed().as_micros();
    let snapshot = obs.snapshot();
    let h = snapshot.histogram("objectrunner.objstore.query.latency_micros");
    let (query_p50, query_p99) = (h.quantile(0.5), h.quantile(0.99));

    // Durability gates: cold reopen, then compact, must not change a
    // single record byte.
    let before = contents(&dir, &obs);
    let reopen_ok = before.len() == status.live_objects as usize;
    let t0 = Instant::now();
    let report = store.compact(1_700_000_099_000_000, None).expect("compact");
    let compact_micros = t0.elapsed().as_micros();
    drop(store);
    let compact_preserves_reads = contents(&dir, &obs) == before;

    let _ = std::fs::remove_dir_all(&dir);

    println!("{{");
    println!("  \"bench\": \"objstore\",");
    println!("  \"objects\": {objects},");
    println!("  \"offered\": {offered},");
    println!("  \"live_objects\": {},", status.live_objects);
    println!("  \"fused\": {},", status.fused);
    println!("  \"segments\": {},", status.segments);
    println!("  \"store_bytes\": {},", status.bytes);
    println!("  \"ingest_micros\": {ingest_micros},");
    println!("  \"ingest_objects_per_sec\": {ingest_objects_per_sec:.1},");
    println!("  \"queries\": {queries},");
    println!("  \"query_hits\": {hits},");
    println!("  \"query_micros\": {query_micros},");
    println!("  \"query_p50_micros\": {query_p50},");
    println!("  \"query_p99_micros\": {query_p99},");
    println!("  \"compact_micros\": {compact_micros},");
    println!("  \"compact_dropped_records\": {},", report.dropped_records);
    println!("  \"reopen_ok\": {reopen_ok},");
    println!("  \"compact_preserves_reads\": {compact_preserves_reads}");
    println!("}}");
}
