//! Wrapper generation (paper §III-C, Algorithm 2 end-to-end).
//!
//! Ties together role differentiation, template construction and SOD
//! matching, and carries the wrapper's quality estimate: "a good
//! wrapper (in short, one built with no or very few conflicting
//! annotations)".

use crate::annotate::AnnotatedPage;
use crate::extract::extract_page;
use crate::matching::{match_sod, partial_match_possible, MatchError, SodMapping};
use crate::roles::{differentiate, DiffConfig};
use crate::template::{build_template, TemplateTree};
use crate::tokens::SourceTokens;
use objectrunner_html::Document;
use objectrunner_sod::{Instance, Sod, SodNode};

/// Wrapper-generation failures.
#[derive(Debug, Clone)]
pub enum WrapperError {
    /// §III-E: the abort condition fired — no partial matching of the
    /// SOD into the (current) template tree can exist.
    Aborted,
    /// The final template tree does not match the SOD.
    NoMatch(MatchError),
    /// The sample was empty.
    EmptySample,
}

impl std::fmt::Display for WrapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WrapperError::Aborted => write!(f, "wrapper generation aborted (no partial matching)"),
            WrapperError::NoMatch(e) => write!(f, "SOD does not match the template: {e}"),
            WrapperError::EmptySample => write!(f, "empty page sample"),
        }
    }
}

impl std::error::Error for WrapperError {}

/// An extraction wrapper: template tree + SOD mapping.
#[derive(Debug, Clone)]
pub struct Wrapper {
    pub template: TemplateTree,
    pub mapping: SodMapping,
    /// Tuple name of the SOD root (names extracted objects).
    pub object_name: String,
    /// Quality estimate in `(0, 1]` — degraded by conflicting
    /// annotations and merged fields.
    pub quality: f64,
    /// Conflict-driven role splits during generation.
    pub conflict_splits: usize,
    /// Differentiation rounds run.
    pub rounds: usize,
    /// The support parameter the wrapper was built with.
    pub support: usize,
}

impl Wrapper {
    /// Extract all objects from one page.
    pub fn extract_document(&self, doc: &Document) -> Vec<Instance> {
        extract_page(&self.template, &self.mapping, &self.object_name, doc)
    }

    /// Extract from every page of a source.
    pub fn extract_source(&self, docs: &[Document]) -> Vec<Instance> {
        docs.iter().flat_map(|d| self.extract_document(d)).collect()
    }
}

/// Generate a wrapper from an annotated sample (Algorithm 2 + §III-D
/// matching). `diff_cfg.eq.min_support` is the support parameter the
/// self-validation loop varies (3–5 in the paper).
pub fn generate_wrapper(
    sample: &[AnnotatedPage],
    sod: &Sod,
    diff_cfg: &DiffConfig,
) -> Result<Wrapper, WrapperError> {
    if sample.is_empty() {
        return Err(WrapperError::EmptySample);
    }
    let mut src = SourceTokens::from_pages(sample);
    // The SOD's set-valued types guide role differentiation (§III-C).
    let mut cfg = diff_cfg.clone();
    if cfg.set_types.is_empty() {
        cfg.set_types = sod
            .set_entity_types()
            .into_iter()
            .map(str::to_owned)
            .collect();
    }
    let outcome = differentiate(&mut src, &cfg, |_, s| !partial_match_possible(s, sod));
    if outcome.aborted {
        return Err(WrapperError::Aborted);
    }
    let template = build_template(&src, &outcome.analysis);
    let mapping = match_sod(&template, sod).map_err(WrapperError::NoMatch)?;

    let merged = mapping.record.has_merged_fields();
    let mut quality = 1.0 / (1.0 + outcome.conflict_splits as f64);
    if merged {
        quality *= 0.8;
    }
    Ok(Wrapper {
        object_name: object_name(sod),
        template,
        mapping,
        quality,
        conflict_splits: outcome.conflict_splits,
        rounds: outcome.rounds,
        support: diff_cfg.eq.min_support,
    })
}

fn object_name(sod: &Sod) -> String {
    match sod.root() {
        SodNode::Tuple { name, .. } => name.clone(),
        _ => "object".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use objectrunner_html::{parse, NodeKind};
    use objectrunner_sod::{Multiplicity, SodBuilder};
    use std::collections::HashMap as Map;

    fn annotated_pages(counts: &[usize]) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .map(|&n| {
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><div>Artist{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                let mut page = AnnotatedPage {
                    doc: parse(&format!("<body><ul>{recs}</ul></body>")),
                    annotations: Map::new(),
                };
                let texts: Vec<_> = page
                    .doc
                    .descendants(page.doc.root())
                    .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                    .collect();
                for (idx, t) in texts.iter().enumerate() {
                    let type_name = if idx % 2 == 0 { "artist" } else { "date" };
                    page.annotations.insert(
                        *t,
                        vec![Annotation {
                            type_name: type_name.to_owned(),
                            confidence: 0.9,
                        }],
                    );
                }
                page
            })
            .collect()
    }

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    #[test]
    fn end_to_end_wrapper_extracts_objects() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        assert!(wrapper.quality > 0.5);
        assert_eq!(wrapper.object_name, "concert");
        let unseen =
            parse("<body><ul><li><div>Metallica</div><div>May 11, 2010</div></li></ul></body>");
        let objects = wrapper.extract_document(&unseen);
        assert_eq!(objects.len(), 1);
        assert_eq!(
            objects[0].to_string(),
            "concert{artist=\"Metallica\", date=\"May 11, 2010\"}"
        );
    }

    #[test]
    fn aborts_when_two_required_types_are_never_annotated() {
        // One missing type is completable by elimination; two fire the
        // §III-E abort.
        let sample = annotated_pages(&[2, 2, 2]);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .entity("venue", Multiplicity::One)
            .build();
        let err = generate_wrapper(&sample, &sod, &DiffConfig::default()).expect_err("abort");
        assert!(matches!(err, WrapperError::Aborted));
    }

    #[test]
    fn empty_sample_errors() {
        let err = generate_wrapper(&[], &concert_sod(), &DiffConfig::default())
            .expect_err("empty sample");
        assert!(matches!(err, WrapperError::EmptySample));
    }

    #[test]
    fn extract_source_concatenates_pages() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        let docs: Vec<Document> = sample.iter().map(|p| p.doc.clone()).collect();
        let objects = wrapper.extract_source(&docs);
        assert_eq!(objects.len(), 2 + 3 + 1 + 2);
    }

    #[test]
    fn quality_reflects_conflicts() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        // Clean source: no conflict splits.
        assert_eq!(wrapper.conflict_splits, 0);
        assert!((wrapper.quality - 1.0).abs() < 0.25);
    }
}
