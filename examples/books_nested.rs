//! Nested data: book objects with a *set* of authors (`{author}+`),
//! an optional publication date, and dictionary enrichment (Eq. 4)
//! after extraction.
//!
//! Run with: `cargo run --example books_nested`

use objectrunner::core::pipeline::Pipeline;
use objectrunner::knowledge::enrich::{enrich, EnrichmentInput};
use objectrunner::knowledge::recognizer::{Recognizer, RecognizerSet};
use objectrunner::sod::{Multiplicity, SodBuilder};
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};

fn main() {
    // book(title, {author}+, price, date?) — §IV-A.
    let sod = Domain::Books.sod();
    println!("SOD: {sod}");
    let _ = SodBuilder::tuple("unused"); // (builder re-exported for API users)
    let _ = Multiplicity::Plus;

    // Recognizers at the paper's 20% dictionary coverage.
    let recognizers: RecognizerSet = knowledge::recognizers_for(Domain::Books, 0.2);
    let author_dict_before = recognizers
        .get("author")
        .and_then(Recognizer::gazetteer)
        .map(|g| g.len())
        .unwrap_or(0);

    // A book site with 1–3 authors per record and an optional date.
    let spec = SiteSpec::clean("bookstore.example", Domain::Books, PageKind::List, 20, 777);
    let source = generate_site(&spec);

    let mut recognizers = recognizers;
    let pipeline = Pipeline::new(sod.clone(), recognizers.clone());
    let outcome = pipeline
        .run_on_html(&source.pages)
        .expect("book source wraps");

    println!(
        "extracted {} objects ({} golden); wrapper quality {:.2}",
        outcome.objects.len(),
        source.object_count(),
        outcome.wrapper.quality
    );
    for object in outcome.objects.iter().take(3) {
        println!("  {object}");
    }

    // Count multi-author books to show the set type at work.
    let multi = outcome
        .objects
        .iter()
        .filter(|o| {
            let mut authors = Vec::new();
            o.values_of_type("author", &mut authors);
            authors.len() > 1
        })
        .count();
    println!("objects with several authors: {multi}");

    // ── Dictionary enrichment (Eq. 4) ───────────────────────────────
    // Feed the extracted author column back into the author dictionary.
    let mut extracted_authors = Vec::new();
    for o in &outcome.objects {
        let mut vals = Vec::new();
        o.values_of_type("author", &mut vals);
        extracted_authors.extend(vals.into_iter().map(str::to_owned));
    }
    let dict = recognizers
        .get_mut("author")
        .and_then(Recognizer::gazetteer_mut)
        .expect("author dictionary");
    let report = enrich(
        dict,
        &EnrichmentInput {
            wrapper_score: outcome.wrapper.quality,
            extracted: extracted_authors,
        },
    );
    println!(
        "enrichment: {} known values re-observed, {} new instances added \
         (confidence {:.2}); dictionary {} → {} entries",
        report.overlap,
        report.added,
        report.confidence,
        author_dict_before,
        dict.len()
    );
}
