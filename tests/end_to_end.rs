//! Cross-crate integration tests: the full two-phase querying workflow
//! over generated sources, exercised through the facade crate's public
//! API only.

use objectrunner::core::pipeline::{Pipeline, PipelineConfig, PipelineError};
use objectrunner::core::sample::SampleConfig;
use objectrunner::eval::classify::{classify_source, ExtractedObject};
use objectrunner::eval::runners::{instance_to_object, run_exalg, run_roadrunner};
use objectrunner::sod::canonicalize;
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, Quirk, SiteSpec};

fn pipeline_for(domain: Domain, coverage: f64) -> Pipeline {
    Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, coverage)).with_config(
        PipelineConfig {
            sample: SampleConfig {
                sample_size: 12,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        },
    )
}

/// Every domain's clean list source extracts with high precision
/// end to end — the core claim behind Table I's clean rows.
#[test]
fn clean_sources_extract_with_high_precision() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let spec = SiteSpec::clean(
            &format!("e2e-{}", domain.name()),
            domain,
            PageKind::List,
            15,
            9_000 + i as u64,
        );
        let source = generate_site(&spec);
        let outcome = pipeline_for(domain, 0.2)
            .run_on_html(&source.pages)
            .unwrap_or_else(|e| panic!("{} failed: {e}", domain.name()));
        let sod = domain.sod();
        let per_page: Vec<Vec<ExtractedObject>> = source
            .pages
            .iter()
            .map(|html| {
                let mut doc = objectrunner::html::parse(html);
                objectrunner::html::clean_document(
                    &mut doc,
                    &objectrunner::html::CleanOptions::default(),
                );
                outcome
                    .wrapper
                    .extract_document(&doc)
                    .iter()
                    .map(|inst| instance_to_object(inst, &sod))
                    .collect()
            })
            .collect();
        let report = classify_source(&source, &per_page, false);
        assert!(
            report.pc() > 0.8,
            "{}: Pc = {:.2} (oc {} / no {})",
            domain.name(),
            report.pc(),
            report.oc,
            report.no
        );
    }
}

/// Extracted objects validate against their (non-canonical) SOD.
#[test]
fn extracted_objects_validate_against_the_sod() {
    let spec = SiteSpec::clean("e2e-validate", Domain::Cars, PageKind::List, 12, 42);
    let source = generate_site(&spec);
    let outcome = pipeline_for(Domain::Cars, 1.0)
        .run_on_html(&source.pages)
        .expect("cars source wraps");
    let canon = canonicalize(&Domain::Cars.sod());
    for object in &outcome.objects {
        object
            .validate(&canon)
            .unwrap_or_else(|e| panic!("invalid object {object}: {e}"));
    }
    assert_eq!(outcome.objects.len(), source.object_count());
}

/// An unstructured source is discarded during sampling (§III-E), not
/// silently mis-extracted.
#[test]
fn unstructured_source_is_discarded() {
    let spec = SiteSpec::clean("e2e-junk", Domain::Albums, PageKind::List, 10, 77)
        .with_quirk(Quirk::Unstructured);
    let source = generate_site(&spec);
    match pipeline_for(Domain::Albums, 0.2).run_on_html(&source.pages) {
        Err(PipelineError::Sample(_)) => {}
        other => panic!("expected discard, got {other:?}"),
    }
}

/// The three systems rank OR ≥ EA ≥ RR on a uniform-cell source —
/// Table III's ordering in miniature.
#[test]
fn system_ordering_holds_on_a_uniform_source() {
    let mut spec = SiteSpec::clean("e2e-rank", Domain::Albums, PageKind::List, 14, 4242);
    spec.style = 0; // uniform <div> cells
    let source = generate_site(&spec);

    let or = {
        let outcome = pipeline_for(Domain::Albums, 0.2)
            .run_on_html(&source.pages)
            .expect("OR wraps");
        let sod = Domain::Albums.sod();
        let per_page: Vec<Vec<ExtractedObject>> = source
            .pages
            .iter()
            .map(|html| {
                let mut doc = objectrunner::html::parse(html);
                objectrunner::html::clean_document(
                    &mut doc,
                    &objectrunner::html::CleanOptions::default(),
                );
                outcome
                    .wrapper
                    .extract_document(&doc)
                    .iter()
                    .map(|inst| instance_to_object(inst, &sod))
                    .collect()
            })
            .collect();
        classify_source(&source, &per_page, false)
    };
    let ea = run_exalg(&source).report;
    let rr = run_roadrunner(&source).report;

    assert!(or.pc() >= ea.pc(), "OR {:.2} < EA {:.2}", or.pc(), ea.pc());
    assert!(
        or.pc() > 0.8,
        "OR should solve the uniform source: {:.2}",
        or.pc()
    );
    // Structure-only systems cannot fully separate uniform columns.
    assert!(ea.pc() < or.pc());
    let _ = rr; // RR varies; its ordering is asserted on Pc only when meaningful
}

/// Detail (singleton) pages work through the same pipeline (§II's two
/// page kinds).
#[test]
fn detail_pages_extract_one_object_per_page() {
    let spec = SiteSpec::clean("e2e-detail", Domain::Concerts, PageKind::Detail, 15, 555);
    let source = generate_site(&spec);
    let outcome = pipeline_for(Domain::Concerts, 0.3)
        .run_on_html(&source.pages)
        .expect("detail source wraps");
    assert_eq!(outcome.objects.len(), source.pages.len());
}

/// The wrapping-time stats are recorded and extraction is much cheaper
/// than wrapping (the paper's §IV timing claim, shape only).
#[test]
fn wrapping_dominates_extraction_time() {
    let spec = SiteSpec::clean("e2e-time", Domain::Cars, PageKind::List, 20, 808);
    let source = generate_site(&spec);
    let outcome = pipeline_for(Domain::Cars, 0.2)
        .run_on_html(&source.pages)
        .expect("wraps");
    assert!(outcome.stats.wrapping_micros > 0);
    assert!(
        outcome.stats.extraction_micros < outcome.stats.wrapping_micros,
        "extraction {}µs should be cheaper than wrapping {}µs",
        outcome.stats.extraction_micros,
        outcome.stats.wrapping_micros
    );
}
