#!/usr/bin/env bash
# Workspace CI gate: build, test, formatting, and lint-clean.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

# The full suite runs twice: once pinned to a sequential executor and
# once on an 8-worker pool. Each run is a fresh process, so the second
# pass also proves the parallel pipeline reproduces the golden
# snapshots with its own interner state — the cross-process half of
# the determinism guarantee (tests/determinism.rs is the in-process
# half).
echo "==> cargo test (OBJECTRUNNER_THREADS=1)"
OBJECTRUNNER_THREADS=1 cargo test --workspace -q

echo "==> cargo test (OBJECTRUNNER_THREADS=8)"
OBJECTRUNNER_THREADS=8 cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Serving-layer smoke: drive the objectrunner-serve daemon through the
# full wrapper lifecycle over its line-delimited JSON protocol —
# induce a golden source, extract twice from the cache (the second
# must be a cache hit with no Wrap stage in its timings), feed a
# drifted batch, and require the stale -> re-induced transition to
# show up in the response and in `status`.
echo "==> serve smoke (cache hit + drift -> re-induce)"
SERVE=target/release/objectrunner-serve
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$SERVE" seed-corpus --domain concerts --name smoke --seed 17000 --pages 15 \
         --out "$SMOKE/clean" 2>/dev/null
"$SERVE" seed-corpus --domain concerts --name smoke --seed 17000 --pages 15 \
         --drift 0.8 --out "$SMOKE/drifted" 2>/dev/null
{
  echo "{\"cmd\":\"induce\",\"source\":\"smoke\",\"domain\":\"concerts\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/drifted\"}"
  echo "{\"cmd\":\"status\"}"
} | "$SERVE" --store "$SMOKE/wrappers" > "$SMOKE/session.jsonl"
test "$(wc -l < "$SMOKE/session.jsonl")" -eq 5
grep -q '"ok":true' "$SMOKE/session.jsonl"
! grep -q '"ok":false' "$SMOKE/session.jsonl"
sed -n 1p "$SMOKE/session.jsonl" | grep -q '"stage":"wrap"'       # induce ran Wrap
sed -n 3p "$SMOKE/session.jsonl" | grep -q '"cache":"hit"'        # cached path
! sed -n 3p "$SMOKE/session.jsonl" | grep -q '"stage":"wrap"'     # ... skipped Wrap
sed -n 4p "$SMOKE/session.jsonl" | grep -q '"reinduced":true'     # container redesign -> full re-induction
sed -n 5p "$SMOKE/session.jsonl" | grep -q '"state":"reinduced"'  # status agrees
sed -n 5p "$SMOKE/session.jsonl" | grep -q '"revision":2'
echo "    serve smoke OK"

# Repair smoke: the cheap recovery path. Separator-tier drift (0.25)
# must be absorbed by tree-diff *repair* — revision bumps, provenance
# recorded, no induction stage runs — while the container-tier drift
# above (0.8) already proved the loud fallback to re-induction. Then
# regenerate the drift sweep and require it to be byte-identical to
# the committed table (every number in it is deterministic), which
# pins the repaired-precision and trigger columns.
echo "==> repair smoke (separator drift -> repaired + drift_sweep table)"
"$SERVE" seed-corpus --domain concerts --name repairsmoke --seed 17100 --style 0 \
         --pages 15 --out "$SMOKE/repair-clean" 2>/dev/null
"$SERVE" seed-corpus --domain concerts --name repairsmoke --seed 17100 --style 0 \
         --pages 15 --drift 0.25 --out "$SMOKE/repair-sep" 2>/dev/null
{
  echo "{\"cmd\":\"induce\",\"source\":\"repairsmoke\",\"domain\":\"concerts\",\"dir\":\"$SMOKE/repair-clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"repairsmoke\",\"dir\":\"$SMOKE/repair-sep\"}"
  echo "{\"cmd\":\"status\"}"
} | "$SERVE" --store "$SMOKE/repair-wrappers" > "$SMOKE/repair.jsonl"
test "$(wc -l < "$SMOKE/repair.jsonl")" -eq 3
! grep -q '"ok":false' "$SMOKE/repair.jsonl"
sed -n 2p "$SMOKE/repair.jsonl" | grep -q '"repaired":true'       # patched, not re-induced
sed -n 2p "$SMOKE/repair.jsonl" | grep -q '"reinduced":false'
sed -n 2p "$SMOKE/repair.jsonl" | grep -q '"revision":2'
! sed -n 2p "$SMOKE/repair.jsonl" | grep -q '"stage":"wrap"'      # no induction stage ran
sed -n 3p "$SMOKE/repair.jsonl" | grep -q '"state":"repaired"'    # status agrees
sed -n 3p "$SMOKE/repair.jsonl" | grep -q '"repaired_from":1'     # provenance persisted
sed -n 3p "$SMOKE/repair.jsonl" | grep -q 'repaired: revision 2'  # transition logged
target/release/drift_sweep > "$SMOKE/drift_sweep.txt"
cmp results/drift_sweep.txt "$SMOKE/drift_sweep.txt"
grep -q 'silent' "$SMOKE/drift_sweep.txt"                         # blind-spot rows now trigger
grep -q 'declined' "$SMOKE/drift_sweep.txt"                       # container tiers fall back
! grep -q 'BLIND' "$SMOKE/drift_sweep.txt"                        # no silent zero-precision rows
echo "    repair smoke OK"

# Bench smoke: regenerate the annotation trajectory point and sanity-
# check its shape. The committed BENCH_annotation.json is a recorded
# run of the same binary; this stage only asserts the bench still
# produces a well-formed document (timings vary by machine and load,
# so no thresholds are enforced here).
echo "==> bench smoke (BENCH_annotation.json)"
target/release/bench_annotation > "$SMOKE/bench_annotation.json"
grep -q '"bench": "annotation"' "$SMOKE/bench_annotation.json"
grep -q '"aggregate_speedup_vs_seed"' "$SMOKE/bench_annotation.json"
grep -q '"domain":"Cars"' "$SMOKE/bench_annotation.json"
grep -q '"cache_hit_rate"' "$SMOKE/bench_annotation.json"
echo "    bench smoke OK"

# Streaming smoke: the crawl-scale path end to end. The corpus
# generator CLI writes a 2k-page corpus matching the template the
# serve smoke's re-induced wrapper was trained on (same name/seed,
# drift 0.8 is deterministic), `extract-stream` streams it back as one
# JSON line per page, and the streaming bench regenerates
# BENCH_extract.json at 10k pages to check its sanity fields: peak RSS
# flat across a 10x corpus and under a hard ceiling, and streamed
# output equal to the materialized path. Engine-speedup timings vary
# by machine and load, so no threshold is enforced here — the
# committed BENCH_extract.json records the reference run.
echo "==> stream smoke (10k-page corpus, RSS ceiling, BENCH_extract.json sanity)"
target/release/objectrunner-webgen --domain concerts --name smoke --seed 17000 \
    --pages 2000 --drift 0.8 --out-dir "$SMOKE/crawl" 2>/dev/null
"$SERVE" extract-stream --wrapper "$SMOKE/wrappers/smoke.orw" \
    --pages "$SMOKE/crawl" --threads 4 > "$SMOKE/stream.jsonl" 2>/dev/null
test "$(wc -l < "$SMOKE/stream.jsonl")" -eq 2000
sed -n 1p "$SMOKE/stream.jsonl" | grep -q '"page":0'
grep -q '"objects":\[{' "$SMOKE/stream.jsonl"     # wrapper extracts, not just echoes
target/release/bench_extract_stream --pages 10000 > "$SMOKE/bench_extract.json"
grep -q '"bench": "extract_stream"' "$SMOKE/bench_extract.json"
grep -q '"rss_flat_ok": true' "$SMOKE/bench_extract.json"
grep -q '"stream_equals_batch": true' "$SMOKE/bench_extract.json"
HWM_KB=$(grep -o '"vmhwm_after_big_kb": [0-9]*' "$SMOKE/bench_extract.json" | grep -o '[0-9]*')
test "$HWM_KB" -lt 262144                         # 10k-page stream stays under 256 MB
echo "    stream smoke OK"

# Object-store smoke: the durable sink end to end. A daemon session
# harvests a clean corpus into --object-store twice (the second
# extract must dedup to zero new objects), then a *fresh* process
# reopens the same directory — objects, per-attribute provenance
# (source, page id, wrapper revision, confidence) and cursors must
# all survive the restart, and a compaction must leave query results
# byte-identical. The CLI path is covered too: `extract-stream` with
# a pinned --extracted-at must produce bit-identical store dirs at 1
# and 8 threads, and bench_objstore's sanity gates must hold.
echo "==> objstore smoke (durable sink, restart survival, compact fixed point)"
OBJ="$SMOKE/objects"
{
  echo "{\"cmd\":\"induce\",\"source\":\"objsmoke\",\"domain\":\"concerts\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"objsmoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"objsmoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"store-status\"}"
} | "$SERVE" --store "$SMOKE/obj-wrappers" --object-store "$OBJ" > "$SMOKE/obj1.jsonl"
! grep -q '"ok":false' "$SMOKE/obj1.jsonl"
sed -n 2p "$SMOKE/obj1.jsonl" | grep -q '"store":'                # sink reported
sed -n 2p "$SMOKE/obj1.jsonl" | grep -q '"duplicates":0'          # first pass: all new
sed -n 3p "$SMOKE/obj1.jsonl" | grep -q '"new":0'                 # re-extract: all deduped
sed -n 4p "$SMOKE/obj1.jsonl" | grep -qv '"live_objects":0'       # something persisted
{
  echo '{"cmd":"query","limit":500}'
  echo '{"cmd":"store-status"}'
  echo '{"cmd":"compact"}'
  echo '{"cmd":"query","limit":500}'
} | "$SERVE" --store "$SMOKE/obj-wrappers" --object-store "$OBJ" > "$SMOKE/obj2.jsonl"
! grep -q '"ok":false' "$SMOKE/obj2.jsonl"
sed -n 1p "$SMOKE/obj2.jsonl" | grep -q '"source":"objsmoke"'     # provenance survived
sed -n 1p "$SMOKE/obj2.jsonl" | grep -q '"page":"page-'           # ... the restart, per
sed -n 1p "$SMOKE/obj2.jsonl" | grep -q '"revision":1'            # ... attribute: page,
sed -n 1p "$SMOKE/obj2.jsonl" | grep -q '"confidence":'           # ... revision, conf
sed -n 3p "$SMOKE/obj2.jsonl" | grep -q '"live_records":'         # compact reported
sed -n 1p "$SMOKE/obj2.jsonl" | sed 's/"trace":[0-9]*//' > "$SMOKE/q-before"
sed -n 4p "$SMOKE/obj2.jsonl" | sed 's/"trace":[0-9]*//' > "$SMOKE/q-after"
cmp "$SMOKE/q-before" "$SMOKE/q-after"                            # compact fixed point
"$SERVE" extract-stream --wrapper "$SMOKE/obj-wrappers/objsmoke.orw" \
    --pages "$SMOKE/clean" --threads 1 --object-store "$SMOKE/obj-t1" \
    --extracted-at 1700000000000000 > /dev/null 2> "$SMOKE/sink-t1.log"
"$SERVE" extract-stream --wrapper "$SMOKE/obj-wrappers/objsmoke.orw" \
    --pages "$SMOKE/clean" --threads 8 --object-store "$SMOKE/obj-t8" \
    --extracted-at 1700000000000000 > /dev/null 2> "$SMOKE/sink-t8.log"
grep -q 'object store:' "$SMOKE/sink-t1.log"
diff -r "$SMOKE/obj-t1" "$SMOKE/obj-t8"                           # bit-identical store
target/release/bench_objstore --objects 2000 --queries 200 > "$SMOKE/bench_objstore.json"
grep -q '"bench": "objstore"' "$SMOKE/bench_objstore.json"
grep -q '"reopen_ok": true' "$SMOKE/bench_objstore.json"
grep -q '"compact_preserves_reads": true' "$SMOKE/bench_objstore.json"
echo "    objstore smoke OK"

# Serve-load smoke: the pooled serving core under real concurrent
# TCP load. bench_serve runs small (8 conns × 4 pipelined requests)
# against both the worker pool and the reconstructed global-mutex
# baseline; the schema and the two correctness gates must hold —
# every pooled response byte-identical (normalized) to a serial
# handle_line reference, and zero sheds at a correctly budgeted load.
# Timings vary by machine, so no RPS/latency thresholds here; the
# committed BENCH_serve.json records the reference 64-conn run.
echo "==> serve-load smoke (worker pool vs global-mutex baseline)"
target/release/bench_serve --conns 8 --requests 4 > "$SMOKE/bench_serve.json"
grep -q '"bench": "serve"' "$SMOKE/bench_serve.json"
grep -q '"host_cpus": [1-9]' "$SMOKE/bench_serve.json"
grep -q '"pooled_rps": [1-9]' "$SMOKE/bench_serve.json"
grep -q '"baseline_rps": [1-9]' "$SMOKE/bench_serve.json"
grep -q '"pooled_p99_micros": [0-9]' "$SMOKE/bench_serve.json"
grep -q '"batched_requests": [1-9]' "$SMOKE/bench_serve.json"   # bursts actually batched
grep -q '"shed_requests": 0' "$SMOKE/bench_serve.json"          # budgeted load sheds nothing
grep -q '"shed_conns": 0' "$SMOKE/bench_serve.json"
grep -q '"pooled_equals_serial": true' "$SMOKE/bench_serve.json" # byte-identical to serial
grep -q '"window_agrees_with_histogram": true' "$SMOKE/bench_serve.json" # windowed == cumulative
echo "    serve-load smoke OK"

# Observability smoke: run the golden corpus with tracing enabled,
# schema-check the JSONL and Chrome trace_event exports with
# `obs_check`, and diff the metrics snapshot against the committed
# baseline (work counters exact within tolerance; timings, memo
# hit/miss splits and thread gauges are skipped as machine-dependent).
# Finally enforce the observability overhead budget measured by
# bench_annotation above: enabled tracing must stay within 2%
# (+500 us slack) of the disabled run.
echo "==> obs smoke (exporters + baseline diff + overhead budget)"
target/release/obs_golden --out "$SMOKE/obs" --threads 2 > "$SMOKE/obs_report.txt"
OBS_CHECK=target/release/obs_check
"$OBS_CHECK" jsonl "$SMOKE/obs/events.jsonl"
"$OBS_CHECK" chrome "$SMOKE/obs/trace.json"
"$OBS_CHECK" diff results/obs_baseline.json "$SMOKE/obs/snapshot.json" \
  --tolerance 0.02 --skip exec.threads
grep -q 'pipeline.induce' "$SMOKE/obs_report.txt"
# bench_annotation's enabled handle runs with sliding windows, tail
# sampling and the access log all on, so this gate covers the full
# live-telemetry stack.
grep -q '"obs_overhead_ok": true' "$SMOKE/bench_annotation.json"
echo "    obs smoke OK"

# Live-telemetry smoke: drive the daemon over stdin with the access
# log capped tiny and a 50 ms slow-trace floor. The heavy request —
# the 2000-page drifted crawl from the stream smoke, against the
# wrapper the serve smoke re-induced on that exact template — must be
# retained by the tail sampler and come back through `trace slow` with
# its span tree; `watch` must stream schema-complete snapshot lines;
# `metrics-text` must be a Prometheus-style exposition; `status.live`
# must surface the windowed histograms and the effective threshold;
# and the access log must rotate under its cap with one structured
# line per request.
echo "==> obs-live smoke (watch + trace slow + access log rotation)"
{
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/clean\"}"
  echo "{\"cmd\":\"extract\",\"source\":\"smoke\",\"dir\":\"$SMOKE/crawl\"}"
  echo '{"cmd":"watch","count":2,"interval_micros":1000}'
  echo '{"cmd":"metrics-text"}'
  echo '{"cmd":"trace","kind":"slow","limit":3}'
  echo '{"cmd":"status"}'
} | "$SERVE" --store "$SMOKE/wrappers" --access-log "$SMOKE/access.jsonl" \
      --access-log-max-bytes 450 --slow-trace-micros 50000 > "$SMOKE/live.jsonl"
test "$(grep -c '"type":"watch"' "$SMOKE/live.jsonl")" -eq 2
WATCH=$(grep '"type":"watch"' "$SMOKE/live.jsonl" | head -1)
echo "$WATCH" | grep -q '"tick":0'
echo "$WATCH" | grep -q '"requests":'
echo "$WATCH" | grep -q '"rps_60s":'
echo "$WATCH" | grep -q '"p99_us":'
echo "$WATCH" | grep -q '"dropped_spans":'
echo "$WATCH" | grep -q '"access_log_dropped":0'
grep -q '^# TYPE objectrunner_serve_request_latency_micros histogram' "$SMOKE/live.jsonl"
grep -q '^# EOF' "$SMOKE/live.jsonl"
grep '"cmd":"trace"' "$SMOKE/live.jsonl" | grep -q '"kind":"slow"'
grep '"kind":"slow"' "$SMOKE/live.jsonl" | grep -q '"retained":[1-9]'    # 2k-page extract kept
grep '"kind":"slow"' "$SMOKE/live.jsonl" | grep -q '"name":"serve.extract"' # ... with its spans
grep -q '"slow_trace_threshold_micros":50000' "$SMOKE/live.jsonl"        # floor, adaptive cold
grep -q '"objectrunner.serve.request.latency_micros":{"rate_1s"' "$SMOKE/live.jsonl"
grep -q '"rotations":[1-9]' "$SMOKE/live.jsonl"                          # status.live.access_log
test -f "$SMOKE/access.jsonl"
test -f "$SMOKE/access.jsonl.1"
head -1 "$SMOKE/access.jsonl" | grep -q '^{"ts_unix_micros":'
grep -q '"cmd":"extract"' "$SMOKE/access.jsonl" "$SMOKE/access.jsonl.1"
grep -q '"outcome":"ok"' "$SMOKE/access.jsonl" "$SMOKE/access.jsonl.1"
echo "    obs-live smoke OK"

echo "CI OK"
