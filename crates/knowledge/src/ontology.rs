//! A YAGO-like knowledge base (paper §III-A).
//!
//! "We used the YAGO ontology, a vast knowledge base built from
//! Wikipedia and Wordnet. … Despite its richness, useful entity
//! instances may not be found simply by exploiting YAGO's
//! `isInstanceOf` relations. For example, Metallica is not an instance
//! of the Artist class. This is why we look at a *semantic
//! neighborhood* instead: e.g., Metallica is an instance of the Band
//! class, which is semantically close to the Artist one."
//!
//! This module provides exactly that interface over a synthetic
//! knowledge base: classes with subclass edges and relatedness links,
//! `isInstanceOf` facts with confidences, and the neighborhood query
//! that builds a [`Gazetteer`] for a requested class name.

use crate::gazetteer::Gazetteer;
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a class inside the ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(usize);

/// A YAGO-like ontology.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    class_names: Vec<String>,
    class_index: HashMap<String, ClassId>,
    /// `subclass[a]` = direct superclasses of `a`.
    superclasses: Vec<Vec<ClassId>>,
    /// Symmetric "semantically close" links (e.g. Band ~ Artist).
    related: Vec<Vec<ClassId>>,
    /// `facts[class]` = (instance, confidence, term_frequency).
    facts: Vec<Vec<(String, f64, f64)>>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Add (or fetch) a class by name. Names are case-insensitive.
    pub fn add_class(&mut self, name: &str) -> ClassId {
        let key = name.to_lowercase();
        if let Some(&id) = self.class_index.get(&key) {
            return id;
        }
        let id = ClassId(self.class_names.len());
        self.class_names.push(name.to_owned());
        self.class_index.insert(key, id);
        self.superclasses.push(Vec::new());
        self.related.push(Vec::new());
        self.facts.push(Vec::new());
        id
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(&name.to_lowercase()).copied()
    }

    /// Class display name.
    pub fn class_name(&self, id: ClassId) -> &str {
        &self.class_names[id.0]
    }

    /// Declare `sub` ⊆ `super`.
    pub fn add_subclass(&mut self, sub: ClassId, sup: ClassId) {
        if !self.superclasses[sub.0].contains(&sup) {
            self.superclasses[sub.0].push(sup);
        }
    }

    /// Declare a symmetric semantic-relatedness link.
    pub fn add_related(&mut self, a: ClassId, b: ClassId) {
        if !self.related[a.0].contains(&b) {
            self.related[a.0].push(b);
        }
        if !self.related[b.0].contains(&a) {
            self.related[b.0].push(a);
        }
    }

    /// Assert `isInstanceOf(instance, class)` with a confidence and a
    /// term frequency for the instance string.
    pub fn add_instance(&mut self, class: ClassId, instance: &str, confidence: f64, tf: f64) {
        self.facts[class.0].push((instance.to_owned(), confidence, tf.max(1.0)));
    }

    /// Number of `isInstanceOf` facts in the whole ontology.
    pub fn fact_count(&self) -> usize {
        self.facts.iter().map(Vec::len).sum()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// Iterate all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.class_names.len()).map(ClassId)
    }

    /// Classes within `radius` hops of `start` in the semantic
    /// neighborhood graph. Edges: relatedness links (cost 1), subclass
    /// edges in both directions (cost 1). `start` itself is included.
    pub fn neighborhood(&self, start: ClassId, radius: usize) -> Vec<(ClassId, usize)> {
        let mut dist: HashMap<ClassId, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(start, 0);
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            if d >= radius {
                continue;
            }
            let mut neighbors: Vec<ClassId> = Vec::new();
            neighbors.extend(&self.related[cur.0]);
            neighbors.extend(&self.superclasses[cur.0]);
            // Inverse subclass edges.
            for (i, sups) in self.superclasses.iter().enumerate() {
                if sups.contains(&cur) {
                    neighbors.push(ClassId(i));
                }
            }
            for n in neighbors {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                    e.insert(d + 1);
                    queue.push_back(n);
                }
            }
        }
        let mut out: Vec<(ClassId, usize)> = dist.into_iter().collect();
        out.sort_by_key(|&(id, d)| (d, id.0));
        out
    }

    /// Build a dictionary-based recognizer for a class *name*
    /// (the `isInstanceOf` recognizer of the paper): collect instances
    /// of the class and of its semantic neighborhood within `radius`,
    /// discounting confidence by hop distance.
    pub fn gazetteer_for(&self, class_name: &str, radius: usize) -> Gazetteer {
        let mut g = Gazetteer::new();
        let Some(start) = self.class(class_name) else {
            return g;
        };
        for (class, d) in self.neighborhood(start, radius) {
            let discount = 1.0 / (1.0 + d as f64 * 0.5);
            for (instance, conf, tf) in &self.facts[class.0] {
                g.insert(instance, conf * discount, *tf);
            }
        }
        g
    }

    /// All distinct instance strings of a set of classes (helper for
    /// corpus generation).
    pub fn instances_of(&self, class_name: &str) -> Vec<&str> {
        let Some(id) = self.class(class_name) else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        self.facts[id.0]
            .iter()
            .filter(|(i, _, _)| seen.insert(i.as_str()))
            .map(|(i, _, _)| i.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: Metallica is a Band; Band is
    /// semantically close to Artist.
    fn music_ontology() -> Ontology {
        let mut o = Ontology::new();
        let artist = o.add_class("Artist");
        let band = o.add_class("Band");
        let musician = o.add_class("Musician");
        let person = o.add_class("Person");
        o.add_related(band, artist);
        o.add_subclass(musician, artist);
        o.add_subclass(artist, person);
        o.add_instance(band, "Metallica", 0.95, 8.0);
        o.add_instance(band, "Coldplay", 0.94, 12.0);
        o.add_instance(musician, "Madonna", 0.96, 15.0);
        o.add_instance(person, "Alan Turing", 0.99, 6.0);
        o
    }

    #[test]
    fn class_lookup_is_case_insensitive() {
        let o = music_ontology();
        assert_eq!(o.class("artist"), o.class("Artist"));
        assert!(o.class("Spaceship").is_none());
    }

    #[test]
    fn add_class_is_idempotent() {
        let mut o = Ontology::new();
        let a = o.add_class("X");
        let b = o.add_class("x");
        assert_eq!(a, b);
        assert_eq!(o.class_count(), 1);
    }

    #[test]
    fn neighborhood_includes_related_and_subclasses() {
        let o = music_ontology();
        let artist = o.class("Artist").expect("class");
        let hood: Vec<&str> = o
            .neighborhood(artist, 1)
            .iter()
            .map(|&(c, _)| o.class_name(c))
            .collect();
        assert!(hood.contains(&"Artist"));
        assert!(hood.contains(&"Band")); // related
        assert!(hood.contains(&"Musician")); // inverse subclass
        assert!(hood.contains(&"Person")); // superclass
    }

    #[test]
    fn metallica_found_via_neighborhood() {
        // The paper's motivating case: a direct isInstanceOf(Artist)
        // lookup misses Metallica; the neighborhood query finds it.
        let o = music_ontology();
        let direct = o.instances_of("Artist");
        assert!(!direct.contains(&"Metallica"));
        let g = o.gazetteer_for("Artist", 1);
        assert!(g.contains("Metallica"));
        assert!(g.contains("Madonna"));
    }

    #[test]
    fn neighborhood_confidence_is_discounted() {
        let o = music_ontology();
        let g = o.gazetteer_for("Artist", 2);
        // Alan Turing is 1 hop (Person is a direct superclass).
        let turing = g.get("Alan Turing").expect("entry").confidence;
        // Metallica is also 1 hop, with higher base confidence; within
        // the same hop count, base confidence ordering is preserved.
        let metallica = g.get("Metallica").expect("entry").confidence;
        assert!(metallica < 0.95); // discounted
        assert!(metallica > turing - 0.1); // same hop discount applied
    }

    #[test]
    fn radius_zero_is_direct_instances_only() {
        let o = music_ontology();
        let g = o.gazetteer_for("Band", 0);
        assert!(g.contains("Metallica"));
        assert!(!g.contains("Madonna"));
    }

    #[test]
    fn unknown_class_yields_empty_gazetteer() {
        let o = music_ontology();
        assert!(o.gazetteer_for("Starship", 2).is_empty());
    }

    #[test]
    fn fact_count_counts_all() {
        let o = music_ontology();
        assert_eq!(o.fact_count(), 4);
    }
}
