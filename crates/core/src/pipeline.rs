//! The end-to-end ObjectRunner pipeline.
//!
//! Page cleaning → visual simplification to the main block →
//! annotation + sample selection (Algorithm 1) → wrapper generation
//! (Algorithm 2) with the §IV self-validation loop ("when necessary,
//! we variate the parameters of the wrapping algorithm and re-execute
//! it … by variating the support between 3 and 5 pages") → extraction
//! from all pages.
//!
//! The pipeline is *staged*: each step above is a node of the explicit
//! stage graph in [`crate::stage`], driven by the deterministic fan-out
//! executor in [`crate::exec`]. Per-page stages run on a worker pool
//! sized by [`PipelineConfig::threads`] (default: `OBJECTRUNNER_THREADS`
//! or the machine's available parallelism), and the self-validation
//! loop evaluates its candidate support values concurrently. All
//! reductions are index-ordered, so output is byte-identical at any
//! thread count.

use crate::annotate::{AnnotatedPage, Annotator};
use crate::eqclass::EqConfig;
use crate::exec::Executor;
use crate::roles::DiffConfig;
use crate::sample::{select_sample_timed_with, SampleConfig, SampleError, SampleStrategy};
use crate::stage::{
    apply_block_stage, clean_stage, extract_stage, parse_stage, segment_stage, Stage, StageTiming,
};
use crate::wrapper::{generate_wrapper, Wrapper, WrapperError};
use objectrunner_html::{CleanOptions, Document};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_obs::{MetricsSnapshot, Obs, Span};
use objectrunner_segment::{LayoutOptions, MainBlockChoice};
use objectrunner_sod::{Instance, Sod};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Sampling parameters (size k, α threshold).
    pub sample: SampleConfig,
    /// How the sample is chosen (Table II's comparison knob).
    pub strategy: SampleStrategy,
    /// Support values tried by the self-validation loop (inclusive).
    pub support_range: (usize, usize),
    /// Stop the loop early once a wrapper reaches this quality.
    pub quality_threshold: f64,
    /// Apply the VIPS-style main-block simplification.
    pub use_main_block: bool,
    /// HTML cleaning options.
    pub clean: CleanOptions,
    /// Exclude annotated data words from template classes (the
    /// ObjectRunner guard; baselines turn this off).
    pub annotations_guard: bool,
    /// Worker threads for the fan-out stages. `None` (the default)
    /// resolves `OBJECTRUNNER_THREADS`, falling back to the machine's
    /// available parallelism; `Some(n)` pins the count explicitly.
    /// Output is byte-identical at any setting.
    pub threads: Option<usize>,
    /// Observability handle. The default is [`Obs::disabled`], where
    /// every tracing/metrics call in the pipeline reduces to a single
    /// branch; extraction results never depend on this.
    pub obs: Obs,
    /// `(trace, parent span)` to attach this run's spans under — how
    /// the serving layer stitches pipeline spans into its per-request
    /// trace. `None` starts a fresh trace per run.
    pub trace_context: Option<(u64, u64)>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sample: SampleConfig::default(),
            strategy: SampleStrategy::SodBased,
            support_range: (3, 5),
            quality_threshold: 0.9,
            use_main_block: true,
            clean: CleanOptions::default(),
            annotations_guard: true,
            threads: None,
            obs: Obs::disabled(),
            trace_context: None,
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The source was discarded during sampling (§III-E).
    Sample(SampleError),
    /// No support value produced a wrapper.
    Wrapper(WrapperError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sample(e) => write!(f, "sampling: {e}"),
            PipelineError::Wrapper(e) => write!(f, "wrapper generation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Run statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    pub pages: usize,
    pub sample_pages: usize,
    pub support_used: usize,
    pub conflict_splits: usize,
    pub rounds: usize,
    pub reruns: usize,
    pub wrapping_micros: u128,
    pub extraction_micros: u128,
    /// Per-stage wall/CPU timings, in execution order. The Annotate
    /// entry accounts the annotation rounds *inside* the Sample stage
    /// (CPU only); Parse appears only for `run_on_html` entry.
    pub stage_timings: Vec<StageTiming>,
    /// Worker threads the run used.
    pub threads: usize,
    /// Annotation memo-cache hits during this run (stats only — the
    /// cached values are pure functions of the text, so hit counts
    /// never influence results; the split is scheduling-dependent,
    /// hits + misses is not).
    pub annotation_cache_hits: u64,
    /// Annotation memo-cache misses (= unique texts matched) during
    /// this run.
    pub annotation_cache_misses: u64,
}

impl PipelineStats {
    /// The timing entry of one stage, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageTiming> {
        self.stage_timings.iter().find(|t| t.stage == stage)
    }

    /// Externalize this run's stats under the canonical metric names
    /// (`objectrunner.<crate>.<stage>.<name>`). Stage timings become
    /// `objectrunner.core.stage.<stage>.{wall,cpu}_micros` counters —
    /// key *presence* marks a stage as having run, which is how tests
    /// assert "the Wrap stage did not run" via snapshot diffs.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("objectrunner.core.pipeline.pages", self.pages as u64);
        snap.set_counter(
            "objectrunner.core.pipeline.sample_pages",
            self.sample_pages as u64,
        );
        snap.set_counter(
            "objectrunner.core.wrap.support_used",
            self.support_used as u64,
        );
        snap.set_counter(
            "objectrunner.core.wrap.conflict_splits",
            self.conflict_splits as u64,
        );
        snap.set_counter("objectrunner.core.wrap.rounds", self.rounds as u64);
        snap.set_counter("objectrunner.core.wrap.reruns", self.reruns as u64);
        snap.set_counter(
            "objectrunner.core.pipeline.wrapping_micros",
            self.wrapping_micros as u64,
        );
        snap.set_counter(
            "objectrunner.core.pipeline.extraction_micros",
            self.extraction_micros as u64,
        );
        snap.set_counter("objectrunner.core.exec.threads", self.threads as u64);
        snap.set_counter(
            "objectrunner.core.annotate.cache_hits",
            self.annotation_cache_hits,
        );
        snap.set_counter(
            "objectrunner.core.annotate.cache_misses",
            self.annotation_cache_misses,
        );
        // hits + misses is scheduling-independent even though the
        // split is not — the deterministic total baselines diff on.
        snap.set_counter(
            "objectrunner.core.annotate.cache_lookups",
            self.annotation_cache_hits + self.annotation_cache_misses,
        );
        for t in &self.stage_timings {
            let name = t.stage.name();
            snap.set_counter(
                objectrunner_obs::export::stage_wall_metric(name),
                t.wall_micros as u64,
            );
            snap.set_counter(
                objectrunner_obs::export::stage_cpu_metric(name),
                t.cpu_micros as u64,
            );
        }
        snap
    }

    /// Machine-readable JSON form (one object, no trailing newline).
    /// Key order is fixed, so equal stats render byte-identically;
    /// consumed by the eval runners' `--stats-json` mode and the serve
    /// protocol. Rendered by the one shared legacy emitter in
    /// `objectrunner_obs::export`, over [`PipelineStats::snapshot`].
    pub fn to_json(&self) -> String {
        objectrunner_obs::export::legacy_stats_json(&self.snapshot())
    }

    /// Accumulate this run into a live registry. Timing-free callers
    /// pass a disabled handle, which makes this free. `exec.threads`
    /// is a gauge (last run wins) rather than a counter — summing
    /// thread counts across runs is meaningless.
    pub fn record_into(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for (name, value) in &self.snapshot().counters {
            if name == "objectrunner.core.exec.threads" {
                obs.gauge_set(name, *value as i64);
            } else {
                obs.counter_add(name, *value);
            }
        }
    }
}

/// Pipeline output.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The extracted objects, all pages concatenated.
    pub objects: Vec<Instance>,
    /// The wrapper that produced them.
    pub wrapper: Wrapper,
    /// The main-block choice the segment stage voted (None when
    /// simplification is off or no candidate block was found). A
    /// persisted wrapper carries this so the extract-only path can
    /// replay the identical simplification on unseen pages.
    pub main_block: Option<MainBlockChoice>,
    pub stats: PipelineStats,
}

/// Output of the extract-only fast path ([`extract_only`]).
#[derive(Debug)]
pub struct ExtractOutcome {
    /// Extracted instances, page boundaries preserved.
    pub per_page: Vec<Vec<Instance>>,
    /// The prepared (cleaned + simplified) documents, for callers that
    /// need to score them afterwards (drift detection).
    pub docs: Vec<Document>,
    /// Stage timings of the fast path: Parse/Clean/Segment/Extract
    /// only — no Annotate, Sample or Wrap entries, proving induction
    /// was skipped.
    pub stats: PipelineStats,
}

impl ExtractOutcome {
    /// All instances, pages concatenated.
    pub fn objects(&self) -> Vec<&Instance> {
        self.per_page.iter().flatten().collect()
    }
}

/// Apply an already-induced wrapper to raw pages, skipping induction
/// entirely: Parse → Clean → Segment (replaying `main_block`) →
/// Extract. The preparation steps mirror [`Pipeline::run_on_html`]
/// byte-for-byte — same cleaning options, same block simplification —
/// so on pages of the unchanged template the output is identical to a
/// fresh pipeline run with this wrapper.
pub fn extract_only<S: AsRef<str>>(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: &[S],
    threads: Option<usize>,
) -> ExtractOutcome {
    extract_only_with(
        wrapper,
        main_block,
        clean,
        pages,
        threads,
        &Obs::disabled(),
        None,
        None,
    )
}

/// [`extract_only`] with tracing/metrics: emits a `pipeline.extract`
/// span tree (attached under `trace_context` when given) and
/// accumulates the run into `obs`'s registry.
///
/// `queue_wait_micros` is how long the caller held the request before
/// this pipeline invocation started (the serving layer's admission /
/// batching delay); when given it is stamped on the root span, so a
/// trace splits end-to-end latency into queue wait vs service time
/// (the span's own duration).
#[allow(clippy::too_many_arguments)]
pub fn extract_only_with<S: AsRef<str>>(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: &[S],
    threads: Option<usize>,
    obs: &Obs,
    trace_context: Option<(u64, u64)>,
    queue_wait_micros: Option<u64>,
) -> ExtractOutcome {
    let exec = Executor::from_env(threads);
    let mut root = match trace_context {
        Some((trace, parent)) => obs.span_in(trace, parent, "pipeline.extract"),
        None => obs.trace("pipeline.extract"),
    };
    root.attr_u64("pages", pages.len() as u64);
    if let Some(wait) = queue_wait_micros {
        root.attr_u64("queue_wait_micros", wait);
    }
    let refs: Vec<&str> = pages.iter().map(AsRef::as_ref).collect();
    let parse_span = root.child("stage.parse");
    let (mut docs, parse_timing) = parse_stage(&exec, &refs);
    finish_stage_span(parse_span, &parse_timing);
    let mut timings = vec![parse_timing];
    let clean_span = root.child("stage.clean");
    timings.push(clean_stage(&exec, &mut docs, clean));
    finish_stage_span(clean_span, timings.last().expect("just pushed"));
    if let Some(choice) = main_block {
        let segment_span = root.child("stage.segment");
        timings.push(apply_block_stage(&exec, &mut docs, choice));
        finish_stage_span(segment_span, timings.last().expect("just pushed"));
    }
    let extract_start = Instant::now();
    let extract_span = root.child("stage.extract");
    let (per_page, extract_timing) = extract_stage(&exec, wrapper, &docs);
    finish_stage_span(extract_span, &extract_timing);
    timings.push(extract_timing);
    let stats = PipelineStats {
        pages: docs.len(),
        support_used: wrapper.support,
        conflict_splits: wrapper.conflict_splits,
        rounds: wrapper.rounds,
        extraction_micros: extract_start.elapsed().as_micros(),
        stage_timings: timings,
        threads: exec.threads(),
        ..PipelineStats::default()
    };
    obs.counter_add("objectrunner.core.pipeline.extract_only_runs", 1);
    stats.record_into(obs);
    root.attr_u64(
        "objects",
        per_page.iter().map(Vec::len).sum::<usize>() as u64,
    );
    root.finish();
    ExtractOutcome {
        per_page,
        docs,
        stats,
    }
}

/// Close a stage span, attributing the stage's summed worker CPU.
fn finish_stage_span(mut span: Span, timing: &StageTiming) {
    span.add_cpu_micros(timing.cpu_micros as u64);
    span.finish();
}

/// Batched [`extract_only`]: apply one wrapper to several independent
/// page sets in a single staged run.
///
/// The serving layer's request batcher uses this to amortize the
/// per-call pipeline setup — executor construction, the four stage
/// invocations with their span/timing scaffolding, metrics recording —
/// across many `extract` requests against the same cached wrapper.
/// The page sets are concatenated, every stage runs once over the
/// union, and the results are split back along the request boundaries.
///
/// Because every stage is strictly per-page, each returned
/// [`ExtractOutcome`]'s `per_page` and `docs` are **byte-identical**
/// to what a separate [`extract_only_with`] call on that page set
/// would have produced; only the stage *timings* differ (they report
/// the shared batched run, duplicated into each outcome).
#[allow(clippy::too_many_arguments)]
pub fn extract_only_batch<S: AsRef<str>>(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    batches: &[&[S]],
    threads: Option<usize>,
    obs: &Obs,
    trace_context: Option<(u64, u64)>,
    queue_wait_micros: Option<u64>,
) -> Vec<ExtractOutcome> {
    if batches.len() == 1 {
        return vec![extract_only_with(
            wrapper,
            main_block,
            clean,
            batches[0],
            threads,
            obs,
            trace_context,
            queue_wait_micros,
        )];
    }
    let exec = Executor::from_env(threads);
    let mut root = match trace_context {
        Some((trace, parent)) => obs.span_in(trace, parent, "pipeline.extract_batch"),
        None => obs.trace("pipeline.extract_batch"),
    };
    root.attr_u64("requests", batches.len() as u64);
    if let Some(wait) = queue_wait_micros {
        root.attr_u64("queue_wait_micros", wait);
    }
    let refs: Vec<&str> = batches
        .iter()
        .flat_map(|pages| pages.iter().map(AsRef::as_ref))
        .collect();
    root.attr_u64("pages", refs.len() as u64);
    let parse_span = root.child("stage.parse");
    let (mut docs, parse_timing) = parse_stage(&exec, &refs);
    finish_stage_span(parse_span, &parse_timing);
    let mut timings = vec![parse_timing];
    let clean_span = root.child("stage.clean");
    timings.push(clean_stage(&exec, &mut docs, clean));
    finish_stage_span(clean_span, timings.last().expect("just pushed"));
    if let Some(choice) = main_block {
        let segment_span = root.child("stage.segment");
        timings.push(apply_block_stage(&exec, &mut docs, choice));
        finish_stage_span(segment_span, timings.last().expect("just pushed"));
    }
    let extract_start = Instant::now();
    let extract_span = root.child("stage.extract");
    let (per_page, extract_timing) = extract_stage(&exec, wrapper, &docs);
    finish_stage_span(extract_span, &extract_timing);
    timings.push(extract_timing);
    let extraction_micros = extract_start.elapsed().as_micros();
    let threads_used = exec.threads();

    // Record the shared run once — the batch is one pipeline
    // invocation, however many requests it carried.
    let batch_stats = PipelineStats {
        pages: docs.len(),
        support_used: wrapper.support,
        conflict_splits: wrapper.conflict_splits,
        rounds: wrapper.rounds,
        extraction_micros,
        stage_timings: timings.clone(),
        threads: threads_used,
        ..PipelineStats::default()
    };
    obs.counter_add("objectrunner.core.pipeline.extract_only_runs", 1);
    obs.counter_add(
        "objectrunner.core.pipeline.extract_batched_requests",
        batches.len() as u64,
    );
    batch_stats.record_into(obs);
    root.attr_u64(
        "objects",
        per_page.iter().map(Vec::len).sum::<usize>() as u64,
    );
    root.finish();

    // Split along request boundaries; each outcome reports its own
    // page count next to the shared stage timings.
    let mut docs = docs.into_iter();
    let mut per_page = per_page.into_iter();
    batches
        .iter()
        .map(|pages| {
            let n = pages.len();
            let batch_docs: Vec<Document> = docs.by_ref().take(n).collect();
            let batch_pages: Vec<Vec<Instance>> = per_page.by_ref().take(n).collect();
            ExtractOutcome {
                per_page: batch_pages,
                docs: batch_docs,
                stats: PipelineStats {
                    pages: n,
                    support_used: wrapper.support,
                    conflict_splits: wrapper.conflict_splits,
                    rounds: wrapper.rounds,
                    extraction_micros,
                    stage_timings: batch_stats.stage_timings.clone(),
                    threads: threads_used,
                    ..PipelineStats::default()
                },
            }
        })
        .collect()
}

/// What the §IV self-validation loop produced: the winning wrapper
/// plus the cost split between the winner and the speculative/losing
/// support evaluations ("reruns").
struct WrapOutcome {
    wrapper: Wrapper,
    /// Rerun count under the serial loop's accounting (stats field).
    reruns: usize,
    /// CPU spent generating the winning wrapper.
    winner_busy: std::time::Duration,
    /// CPU spent on every other support evaluation.
    rerun_busy: std::time::Duration,
    /// How many non-winning evaluations ran (deterministic — equals
    /// candidate supports minus one, independent of timing).
    rerun_evals: usize,
}

/// The ObjectRunner engine for one source.
#[derive(Debug, Clone)]
pub struct Pipeline {
    sod: Sod,
    recognizers: RecognizerSet,
    /// Compiled, memoizing annotation engine over `recognizers`.
    /// Behind an `Arc` so cloned pipelines (and callers holding one via
    /// [`Pipeline::with_annotator`]) share the compiled automatons and
    /// the warm memo cache instead of recompiling.
    annotator: Arc<Annotator>,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with default configuration.
    pub fn new(sod: Sod, recognizers: RecognizerSet) -> Pipeline {
        let annotator = Arc::new(Annotator::new(&recognizers));
        Pipeline {
            sod,
            recognizers,
            annotator,
            config: PipelineConfig::default(),
        }
    }

    /// A pipeline reusing an existing annotation engine (must be
    /// compiled from `recognizers`); the serving layer uses this to
    /// share the compiled automatons and memo cache across requests.
    pub fn with_annotator(
        sod: Sod,
        recognizers: RecognizerSet,
        annotator: Arc<Annotator>,
    ) -> Pipeline {
        Pipeline {
            sod,
            recognizers,
            annotator,
            config: PipelineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// The SOD this pipeline targets.
    pub fn sod(&self) -> &Sod {
        &self.sod
    }

    /// The shared annotation engine.
    pub fn annotator(&self) -> &Arc<Annotator> {
        &self.annotator
    }

    /// Run on raw HTML pages (the batch entry point: pages parse
    /// concurrently).
    pub fn run_on_html<S: AsRef<str>>(
        &self,
        pages: &[S],
    ) -> Result<PipelineOutcome, PipelineError> {
        let exec = Executor::from_env(self.config.threads);
        let mut root = self.induce_span();
        root.attr_u64("pages", pages.len() as u64);
        let refs: Vec<&str> = pages.iter().map(AsRef::as_ref).collect();
        let parse_span = root.child("stage.parse");
        let (docs, parse_timing) = parse_stage(&exec, &refs);
        finish_stage_span(parse_span, &parse_timing);
        self.run_staged(docs, &exec, vec![parse_timing], root)
    }

    /// Run on already-parsed documents.
    pub fn run_on_documents(&self, docs: Vec<Document>) -> Result<PipelineOutcome, PipelineError> {
        let exec = Executor::from_env(self.config.threads);
        let mut root = self.induce_span();
        root.attr_u64("pages", docs.len() as u64);
        self.run_staged(docs, &exec, Vec::new(), root)
    }

    /// The root span of one induction run, attached under the
    /// configured trace context when one is set.
    fn induce_span(&self) -> Span {
        match self.config.trace_context {
            Some((trace, parent)) => self.config.obs.span_in(trace, parent, "pipeline.induce"),
            None => self.config.obs.trace("pipeline.induce"),
        }
    }

    /// Drive the stage graph over parsed documents.
    fn run_staged(
        &self,
        mut docs: Vec<Document>,
        exec: &Executor,
        mut timings: Vec<StageTiming>,
        mut root: Span,
    ) -> Result<PipelineOutcome, PipelineError> {
        let obs = &self.config.obs;
        // 1. Cleaning (per page).
        let clean_span = root.child("stage.clean");
        timings.push(clean_stage(exec, &mut docs, &self.config.clean));
        finish_stage_span(clean_span, timings.last().expect("just pushed"));

        // 2. Main-block simplification (per-page scoring, whole-source
        // vote, per-page simplification).
        let mut main_block: Option<MainBlockChoice> = None;
        if self.config.use_main_block {
            let segment_span = root.child("stage.segment");
            let (choice, timing) = segment_stage(exec, &mut docs, &LayoutOptions::default());
            main_block = choice;
            timings.push(timing);
            finish_stage_span(segment_span, timings.last().expect("just pushed"));
        }

        let wrap_start = Instant::now();
        // 3. Annotation + sampling (annotation rounds fan out per page;
        // shrinking and selection are whole-source). On failure the
        // open spans close on drop, so the trace still shows where the
        // source was discarded.
        let sample_start = Instant::now();
        let mut sample_span = root.child("stage.sample");
        let cache_hits_before = self.annotator.cache_hits();
        let cache_misses_before = self.annotator.cache_misses();
        let sample_outcome = select_sample_timed_with(
            &docs,
            &self.recognizers,
            &self.annotator,
            &self.sod,
            &self.config.sample,
            self.config.strategy,
            exec,
        )
        .map_err(PipelineError::Sample)?;
        timings.push(StageTiming {
            stage: Stage::Annotate,
            // Annotation has no wall-clock of its own: its rounds are
            // interleaved with Sample's shrinking, so only CPU is
            // attributed here.
            wall_micros: 0,
            cpu_micros: sample_outcome.annotate_busy.as_micros(),
        });
        let mut annotate_span = sample_span.child("stage.annotate");
        annotate_span.add_cpu_micros(sample_outcome.annotate_busy.as_micros() as u64);
        annotate_span.finish();
        // The Sample entry carries selection CPU only — annotation CPU
        // already lives in the Annotate entry above, so attributing
        // `annotate_busy` here again (as this stage once did) would
        // double-count it and push the per-stage CPU total past the
        // pipeline's actual work.
        timings.push(StageTiming::record(
            Stage::Sample,
            sample_start,
            sample_outcome.select_busy,
        ));
        let sample = sample_outcome.sample;
        sample_span.attr_u64("sample_pages", sample.len() as u64);
        sample_span.add_cpu_micros(sample_outcome.select_busy.as_micros() as u64);
        sample_span.finish();

        // 4. Wrapper generation with the self-validation loop (support
        // values evaluated concurrently).
        let wrap_stage_start = Instant::now();
        let mut wrap_span = root.child("stage.wrap");
        let wrap = self.best_wrapper(&sample, exec)?;
        // Speculative/losing support evaluations get their own entry
        // (wall 0: they overlap the Wrap stage's clock) so aggregate
        // per-stage CPU sums to the pipeline's real work.
        if wrap.rerun_evals > 0 {
            timings.push(StageTiming {
                stage: Stage::SampleRerun,
                wall_micros: 0,
                cpu_micros: wrap.rerun_busy.as_micros(),
            });
            let mut rerun_span = wrap_span.child("sample.rerun");
            rerun_span.attr_u64("evals", wrap.rerun_evals as u64);
            rerun_span.add_cpu_micros(wrap.rerun_busy.as_micros() as u64);
            rerun_span.finish();
        }
        timings.push(StageTiming::record(
            Stage::Wrap,
            wrap_stage_start,
            wrap.winner_busy,
        ));
        wrap_span.attr_u64("support", wrap.wrapper.support as u64);
        wrap_span.attr_f64("quality", wrap.wrapper.quality);
        wrap_span.add_cpu_micros(wrap.winner_busy.as_micros() as u64);
        wrap_span.finish();
        let wrapping_micros = wrap_start.elapsed().as_micros();

        // 5. Extraction from all pages (per page).
        let extract_start = Instant::now();
        let extract_span = root.child("stage.extract");
        let (per_page, extract_timing) = extract_stage(exec, &wrap.wrapper, &docs);
        finish_stage_span(extract_span, &extract_timing);
        let objects: Vec<Instance> = per_page.into_iter().flatten().collect();
        timings.push(extract_timing);
        let extraction_micros = extract_start.elapsed().as_micros();

        let stats = PipelineStats {
            pages: docs.len(),
            sample_pages: sample.len(),
            support_used: wrap.wrapper.support,
            conflict_splits: wrap.wrapper.conflict_splits,
            rounds: wrap.wrapper.rounds,
            reruns: wrap.reruns,
            wrapping_micros,
            extraction_micros,
            stage_timings: timings,
            threads: exec.threads(),
            annotation_cache_hits: self.annotator.cache_hits() - cache_hits_before,
            annotation_cache_misses: self.annotator.cache_misses() - cache_misses_before,
        };
        obs.counter_add("objectrunner.core.pipeline.induce_runs", 1);
        stats.record_into(obs);
        root.attr_u64("objects", objects.len() as u64);
        root.finish();
        Ok(PipelineOutcome {
            objects,
            wrapper: wrap.wrapper,
            main_block,
            stats,
        })
    }

    /// §IV "automatic variation of parameters": run wrapper generation
    /// for each support value — concurrently — then pick the winner by
    /// replaying the serial loop's rule over the results in support
    /// order: best quality wins (earliest support on ties), stopping at
    /// the first support that reaches the quality threshold. Supports
    /// past a serial early stop are computed speculatively and
    /// discarded, so the outcome (wrapper *and* rerun count) is
    /// byte-identical to the sequential loop.
    fn best_wrapper(
        &self,
        sample: &[AnnotatedPage],
        exec: &Executor,
    ) -> Result<WrapOutcome, PipelineError> {
        let (lo, hi) = self.config.support_range;
        let supports: Vec<usize> = (lo..=hi.max(lo)).collect();
        // Each evaluation times itself so the winner's cost can be
        // split from the speculative/losing reruns afterwards.
        let (results, _busy) = exec.map_timed(&supports, |_, &support| {
            let eval_start = Instant::now();
            let diff_cfg = DiffConfig {
                eq: EqConfig {
                    min_support: support,
                    annotations_guard: self.config.annotations_guard,
                    ..EqConfig::default()
                },
                ..DiffConfig::default()
            };
            let result = generate_wrapper(sample, &self.sod, &diff_cfg);
            (result, eval_start.elapsed())
        });

        let mut best: Option<(Wrapper, usize)> = None;
        let mut last_err: Option<WrapperError> = None;
        let mut reruns = 0usize;
        for (i, (result, _)) in results.iter().enumerate() {
            match result {
                Ok(w) => {
                    let good_enough = w.quality >= self.config.quality_threshold;
                    if best
                        .as_ref()
                        .map(|(b, _)| w.quality > b.quality)
                        .unwrap_or(true)
                    {
                        best = Some((w.clone(), i));
                    }
                    if good_enough {
                        break;
                    }
                }
                Err(e) => last_err = Some(e.clone()),
            }
            reruns += 1;
        }
        match best {
            Some((wrapper, winner_idx)) => {
                let winner_busy = results[winner_idx].1;
                let rerun_busy = results
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != winner_idx)
                    .map(|(_, (_, elapsed))| *elapsed)
                    .sum();
                Ok(WrapOutcome {
                    wrapper,
                    reruns: reruns.saturating_sub(1),
                    winner_busy,
                    rerun_busy,
                    rerun_evals: results.len() - 1,
                })
            }
            None => Err(PipelineError::Wrapper(
                last_err.unwrap_or(WrapperError::EmptySample),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;
    use objectrunner_sod::{Multiplicity, SodBuilder};

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    fn recognizers(artists: &[&str]) -> RecognizerSet {
        let mut g = Gazetteer::new();
        for a in artists {
            g.insert(a, 0.9, 5.0);
        }
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(g));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    fn source_pages(n_pages: usize) -> Vec<String> {
        (0..n_pages)
            .map(|p| {
                let recs: String = (0..(p % 3 + 1))
                    .map(|i| {
                        format!(
                            "<li><div>Band{p}x{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                format!(
                    "<html><head><title>t</title></head><body>\
                     <div class=\"nav\">home about contact pages</div>\
                     <div class=\"content\"><ul>{recs}</ul></div>\
                     <div class=\"footer\">copyright legal privacy terms</div>\
                     </body></html>"
                )
            })
            .collect()
    }

    #[test]
    fn full_pipeline_extracts_from_synthetic_source() {
        let pages = source_pages(12);
        // Dictionary knows a fifth of the artists (paper: ≥20%).
        let known: Vec<String> = (0..12).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        // Every record extracted: pages have 1..3 records.
        let expected: usize = (0..12).map(|p| p % 3 + 1).sum();
        assert_eq!(outcome.objects.len(), expected);
        // No nav/footer noise in values.
        for o in &outcome.objects {
            let mut vals = Vec::new();
            o.values_of_type("artist", &mut vals);
            for v in vals {
                assert!(v.starts_with("Band"), "noise extracted: {v}");
            }
        }
        assert_eq!(outcome.stats.pages, 12);
        assert!(outcome.stats.sample_pages <= 8);
    }

    #[test]
    fn discards_irrelevant_source() {
        let pages: Vec<String> = (0..8)
            .map(|i| {
                format!("<html><body><p>weather report number {i} nothing else</p></body></html>")
            })
            .collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&["Metallica"]));
        let err = pipeline.run_on_html(&pages).expect_err("discarded");
        assert!(matches!(err, PipelineError::Sample(_)));
    }

    #[test]
    fn random_strategy_also_runs() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                strategy: SampleStrategy::Random(17),
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(!outcome.objects.is_empty());
    }

    #[test]
    fn wrapping_time_is_recorded() {
        let pages = source_pages(10);
        let known: Vec<String> = (0..10).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs));
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(outcome.stats.wrapping_micros > 0);
    }

    #[test]
    fn stage_timings_cover_the_graph() {
        let pages = source_pages(10);
        let known: Vec<String> = (0..10).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs));
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        for stage in [
            Stage::Parse,
            Stage::Clean,
            Stage::Segment,
            Stage::Annotate,
            Stage::Sample,
            Stage::Wrap,
            Stage::Extract,
        ] {
            assert!(
                outcome.stats.stage(stage).is_some(),
                "missing timing for stage {stage}"
            );
        }
        assert!(outcome.stats.threads >= 1);
        // The Sample stage dominates the wrap clock together with Wrap.
        let sample_wall = outcome.stats.stage(Stage::Sample).unwrap().wall_micros;
        let wrap_wall = outcome.stats.stage(Stage::Wrap).unwrap().wall_micros;
        assert!(sample_wall + wrap_wall <= outcome.stats.wrapping_micros + 1_000);
    }

    #[test]
    fn extract_only_matches_full_pipeline() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let config = PipelineConfig {
            sample: SampleConfig {
                sample_size: 8,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs)).with_config(config.clone());
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        assert!(outcome.main_block.is_some(), "segment vote captured");

        let fast = extract_only(
            &outcome.wrapper,
            outcome.main_block.as_ref(),
            &config.clean,
            &pages,
            None,
        );
        let fast_objects: Vec<String> = fast.objects().iter().map(|o| o.to_string()).collect();
        let full_objects: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
        assert_eq!(fast_objects, full_objects, "fast path diverged");

        // Induction stages never ran on the fast path.
        for stage in [Stage::Annotate, Stage::Sample, Stage::Wrap] {
            assert!(
                fast.stats.stage(stage).is_none(),
                "{stage} ran on fast path"
            );
        }
        for stage in [Stage::Parse, Stage::Clean, Stage::Segment, Stage::Extract] {
            assert!(fast.stats.stage(stage).is_some(), "{stage} missing");
        }
    }

    #[test]
    fn stats_json_is_machine_readable() {
        let stats = PipelineStats {
            pages: 3,
            sample_pages: 2,
            support_used: 4,
            stage_timings: vec![StageTiming {
                stage: Stage::Parse,
                wall_micros: 10,
                cpu_micros: 9,
            }],
            threads: 1,
            ..PipelineStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pages\":3"));
        assert!(json.contains("\"stage\":\"parse\""));
        assert!(json.contains("\"wall_micros\":10"));
        // Fixed key order: equal stats render byte-identically.
        assert_eq!(json, stats.clone().to_json());
    }

    #[test]
    fn sample_stage_cpu_is_not_double_counted() {
        // Regression: the Sample entry used to re-attribute
        // `annotate_busy` as its own CPU, so Annotate + Sample summed
        // to twice the annotation work. Run single-threaded, where
        // per-stage busy time is bounded by the stage's wall clock.
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                threads: Some(1),
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        let stats = &outcome.stats;
        let annotate = stats.stage(Stage::Annotate).unwrap();
        let sample = stats.stage(Stage::Sample).unwrap();
        assert!(
            annotate.cpu_micros + sample.cpu_micros
                <= sample.wall_micros + sample.wall_micros / 10 + 500,
            "annotate ({}) + sample ({}) CPU exceeds the sample wall ({}): double-counted",
            annotate.cpu_micros,
            sample.cpu_micros,
            sample.wall_micros
        );
        // Speculative self-validation work is split out, not folded
        // into Wrap: with the default 3..=5 support range two losing
        // evaluations always run.
        let rerun = stats
            .stage(Stage::SampleRerun)
            .expect("sample.rerun entry present for multi-support runs");
        assert_eq!(rerun.wall_micros, 0, "rerun work overlaps the wrap clock");
        let wrap = stats.stage(Stage::Wrap).unwrap();
        assert!(
            wrap.cpu_micros <= wrap.wall_micros + wrap.wall_micros / 10 + 500,
            "wrap CPU ({}) exceeds wrap wall ({}): rerun work not split out",
            wrap.cpu_micros,
            wrap.wall_micros
        );
        // The legacy JSON renders the new entry in canonical order.
        let json = stats.to_json();
        let rerun_pos = json.find("\"stage\":\"sample.rerun\"").expect("rendered");
        let wrap_pos = json.find("\"stage\":\"wrap\"").expect("rendered");
        assert!(rerun_pos < wrap_pos);
    }

    #[test]
    fn pipeline_emits_a_deterministic_span_tree() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let shape = |threads: usize| {
            let obs = objectrunner_obs::Obs::enabled();
            let pipeline =
                Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                    threads: Some(threads),
                    obs: obs.clone(),
                    ..PipelineConfig::default()
                });
            pipeline.run_on_html(&pages).expect("runs");
            let spans = obs.drain_spans();
            // (name, parent name) pairs in id order — ids themselves
            // are handle-local, the tree shape must be invariant.
            spans
                .iter()
                .map(|s| {
                    let parent = spans
                        .iter()
                        .find(|p| p.id == s.parent)
                        .map(|p| p.name)
                        .unwrap_or("");
                    (s.name, parent)
                })
                .collect::<Vec<_>>()
        };
        let tree = shape(1);
        assert_eq!(tree, shape(8), "span tree differs across thread counts");
        assert_eq!(
            tree,
            vec![
                ("pipeline.induce", ""),
                ("stage.parse", "pipeline.induce"),
                ("stage.clean", "pipeline.induce"),
                ("stage.segment", "pipeline.induce"),
                ("stage.sample", "pipeline.induce"),
                ("stage.annotate", "stage.sample"),
                ("stage.wrap", "pipeline.induce"),
                ("sample.rerun", "stage.wrap"),
                ("stage.extract", "pipeline.induce"),
            ]
        );
    }

    #[test]
    fn pipeline_records_metrics_when_enabled() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let obs = objectrunner_obs::Obs::enabled();
        let before = obs.snapshot();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                obs: obs.clone(),
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        let diff = obs.snapshot().diff(&before);
        assert_eq!(diff.counter("objectrunner.core.pipeline.induce_runs"), 1);
        assert_eq!(
            diff.counter("objectrunner.core.pipeline.pages"),
            outcome.stats.pages as u64
        );
        assert_eq!(
            diff.counter("objectrunner.core.annotate.cache_lookups"),
            outcome.stats.annotation_cache_hits + outcome.stats.annotation_cache_misses
        );
        // Stage-ran keys present in the per-run snapshot.
        let run_snap = outcome.stats.snapshot();
        assert!(run_snap
            .counters
            .contains_key("objectrunner.core.stage.wrap.wall_micros"));

        // The extract-only fast path records no induction stages.
        let fast_obs = objectrunner_obs::Obs::enabled();
        let fast = extract_only_with(
            &outcome.wrapper,
            outcome.main_block.as_ref(),
            &CleanOptions::default(),
            &pages,
            None,
            &fast_obs,
            None,
            None,
        );
        let fast_snap = fast.stats.snapshot();
        assert!(!fast_snap
            .counters
            .contains_key("objectrunner.core.stage.wrap.wall_micros"));
        assert_eq!(
            fast_obs
                .snapshot()
                .counter("objectrunner.core.pipeline.extract_only_runs"),
            1
        );
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let run = |threads: usize| {
            let pipeline =
                Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                    threads: Some(threads),
                    sample: SampleConfig {
                        sample_size: 8,
                        ..SampleConfig::default()
                    },
                    ..PipelineConfig::default()
                });
            let outcome = pipeline.run_on_html(&pages).expect("runs");
            let objects: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
            (objects, outcome.stats.support_used, outcome.stats.reruns)
        };
        assert_eq!(run(1), run(8));
    }
}
