//! Main-content block selection (paper §III):
//!
//! "we applied the straightforward heuristic of selecting as the best
//! candidate segment the one described by the largest and most central
//! rectangle in the page. As block sizes and even the block structure
//! may vary from one page to another, across all the pages of a given
//! source, we identified the best candidate block by its tag name, its
//! path in the DOM tree and its attribute names and values."

use crate::blocks::{block_tree, BlockTree};
use crate::layout::{layout_document, LayoutOptions, Rect};
use objectrunner_html::{Document, NodeId, NodeSignature};

/// The outcome of main-block selection over a set of pages.
#[derive(Debug, Clone)]
pub struct MainBlockChoice {
    /// The cross-page identity of the chosen block.
    pub signature: NodeSignature,
    /// How many of the input pages contain a block with this signature.
    pub support: usize,
    /// Score of the winning block on its best page.
    pub score: f64,
}

/// Score of a candidate rectangle: area × centrality.
///
/// Centrality decays with the horizontal distance between the block's
/// center and the viewport's center line; vertically we prefer blocks
/// that start in the upper two-thirds of the page (headers aside).
fn block_score(rect: &Rect, viewport_width: f64, page_height: f64) -> f64 {
    if rect.area() <= 0.0 {
        return 0.0;
    }
    let (cx, _) = rect.center();
    let horiz_offset = ((cx - viewport_width / 2.0).abs() / (viewport_width / 2.0)).min(1.0);
    let centrality = 1.0 - 0.5 * horiz_offset;
    let vert_penalty = if page_height > 0.0 && rect.y > page_height * 0.8 {
        0.5 // likely a footer region
    } else {
        1.0
    };
    rect.area() * centrality * vert_penalty
}

/// Per-page half of main-block selection: lay the page out and score
/// its candidate blocks, returning the best block's cross-page
/// signature and score. Pages are independent, so callers may run this
/// concurrently; [`vote_main_block`] folds the per-page results.
pub fn score_page(doc: &Document, opts: &LayoutOptions) -> Option<(NodeSignature, f64)> {
    objectrunner_obs::global_count("objectrunner.segment.score.pages", 1);
    let layout = layout_document(doc, opts);
    let tree: BlockTree = block_tree(doc, &layout, opts);
    let page_height = tree.root().map(|b| b.rect.h).unwrap_or(0.0);
    // Candidates: non-root blocks. Prefer deeper blocks on ties so we
    // zoom into the content rather than stay at <body>.
    let mut best: Option<(NodeSignature, f64)> = None;
    for block in tree.blocks.iter().skip(1) {
        let Some(sig) = NodeSignature::of(doc, block.node) else {
            continue;
        };
        let mut s = block_score(&block.rect, opts.viewport_width, page_height);
        // Depth tie-break: marginally prefer inner blocks that hold the
        // same content as their wrapper.
        s *= 1.0 + 0.01 * block.depth as f64;
        if best.as_ref().map(|(_, bs)| s > *bs).unwrap_or(true) {
            best = Some((sig, s));
        }
    }
    best
}

/// Select the main-content block for a *source* (a set of pages sharing
/// a template): run the per-page heuristic, then vote across pages so
/// the block is identified by a signature that exists on (most) pages.
pub fn select_main_block(pages: &[Document], opts: &LayoutOptions) -> Option<MainBlockChoice> {
    vote_main_block(pages.iter().map(|doc| score_page(doc, opts)))
}

/// Cross-page half of main-block selection: fold per-page
/// [`score_page`] results into the winning block. The vote is a
/// sequential reduction, so feeding it per-page results **in page
/// order** yields the same choice whether the scoring ran sequentially
/// or fanned out across threads.
pub fn vote_main_block<I>(choices: I) -> Option<MainBlockChoice>
where
    I: IntoIterator<Item = Option<(NodeSignature, f64)>>,
{
    let mut votes: Vec<(NodeSignature, usize, f64)> = Vec::new();
    let mut candidate_pages = 0u64;
    for choice in choices {
        let Some((sig, score)) = choice else {
            continue;
        };
        candidate_pages += 1;
        match votes.iter_mut().find(|(s, _, _)| *s == sig) {
            Some((_, count, best_score)) => {
                *count += 1;
                if score > *best_score {
                    *best_score = score;
                }
            }
            None => votes.push((sig, 1, score)),
        }
    }
    if candidate_pages > 0 {
        objectrunner_obs::global_count(
            "objectrunner.segment.vote.candidate_pages",
            candidate_pages,
        );
    }
    votes
        .into_iter()
        .max_by(|a, b| {
            (a.1, a.2)
                .partial_cmp(&(b.1, b.2))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(signature, support, score)| MainBlockChoice {
            signature,
            support,
            score,
        })
}

/// Reduce `doc` to the subtree rooted at the chosen main block: every
/// other child of the block's ancestors is detached. Returns the block
/// node when found on this page.
pub fn simplify_to_main_block(doc: &mut Document, choice: &MainBlockChoice) -> Option<NodeId> {
    let matches = choice.signature.find_in(doc);
    let &target = matches.first()?;
    // Detach all siblings along the ancestor chain.
    let mut keep = target;
    while let Some(parent) = doc.parent(keep) {
        let siblings: Vec<NodeId> = doc
            .children(parent)
            .iter()
            .copied()
            .filter(|&c| c != keep)
            .collect();
        for s in siblings {
            doc.detach(s);
        }
        keep = parent;
    }
    Some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;

    fn page(records: usize) -> String {
        let recs: String = (0..records)
            .map(|i| format!("<li>record {i} with a fairly descriptive body text</li>"))
            .collect();
        format!(
            "<html><body>\
             <div class=\"nav\">home products about contact</div>\
             <div class=\"content\"><ul>{recs}</ul></div>\
             <div class=\"footer\">copyright fine print terms privacy</div>\
             </body></html>"
        )
    }

    #[test]
    fn picks_the_content_block_not_nav_or_footer() {
        let pages: Vec<Document> = (0..3).map(|i| parse(&page(10 + i))).collect();
        let choice = select_main_block(&pages, &LayoutOptions::default()).expect("choice");
        assert!(
            choice
                .signature
                .attrs
                .iter()
                .any(|&(_, v)| v.as_str() == "content")
                || choice.signature.path.render().contains("ul"),
            "chose {:?}",
            choice.signature
        );
        assert_eq!(choice.support, 3);
    }

    #[test]
    fn simplify_removes_other_regions() {
        let mut doc = parse(&page(10));
        let choice = select_main_block(std::slice::from_ref(&doc), &LayoutOptions::default())
            .expect("choice");
        simplify_to_main_block(&mut doc, &choice).expect("block on page");
        let text = doc.text_content(doc.root());
        assert!(text.contains("record 0"));
        assert!(!text.contains("copyright"));
        assert!(!text.contains("home products"));
    }

    #[test]
    fn signature_survives_varying_record_counts() {
        let pages: Vec<Document> = [3usize, 30, 12].iter().map(|&n| parse(&page(n))).collect();
        let choice = select_main_block(&pages, &LayoutOptions::default()).expect("choice");
        for p in &pages {
            assert_eq!(choice.signature.find_in(p).len(), 1);
        }
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(select_main_block(&[], &LayoutOptions::default()).is_none());
    }

    #[test]
    fn block_score_prefers_center() {
        let wide = Rect {
            x: 0.0,
            y: 0.0,
            w: 1024.0,
            h: 100.0,
        };
        let off_left = Rect {
            x: 0.0,
            y: 0.0,
            w: 200.0,
            h: 512.0,
        };
        let centered = Rect {
            x: 412.0,
            y: 0.0,
            w: 200.0,
            h: 512.0,
        };
        // Same area: centered beats off-center.
        assert!(block_score(&centered, 1024.0, 1000.0) > block_score(&off_left, 1024.0, 1000.0));
        // Area dominates.
        assert!(block_score(&wide, 1024.0, 1000.0) > block_score(&off_left, 1024.0, 1000.0));
    }
}
