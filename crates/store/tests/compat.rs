//! Backward compatibility: a wrapper persisted by the v1 format (no
//! stable node ids, no repair provenance) must keep loading after the
//! v2 bump, with the v1 defaults filled in, and re-saving it must
//! emit a well-formed v2 file that is itself a save∘load fixed point.

use objectrunner_store::{load, save, FORMAT_VERSION, MIN_SUPPORTED_VERSION};

const V1_FIXTURE: &[u8] = include_bytes!("fixtures/v1.orw");

#[test]
fn v1_wrappers_still_load() {
    let text = std::str::from_utf8(V1_FIXTURE).expect("fixture is UTF-8");
    assert!(
        text.starts_with("ORWRAP v1 "),
        "fixture is not a v1 file: {}",
        &text[..20.min(text.len())]
    );
    let stored = load(text).expect("v1 wrapper must load under v2");

    // v1 carried no stable ids: the loader assigns them in index
    // order, exactly what a v1-era induction would have produced.
    for (i, node) in stored.wrapper.template.nodes.iter().enumerate() {
        assert_eq!(
            node.stable_id, i as u64,
            "v1 node {i} did not default to its index"
        );
    }
    // v1 carried no provenance.
    assert!(stored.repair.is_none());
}

#[test]
fn resaving_a_v1_wrapper_emits_v2_and_reaches_the_fixed_point() {
    let text = std::str::from_utf8(V1_FIXTURE).expect("fixture is UTF-8");
    let stored = load(text).expect("v1 wrapper must load");
    let resaved = save(&stored);
    assert!(
        resaved.starts_with(&format!("ORWRAP v{FORMAT_VERSION} ")),
        "save must emit the current version"
    );
    let reloaded = load(&resaved).expect("resaved wrapper must load");
    assert_eq!(resaved, save(&reloaded), "v2 re-save is not a fixed point");
}

#[test]
fn version_window_spans_v1_to_current() {
    assert_eq!(MIN_SUPPORTED_VERSION, 1);
    const { assert!(FORMAT_VERSION >= 2) };
}
