//! Run all three systems — ObjectRunner, ExAlg and RoadRunner — on the
//! same source and print the paper's precision measures side by side
//! (a single-source slice of Table III).
//!
//! Pass a corpus site name as the first argument to pick the source,
//! e.g. `cargo run --release --example compare_baselines -- "bn"`.
//! Try a `FixedRecordCount` source (like `bn`) to watch RoadRunner's
//! "too regular" failure, or a clean one (like `towerrecords`).

use objectrunner::core::sample::SampleStrategy;
use objectrunner::eval::runners::{run_exalg, run_objectrunner, run_roadrunner};
use objectrunner::webgen::{generate_site, paper_corpus};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "towerrecords".to_owned());
    let corpus = paper_corpus();
    let spec = corpus
        .sites
        .iter()
        .find(|s| s.name.contains(&name))
        .unwrap_or_else(|| panic!("no corpus site matching {name:?}"));
    println!(
        "source: {} ({}; quirks {:?})",
        spec.name,
        spec.domain.name(),
        spec.quirks
    );
    let source = generate_site(spec);
    println!(
        "{} pages, {} golden objects\n",
        source.pages.len(),
        source.object_count()
    );

    println!(
        "{:<12} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6}",
        "system", "Pc", "Pp", "No", "Oc", "Op", "Oi"
    );
    for (label, run) in [
        (
            "ObjectRunner",
            run_objectrunner(&source, SampleStrategy::SodBased),
        ),
        ("ExAlg", run_exalg(&source)),
        ("RoadRunner", run_roadrunner(&source)),
    ] {
        let r = &run.report;
        if r.discarded {
            println!("{label:<12} (source discarded)");
            continue;
        }
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>6} {:>6} {:>6} {:>6}",
            label,
            r.pc() * 100.0,
            r.pp() * 100.0,
            r.no,
            r.oc,
            r.op,
            r.oi
        );
    }
}
