//! The typed metrics registry: counters, gauges, and fixed-bucket
//! histograms, plus immutable [`MetricsSnapshot`]s with a stable diff
//! API.
//!
//! Naming convention (enforced socially, documented in DESIGN.md §10):
//! `objectrunner.<crate>.<stage-or-subsystem>.<name>`, e.g.
//! `objectrunner.core.stage.wrap.wall_micros` or
//! `objectrunner.serve.extract.latency_micros.books`. Names ending in
//! `_micros` (and latency/drift histograms) carry machine-dependent
//! timing values; everything else is deterministic for a fixed corpus,
//! which is what lets `ci.sh obs-smoke` diff a snapshot against a
//! committed baseline.
//!
//! The registry is lock-light: each metric is an `Arc` of atomics, so
//! the name→metric map is locked only on first registration (or on
//! cold lookups); hot paths hold the `Arc` and update wait-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency buckets (microseconds): 50µs … 250ms, then +inf.
pub const LATENCY_BUCKETS_MICROS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// Default drift-score buckets (score × 1000, i.e. per-mille): deciles.
pub const DRIFT_BUCKETS_MILLI: [u64; 9] = [100, 200, 300, 400, 500, 600, 700, 800, 900];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Shift the gauge by a signed delta — the level-tracking form
    /// (in-flight requests, live connections, queue depth): increment
    /// on entry, decrement on exit.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. `bounds` are inclusive upper bounds; one
/// implicit overflow bucket catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; `counts` has one extra overflow slot.
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the inclusive upper bound
    /// of the bucket holding the `q`-th recorded value (`0.0..=1.0`).
    /// Values in the overflow bucket report the last bound — a floor,
    /// honest for "p99 ≤ bound" claims but not an interpolation. The
    /// bench bins use this for p50/p99 latency lines.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(0));
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// The live registry behind an [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    /// Hold the `Arc` on hot paths instead of re-resolving the name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram registered under `name`; `bounds` applies only on
    /// first registration (a histogram's buckets are fixed for life).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Freeze every metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("counter registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, ordered view of the registry. The `diff` method is the
/// test-facing API: grab a snapshot, run the code under test, diff
/// against a fresh snapshot, and assert on *deltas* — "the Wrap stage
/// did not run" becomes `diff.counter("….stage.wrap.runs") == 0`
/// instead of string-matching timing output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram state (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Insert/overwrite a counter (snapshot-builder use, e.g.
    /// `PipelineStats` externalizing itself into metric names).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// The change from `base` to `self`: counters subtract
    /// (saturating), gauges report the new value, histogram counts
    /// subtract element-wise. Keys absent from `base` keep their value.
    pub fn diff(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(base.counter(k))))
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let b = base.histogram(k);
                let counts = h
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c.saturating_sub(b.counts.get(i).copied().unwrap_or(0)))
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts,
                        sum: h.sum.saturating_sub(b.sum),
                        count: h.count.saturating_sub(b.count),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Canonical JSON rendering: fixed key order (alphabetical within
    /// each section), integers only — byte-stable for equal snapshots.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
                escape(k),
                join_u64(&h.bounds),
                join_u64(&h.counts),
                h.sum,
                h.count
            ));
        }
        out.push_str("}}");
        out
    }
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Escape a metric name / string for embedding in JSON.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        reg.counter("objectrunner.test.a").add(3);
        reg.counter("objectrunner.test.a").add(4);
        reg.gauge("objectrunner.test.g").set(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("objectrunner.test.a"), 7);
        assert_eq!(snap.gauge("objectrunner.test.g"), -2);
        assert_eq!(snap.counter("objectrunner.test.absent"), 0);
    }

    #[test]
    fn gauge_add_tracks_levels() {
        let reg = Registry::new();
        let g = reg.gauge("objectrunner.test.inflight");
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.get(), 1);
        g.set(10);
        g.add(-10);
        assert_eq!(reg.snapshot().gauge("objectrunner.test.inflight"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2]); // ≤10, ≤100, overflow
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 5 + 10 + 11 + 100 + 101 + 5_000);
        assert!((s.mean() - (s.sum as f64 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for v in [1, 2, 3, 50, 60, 70, 80, 90, 500, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 10, "q=0 lands in the first bucket");
        assert_eq!(s.quantile(0.3), 10); // 3 of 10 values are ≤10
        assert_eq!(s.quantile(0.5), 100);
        assert_eq!(s.quantile(0.8), 100);
        assert_eq!(s.quantile(0.9), 1_000);
        assert_eq!(s.quantile(0.99), 1_000, "overflow reports the last bound");
        assert_eq!(s.quantile(1.0), 1_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_diff_isolates_the_delta() {
        let reg = Registry::new();
        reg.counter("objectrunner.core.stage.wrap.runs").add(2);
        reg.histogram("objectrunner.test.h", &[10]).record(3);
        let before = reg.snapshot();
        reg.counter("objectrunner.core.stage.extract.runs").add(1);
        reg.histogram("objectrunner.test.h", &[10]).record(50);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(
            d.counter("objectrunner.core.stage.wrap.runs"),
            0,
            "wrap did not run"
        );
        assert_eq!(d.counter("objectrunner.core.stage.extract.runs"), 1);
        assert_eq!(d.histogram("objectrunner.test.h").count, 1);
        assert_eq!(d.histogram("objectrunner.test.h").counts, vec![0, 1]);
    }

    #[test]
    fn snapshot_json_is_canonical() {
        let reg = Registry::new();
        reg.counter("b.count").add(1);
        reg.counter("a.count").add(2);
        reg.histogram("h", &[5]).record(7);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let expected = concat!(
            "{\"counters\":{\"a.count\":2,\"b.count\":1},\"gauges\":{},",
            "\"histograms\":{\"h\":{\"bounds\":[5],\"counts\":[0,1],\"sum\":7,\"count\":1}}}"
        );
        assert_eq!(json, expected);
        assert_eq!(json, reg.snapshot().to_json());
    }
}
