//! Streaming, memory-bounded extraction for million-page crawls.
//!
//! [`extract_stream`] is the crawl-scale sibling of
//! [`crate::pipeline::extract_only`]: it applies an already-induced
//! wrapper to an *iterator* of pages, delivering each page's instances
//! to a sink callback the moment they are ready — in page order — and
//! holding only a bounded window of pages in memory at once. Peak
//! memory is `O(threads × window)` pages regardless of corpus size,
//! where the batch path's is `O(corpus)`: it materializes every parsed
//! [`Document`] before extraction begins.
//!
//! Per-page preparation is byte-for-byte the batch path's — the same
//! cleaning options, the same persisted main-block replay, the same
//! wrapper application — so the streamed output is identical to
//! `extract_only` on the same pages (pinned by the
//! `stream_equivalence` integration suite). Each worker owns one
//! [`PageParser`], whose arena is reset between pages: a million-page
//! run allocates like a one-page run.
//!
//! Ordering and backpressure share one mutex: workers claim page
//! indices from the source iterator, finished pages park in a reorder
//! buffer, and the caller's thread drains the buffer in index order,
//! invoking the sink outside the lock. Workers stall whenever
//! `claimed - emitted` reaches the window, so one slow page cannot let
//! the buffer grow without bound.

use crate::exec::resolve_threads;
use crate::wrapper::Wrapper;
use objectrunner_html::{clean_document, CleanOptions, PageParser};
use objectrunner_obs::Obs;
use objectrunner_segment::{simplify_to_main_block, MainBlockChoice};
use objectrunner_sod::Instance;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Configuration for [`extract_stream`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Worker threads; `None` resolves `OBJECTRUNNER_THREADS` then
    /// available parallelism (same rule as the batch pipeline).
    /// `Some(1)` runs everything inline on the caller's thread.
    pub threads: Option<usize>,
    /// In-flight pages allowed per worker: the reorder buffer plus
    /// pages being processed never exceed `threads × window_per_thread`.
    pub window_per_thread: usize,
    /// Emit a `stream.page` span for one page in every `span_sample`
    /// (0 disables page spans). Sampling keeps tracing overhead flat —
    /// at the default rate it is unmeasurable next to parse cost.
    pub span_sample: usize,
    /// Observability handle ([`Obs::disabled`] by default).
    pub obs: Obs,
    /// `(trace, parent span)` to attach this run's spans under.
    pub trace_context: Option<(u64, u64)>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            threads: None,
            window_per_thread: 4,
            span_sample: 1024,
            obs: Obs::disabled(),
            trace_context: None,
        }
    }
}

/// Run statistics of one [`extract_stream`] call.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Pages consumed from the source iterator.
    pub pages: usize,
    /// Instances delivered to the sink, all pages summed.
    pub objects: usize,
    /// Worker threads the run used.
    pub threads: usize,
    /// End-to-end wall clock.
    pub wall_micros: u128,
    /// Summed worker busy time (≈ CPU cost of the run).
    pub busy_micros: u128,
    /// Largest per-page text arena across all workers — the streaming
    /// path's memory high-water mark scales with the biggest page, not
    /// the corpus.
    pub arena_peak_bytes: usize,
}

impl StreamStats {
    /// Throughput over the whole run.
    pub fn pages_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            return 0.0;
        }
        self.pages as f64 * 1_000_000.0 / self.wall_micros as f64
    }
}

/// Histogram bounds for `objectrunner.core.stream.arena_peak_bytes`
/// (1 KiB … 16 MiB in powers of four).
const ARENA_BOUNDS: &[u64] = &[
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 24,
];

/// What one worker hands back when it exits.
#[derive(Default)]
struct WorkerExit {
    busy_micros: u128,
    arena_peak_bytes: usize,
}

/// Shared scheduler state: the source iterator, the reorder buffer,
/// and the claim/emit cursors, all under one lock.
struct State<I> {
    source: I,
    claimed: usize,
    emitted: usize,
    source_done: bool,
    ready: BTreeMap<usize, Vec<Instance>>,
}

/// Apply an induced wrapper to a stream of pages, invoking
/// `sink(page_index, instances)` for every page **in page order** on
/// the caller's thread. See the module docs for the memory model; the
/// output is identical to [`crate::pipeline::extract_only`] over the
/// collected pages at any thread count.
pub fn extract_stream<I, S, F>(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: I,
    config: &StreamConfig,
    mut sink: F,
) -> StreamStats
where
    I: IntoIterator<Item = S>,
    I::IntoIter: Send,
    S: AsRef<str> + Send,
    F: FnMut(usize, Vec<Instance>),
{
    let threads = resolve_threads(config.threads);
    let obs = &config.obs;
    let start = Instant::now();
    let mut root = match config.trace_context {
        Some((trace, parent)) => obs.span_in(trace, parent, "pipeline.extract_stream"),
        None => obs.trace("pipeline.extract_stream"),
    };
    let page_span_ctx = root.context();

    let mut stats = StreamStats {
        threads,
        ..StreamStats::default()
    };

    if threads <= 1 {
        // Inline path: no pool, no locks, one reusable parser.
        let busy_start = Instant::now();
        let mut parser = PageParser::new();
        for (i, page) in pages.into_iter().enumerate() {
            let span = sampled_span(obs, config, page_span_ctx, i);
            let out = process_page(page.as_ref(), &mut parser, wrapper, main_block, clean);
            finish_page_span(span, &out);
            stats.pages += 1;
            stats.objects += out.len();
            sink(i, out);
        }
        stats.busy_micros = busy_start.elapsed().as_micros();
        stats.arena_peak_bytes = parser.arena_peak_bytes();
    } else {
        let window = threads * config.window_per_thread.max(1);
        let state = Mutex::new(State {
            source: pages.into_iter(),
            claimed: 0,
            emitted: 0,
            source_done: false,
            ready: BTreeMap::new(),
        });
        // Workers wait on `space` when the window is full; the caller's
        // thread waits on `ready` for the next in-order page.
        let space = Condvar::new();
        let ready = Condvar::new();
        let exits: Mutex<Vec<WorkerExit>> = Mutex::new(Vec::with_capacity(threads));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let busy_start = Instant::now();
                    let mut parser = PageParser::new();
                    loop {
                        let claim = {
                            let mut st = state.lock().expect("stream worker panicked");
                            loop {
                                if st.source_done {
                                    break None;
                                }
                                if st.claimed - st.emitted < window {
                                    match st.source.next() {
                                        Some(page) => {
                                            let i = st.claimed;
                                            st.claimed += 1;
                                            break Some((i, page));
                                        }
                                        None => {
                                            st.source_done = true;
                                            // Unblock everyone for shutdown.
                                            space.notify_all();
                                            ready.notify_all();
                                            break None;
                                        }
                                    }
                                }
                                st = space.wait(st).expect("stream worker panicked");
                            }
                        };
                        let Some((i, page)) = claim else { break };
                        let span = sampled_span(obs, config, page_span_ctx, i);
                        let out =
                            process_page(page.as_ref(), &mut parser, wrapper, main_block, clean);
                        finish_page_span(span, &out);
                        let mut st = state.lock().expect("stream worker panicked");
                        st.ready.insert(i, out);
                        // Only the in-order page unblocks the consumer,
                        // but waking it on any insert keeps this simple
                        // and the consumer re-checks under the lock.
                        ready.notify_all();
                    }
                    exits
                        .lock()
                        .expect("stream worker panicked")
                        .push(WorkerExit {
                            busy_micros: busy_start.elapsed().as_micros(),
                            arena_peak_bytes: parser.arena_peak_bytes(),
                        });
                });
            }

            // Consumer: drain the reorder buffer in index order on the
            // caller's thread; the sink always runs outside the lock.
            loop {
                let next = {
                    let mut st = state.lock().expect("stream worker panicked");
                    loop {
                        let i = st.emitted;
                        if let Some(out) = st.ready.remove(&i) {
                            st.emitted += 1;
                            space.notify_all();
                            break Some((i, out));
                        }
                        if st.source_done && st.emitted == st.claimed {
                            break None;
                        }
                        st = ready.wait(st).expect("stream worker panicked");
                    }
                };
                let Some((i, out)) = next else { break };
                stats.pages += 1;
                stats.objects += out.len();
                sink(i, out);
            }
        });

        for exit in exits.into_inner().expect("stream worker panicked") {
            stats.busy_micros += exit.busy_micros;
            stats.arena_peak_bytes = stats.arena_peak_bytes.max(exit.arena_peak_bytes);
        }
    }

    stats.wall_micros = start.elapsed().as_micros();
    if obs.is_enabled() {
        obs.counter_add("objectrunner.core.stream.runs", 1);
        obs.counter_add("objectrunner.core.stream.pages", stats.pages as u64);
        obs.counter_add("objectrunner.core.stream.objects", stats.objects as u64);
        obs.gauge_set(
            "objectrunner.core.stream.pages_per_sec",
            stats.pages_per_sec() as i64,
        );
        obs.histogram_record(
            "objectrunner.core.stream.arena_peak_bytes",
            ARENA_BOUNDS,
            stats.arena_peak_bytes as u64,
        );
    }
    root.attr_u64("pages", stats.pages as u64);
    root.attr_u64("objects", stats.objects as u64);
    root.add_cpu_micros(stats.busy_micros as u64);
    root.finish();
    stats
}

/// One page through the extract-only preparation chain. Mirrors the
/// batch stages byte-for-byte: Parse → Clean → Segment replay →
/// Extract.
fn process_page(
    html: &str,
    parser: &mut PageParser,
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
) -> Vec<Instance> {
    let mut doc = parser.parse(html);
    clean_document(&mut doc, clean);
    if let Some(choice) = main_block {
        let _ = simplify_to_main_block(&mut doc, choice);
    }
    wrapper.extract_document(&doc)
}

/// The 1-in-N sampled per-page span (inert when not sampled).
fn sampled_span(
    obs: &Obs,
    config: &StreamConfig,
    ctx: (u64, u64),
    page: usize,
) -> Option<objectrunner_obs::Span> {
    if !obs.is_enabled() || config.span_sample == 0 || !page.is_multiple_of(config.span_sample) {
        return None;
    }
    let mut span = obs.span_in(ctx.0, ctx.1, "stream.page");
    span.attr_u64("page", page as u64);
    Some(span)
}

fn finish_page_span(span: Option<objectrunner_obs::Span>, out: &[Instance]) {
    if let Some(mut span) = span {
        span.attr_u64("objects", out.len() as u64);
        span.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{extract_only, Pipeline, PipelineConfig};
    use crate::sample::SampleConfig;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::{Recognizer, RecognizerSet};
    use objectrunner_sod::{Multiplicity, Sod, SodBuilder};

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    fn recognizers(artists: &[&str]) -> RecognizerSet {
        let mut g = Gazetteer::new();
        for a in artists {
            g.insert(a, 0.9, 5.0);
        }
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(g));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    fn source_pages(n_pages: usize) -> Vec<String> {
        (0..n_pages)
            .map(|p| {
                let recs: String = (0..(p % 3 + 1))
                    .map(|i| {
                        format!(
                            "<li><div>Band{p}x{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                format!(
                    "<html><head><title>t</title></head><body>\
                     <div class=\"nav\">home about contact pages</div>\
                     <div class=\"content\"><ul>{recs}</ul></div>\
                     <div class=\"footer\">copyright legal privacy terms</div>\
                     </body></html>"
                )
            })
            .collect()
    }

    fn induce() -> (Wrapper, Option<MainBlockChoice>, CleanOptions, Vec<String>) {
        let pages = source_pages(24);
        let known: Vec<String> = (0..24).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let config = PipelineConfig {
            sample: SampleConfig {
                sample_size: 8,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs)).with_config(config.clone());
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        (outcome.wrapper, outcome.main_block, config.clean, pages)
    }

    fn streamed(
        wrapper: &Wrapper,
        main_block: Option<&MainBlockChoice>,
        clean: &CleanOptions,
        pages: &[String],
        threads: usize,
    ) -> (Vec<(usize, Vec<String>)>, StreamStats) {
        let mut got = Vec::new();
        let stats = extract_stream(
            wrapper,
            main_block,
            clean,
            pages.iter().map(String::as_str),
            &StreamConfig {
                threads: Some(threads),
                window_per_thread: 2,
                ..StreamConfig::default()
            },
            |i, instances| {
                got.push((i, instances.iter().map(|o| o.to_string()).collect()));
            },
        );
        (got, stats)
    }

    #[test]
    fn stream_matches_batch_extract_only() {
        let (wrapper, main_block, clean, pages) = induce();
        let batch = extract_only(&wrapper, main_block.as_ref(), &clean, &pages, None);
        let expect: Vec<(usize, Vec<String>)> = batch
            .per_page
            .iter()
            .enumerate()
            .map(|(i, page)| (i, page.iter().map(|o| o.to_string()).collect()))
            .collect();
        for threads in [1, 4] {
            let (got, stats) = streamed(&wrapper, main_block.as_ref(), &clean, &pages, threads);
            assert_eq!(got, expect, "threads={threads} diverged from batch");
            assert_eq!(stats.pages, pages.len());
            assert_eq!(
                stats.objects,
                expect.iter().map(|(_, v)| v.len()).sum::<usize>()
            );
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn sink_sees_pages_in_order_at_any_thread_count() {
        let (wrapper, main_block, clean, pages) = induce();
        for threads in [1, 2, 8] {
            let (got, _) = streamed(&wrapper, main_block.as_ref(), &clean, &pages, threads);
            let order: Vec<usize> = got.iter().map(|(i, _)| *i).collect();
            assert_eq!(order, (0..pages.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_source_is_a_clean_noop() {
        let (wrapper, main_block, clean, _) = induce();
        let none: Vec<String> = Vec::new();
        let (got, stats) = streamed(&wrapper, main_block.as_ref(), &clean, &none, 4);
        assert!(got.is_empty());
        assert_eq!(stats.pages, 0);
        assert_eq!(stats.objects, 0);
    }

    #[test]
    fn stream_records_metrics_and_sampled_spans() {
        let (wrapper, main_block, clean, pages) = induce();
        let obs = Obs::enabled();
        let before = obs.snapshot();
        let mut emitted = 0usize;
        let stats = extract_stream(
            &wrapper,
            main_block.as_ref(),
            &clean,
            pages.iter().map(String::as_str),
            &StreamConfig {
                threads: Some(2),
                span_sample: 8,
                obs: obs.clone(),
                ..StreamConfig::default()
            },
            |_, _| emitted += 1,
        );
        assert_eq!(emitted, pages.len());
        let diff = obs.snapshot().diff(&before);
        assert_eq!(diff.counter("objectrunner.core.stream.runs"), 1);
        assert_eq!(
            diff.counter("objectrunner.core.stream.pages"),
            pages.len() as u64
        );
        assert_eq!(
            diff.counter("objectrunner.core.stream.objects"),
            stats.objects as u64
        );
        assert!(
            obs.snapshot()
                .gauge("objectrunner.core.stream.pages_per_sec")
                >= 0
        );
        let spans = obs.drain_spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "pipeline.extract_stream")
            .collect();
        assert_eq!(roots.len(), 1);
        // 24 pages at 1-in-8 sampling: pages 0, 8, 16.
        let page_spans: Vec<_> = spans.iter().filter(|s| s.name == "stream.page").collect();
        assert_eq!(page_spans.len(), 3);
        for s in &page_spans {
            assert_eq!(s.parent, roots[0].id, "page span attached to root");
        }
    }

    #[test]
    fn arena_peak_tracks_biggest_page_not_corpus() {
        let (wrapper, main_block, clean, pages) = induce();
        let (_, once) = streamed(&wrapper, main_block.as_ref(), &clean, &pages[..4], 1);
        let (_, many) = streamed(&wrapper, main_block.as_ref(), &clean, &pages, 1);
        // Same template ⇒ the per-page arena high-water mark does not
        // grow with corpus size.
        assert_eq!(once.arena_peak_bytes, many.arena_peak_bytes);
    }
}
