//! # objectrunner-segment
//!
//! VIPS/ViNTs-style visual page segmentation (paper §III,
//! pre-processing): the paper renders each page, segments it into
//! visual blocks, and keeps only the "central" segment — "the one
//! described by the largest and most central rectangle in the page".
//!
//! A real browser engine is out of scope, so this crate implements a
//! deterministic **box-model layout engine** over the cleaned DOM:
//!
//! * [`layout`] — assigns every element a rectangle in a nominal
//!   viewport using CSS-like block/inline flow defaults.
//! * [`blocks`] — extracts the VIPS block tree (visually separated
//!   regions) from the laid-out DOM.
//! * [`main_block`] — the paper's heuristic: pick the block whose
//!   rectangle maximizes *area × centrality*, and re-identify it across
//!   all pages of the source by tag name, DOM path and attributes.
//!
//! The substitution preserves the relevant behaviour because the
//! downstream algorithm only consumes (a) a block tree and (b) the
//! chosen main block's [`objectrunner_html::NodeSignature`].

pub mod blocks;
pub mod layout;
pub mod main_block;

pub use blocks::{block_tree, Block, BlockTree};
pub use layout::{layout_document, LayoutOptions, Rect};
pub use main_block::{
    score_page, select_main_block, simplify_to_main_block, vote_main_block, MainBlockChoice,
};
