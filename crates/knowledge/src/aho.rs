//! From-scratch Aho–Corasick automaton over bytes.
//!
//! One automaton holds the normalized entries of *every* dictionary
//! type, so a single left-to-right scan of a text node reports every
//! dictionary hit for every type at once — this is the engine behind
//! [`crate::compiled::CompiledRecognizerSet`], replacing the per-type,
//! per-window n-gram probing of the naive annotator.
//!
//! Classic construction: a trie of goto transitions, breadth-first
//! failure links, and output lists merged along the failure chain so
//! every pattern ending at a position is reported (overlaps included).
//! States are `u32`s; transitions are flattened into one sorted edge
//! array per state (binary search on lookup, no per-state hashing).
//!
//! The automaton runs over the raw UTF-8 **bytes** of the normalized
//! text: positions and pattern lengths are byte offsets, transitions
//! are `u8`-keyed (a 256-entry dense root row covers every input
//! byte), and the root state carries a memchr-style prefilter — the
//! scan skips straight to the next byte that can start any pattern,
//! which is a single first-byte hunt when all patterns share one
//! starting byte. Byte offsets on UTF-8 are as unambiguous as char
//! offsets (matches always start and end on char boundaries because
//! the patterns are valid UTF-8), and the byte-level hot loop touches
//! a quarter of the state of the old `char` decoder path.

use std::collections::VecDeque;

/// Incremental trie builder; call [`AhoCorasickBuilder::build`] once
/// all patterns are inserted.
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    /// Per state: sorted `(byte, target)` edges.
    nodes: Vec<Vec<(u8, u32)>>,
    /// Per state: pattern ids terminating exactly here.
    out: Vec<Vec<u32>>,
    /// Per pattern: length in bytes.
    pat_lens: Vec<u32>,
}

impl AhoCorasickBuilder {
    pub fn new() -> AhoCorasickBuilder {
        AhoCorasickBuilder {
            nodes: vec![Vec::new()],
            out: vec![Vec::new()],
            pat_lens: Vec::new(),
        }
    }

    /// Insert a pattern; returns its id (dense, insertion-ordered).
    /// Duplicate patterns get distinct ids sharing one terminal state.
    pub fn insert(&mut self, pattern: &str) -> u32 {
        let id = self.pat_lens.len() as u32;
        let mut state = 0u32;
        for &b in pattern.as_bytes() {
            state = match self.nodes[state as usize].binary_search_by_key(&b, |e| e.0) {
                Ok(i) => self.nodes[state as usize][i].1,
                Err(i) => {
                    let next = self.nodes.len() as u32;
                    self.nodes[state as usize].insert(i, (b, next));
                    self.nodes.push(Vec::new());
                    self.out.push(Vec::new());
                    next
                }
            };
        }
        self.out[state as usize].push(id);
        self.pat_lens.push(pattern.len() as u32);
        id
    }

    /// Compute failure links and flatten into the scan-time form.
    pub fn build(self) -> AhoCorasick {
        let AhoCorasickBuilder {
            nodes,
            mut out,
            pat_lens,
        } = self;
        let n = nodes.len();
        let mut fail = vec![0u32; n];
        let mut queue = VecDeque::new();
        for &(_, s) in &nodes[0] {
            queue.push_back(s);
        }
        // BFS: a state's failure target is strictly shallower, so its
        // merged output list is final by the time children reach it.
        while let Some(s) = queue.pop_front() {
            for &(b, t) in &nodes[s as usize] {
                let mut f = fail[s as usize];
                fail[t as usize] = loop {
                    if let Ok(i) = nodes[f as usize].binary_search_by_key(&b, |e| e.0) {
                        break nodes[f as usize][i].1;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = fail[f as usize];
                };
                let inherited = out[fail[t as usize] as usize].clone();
                out[t as usize].extend(inherited);
                queue.push_back(t);
            }
        }
        // Flatten edges and outputs into slice-per-state arrays.
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut flat_out = Vec::new();
        for i in 0..n {
            edge_start.push(edges.len() as u32);
            edges.extend_from_slice(&nodes[i]);
            out_start.push(flat_out.len() as u32);
            flat_out.extend_from_slice(&out[i]);
        }
        edge_start.push(edges.len() as u32);
        out_start.push(flat_out.len() as u32);
        // Dense root transitions per byte — the state most scan steps
        // sit in (missing bytes map to 0, i.e. stay at the root).
        let mut root_dense = vec![0u32; 256];
        for &(b, t) in &nodes[0] {
            root_dense[b as usize] = t;
        }
        // Prefilter shape: the single byte every pattern starts with,
        // if there is exactly one (the memchr specialization).
        let single_root_byte = match &nodes[0][..] {
            [(b, _)] => Some(*b),
            _ => None,
        };
        let root_has_out = !out[0].is_empty();
        AhoCorasick {
            edge_start,
            edges,
            fail,
            out_start,
            out: flat_out,
            pat_lens,
            root_dense,
            single_root_byte,
            root_has_out,
        }
    }
}

/// The frozen automaton ([`AhoCorasickBuilder::build`]).
#[derive(Debug, Clone, Default)]
pub struct AhoCorasick {
    edge_start: Vec<u32>,
    edges: Vec<(u8, u32)>,
    fail: Vec<u32>,
    out_start: Vec<u32>,
    out: Vec<u32>,
    pat_lens: Vec<u32>,
    /// Root-state transition per byte (0 = stay at root).
    root_dense: Vec<u32>,
    /// When every pattern starts with the same byte, that byte: the
    /// root skip-loop collapses to a single-byte hunt.
    single_root_byte: Option<u8>,
    /// An empty pattern terminates at the root (degenerate; disables
    /// the skip prefilter so root outputs are still reported).
    root_has_out: bool,
}

impl AhoCorasick {
    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.pat_lens.len()
    }

    /// Length in bytes of pattern `id`.
    pub fn pattern_len(&self, id: u32) -> u32 {
        self.pat_lens[id as usize]
    }

    #[inline]
    fn step(&self, mut s: u32, b: u8) -> u32 {
        loop {
            if s == 0 {
                // `get` keeps a `Default`-built (table-less) automaton safe.
                return self.root_dense.get(b as usize).copied().unwrap_or(0);
            }
            let lo = self.edge_start[s as usize] as usize;
            let hi = self.edge_start[s as usize + 1] as usize;
            if let Ok(i) = self.edges[lo..hi].binary_search_by_key(&b, |e| e.0) {
                return self.edges[lo + i].1;
            }
            s = self.fail[s as usize];
        }
    }

    /// From the root, the next position whose byte leaves the root.
    #[inline]
    fn next_root_entry(&self, hay: &[u8], from: usize) -> Option<usize> {
        let tail = &hay[from..];
        let off = match self.single_root_byte {
            // Single-byte hunt: the autovectorizer's favourite loop.
            Some(b0) => tail.iter().position(|&b| b == b0),
            None => tail.iter().position(|&b| self.root_dense[b as usize] != 0),
        }?;
        Some(from + off)
    }

    /// Scan `hay`, invoking `on_hit(pattern_id, end_byte_exclusive)`
    /// for every occurrence of every pattern, overlaps included. The
    /// start position is `end - pattern_len(pattern_id)`.
    pub fn scan(&self, hay: &[u8], mut on_hit: impl FnMut(u32, u32)) {
        if self.pat_lens.is_empty() {
            return;
        }
        let mut state = 0u32;
        let mut i = 0usize;
        while i < hay.len() {
            if state == 0 && !self.root_has_out {
                // Skip the run of bytes that would keep us at the root.
                let Some(j) = self.next_root_entry(hay, i) else {
                    return;
                };
                state = self.root_dense[hay[j] as usize];
                i = j + 1;
            } else {
                state = self.step(state, hay[i]);
                i += 1;
            }
            let lo = self.out_start[state as usize] as usize;
            let hi = self.out_start[state as usize + 1] as usize;
            for &p in &self.out[lo..hi] {
                on_hit(p, i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ac: &AhoCorasick, text: &str) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        ac.scan(text.as_bytes(), |p, end| {
            v.push((p, end - ac.pattern_len(p), end));
        });
        v
    }

    #[test]
    fn classic_overlapping_patterns() {
        let mut b = AhoCorasickBuilder::new();
        for p in ["he", "she", "his", "hers"] {
            b.insert(p);
        }
        let ac = b.build();
        // "ushers": she@1..4, he@2..4, hers@2..6
        let got = hits(&ac, "ushers");
        assert_eq!(got, vec![(1, 1, 4), (0, 2, 4), (3, 2, 6)]);
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let mut b = AhoCorasickBuilder::new();
        let a = b.insert("abc");
        let c = b.insert("abc");
        let ac = b.build();
        let got = hits(&ac, "xabcx");
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(a, 1, 4)) && got.contains(&(c, 1, 4)));
    }

    #[test]
    fn suffix_pattern_found_inside_longer_match_path() {
        let mut b = AhoCorasickBuilder::new();
        let long = b.insert("new york");
        let short = b.insert("york");
        let ac = b.build();
        let got = hits(&ac, "in new york today");
        assert!(got.contains(&(long, 3, 11)));
        assert!(got.contains(&(short, 7, 11)));
    }

    #[test]
    fn positions_are_byte_based() {
        let mut b = AhoCorasickBuilder::new();
        let p = b.insert("caf\u{e9}");
        let ac = b.build();
        // "le " is 3 bytes; "café" is 5 bytes (é is 2 bytes).
        let got = hits(&ac, "le caf\u{e9} noir");
        assert_eq!(got, vec![(p, 3, 8)]);
        assert_eq!(ac.pattern_len(p), 5);
    }

    #[test]
    fn empty_automaton_matches_nothing() {
        let ac = AhoCorasickBuilder::new().build();
        assert_eq!(ac.pattern_count(), 0);
        assert!(hits(&ac, "anything at all").is_empty());
    }

    #[test]
    fn repeated_and_adjacent_occurrences() {
        let mut b = AhoCorasickBuilder::new();
        let p = b.insert("aa");
        let ac = b.build();
        // Overlapping occurrences all reported: ends at 2, 3, 4.
        assert_eq!(hits(&ac, "aaaa"), vec![(p, 0, 2), (p, 1, 3), (p, 2, 4)]);
    }

    #[test]
    fn single_first_byte_prefilter_is_exact() {
        // All patterns start with 'm' — the memchr specialization.
        let mut b = AhoCorasickBuilder::new();
        let metal = b.insert("metal");
        let meta = b.insert("meta");
        let ac = b.build();
        let got = hits(&ac, "no metal metadata here");
        assert!(got.contains(&(metal, 3, 8)));
        assert!(got.contains(&(meta, 3, 7)));
        assert!(got.contains(&(meta, 9, 13)));
    }

    #[test]
    fn mixed_first_bytes_prefilter_is_exact() {
        let mut b = AhoCorasickBuilder::new();
        let aa = b.insert("ab");
        let zz = b.insert("zy");
        let ac = b.build();
        let got = hits(&ac, "..ab..zy..ab");
        assert_eq!(got, vec![(aa, 2, 4), (zz, 6, 8), (aa, 10, 12)]);
    }

    #[test]
    fn empty_pattern_disables_prefilter_but_still_scans() {
        let mut b = AhoCorasickBuilder::new();
        let empty = b.insert("");
        let ab = b.insert("ab");
        let ac = b.build();
        let got = hits(&ac, "xab");
        // "ab" at 1..3; the empty pattern fires wherever the scan sits
        // at (or falls back through) the root.
        assert!(got.contains(&(ab, 1, 3)));
        assert!(got.iter().filter(|(p, _, _)| *p == empty).count() >= 2);
    }
}
