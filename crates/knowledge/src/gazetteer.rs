//! Confidence-scored dictionaries ("gazetteers") of entity instances.
//!
//! "Regardless of how they are obtained, gazetteer instances should be
//! described by confidence values w.r.t. the type they are associated
//! to" (paper §III-A). Each instance also carries a term frequency
//! `tf(i)` (from the Web corpus or the ontology), used by the
//! selectivity estimate of Eq. 2:
//!
//! ```text
//! score(t) = Σ_{i ∈ t} score(i, t) / tf(i)
//! ```

use std::borrow::Cow;
use std::collections::HashMap;

/// One dictionary entry.
#[derive(Debug, Clone, PartialEq)]
pub struct GazetteerEntry {
    /// Confidence that the instance belongs to the type, in `(0, 1]`.
    pub confidence: f64,
    /// Term frequency of the instance in the backing corpus/ontology;
    /// common strings (high tf) are less selective.
    pub term_frequency: f64,
}

/// A dictionary of instances for one entity type.
///
/// Lookup is case-insensitive and whitespace-normalized, matching how
/// the annotator compares page text against the dictionary.
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    entries: HashMap<String, GazetteerEntry>,
    /// Original (display) form of each normalized key.
    display: HashMap<String, String>,
}

/// Normalize an instance string for dictionary lookup: whitespace runs
/// collapse to single spaces, edges are trimmed, letters lowercase.
/// Already-normalized ASCII input is borrowed — no allocation.
pub fn normalize(s: &str) -> Cow<'_, str> {
    if is_normalized_ascii(s) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    normalize_into(s, &mut out);
    Cow::Owned(out)
}

/// [`normalize`] into a caller-provided buffer (cleared first) — the
/// scratch-buffer path the compiled annotation engine reuses per text
/// node.
pub fn normalize_into(s: &str, out: &mut String) {
    out.clear();
    if s.is_ascii() {
        if is_normalized_ascii(s) {
            // Already normalized: one bulk copy, no per-byte work.
            out.push_str(s);
            return;
        }
        let mut pending_space = false;
        for &b in s.as_bytes() {
            if is_ascii_ws(b) {
                pending_space = !out.is_empty();
            } else {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(b.to_ascii_lowercase() as char);
            }
        }
    } else {
        // Rare non-ASCII path: join words first, then defer to
        // `str::to_lowercase` for its context-sensitive Unicode rules
        // (e.g. Greek final sigma), preserving historical keys.
        let mut joined = String::with_capacity(s.len());
        for w in s.split_whitespace() {
            if !joined.is_empty() {
                joined.push(' ');
            }
            joined.push_str(w);
        }
        out.push_str(&joined.to_lowercase());
    }
}

/// ASCII characters `char::is_whitespace` treats as whitespace
/// (`u8::is_ascii_whitespace` misses vertical tab).
#[inline]
fn is_ascii_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// True iff `normalize(s)` would be the identity on `s`.
fn is_normalized_ascii(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.first() == Some(&b' ') || bytes.last() == Some(&b' ') {
        return false;
    }
    let mut prev_space = false;
    for &b in bytes {
        let space = b == b' ';
        if !b.is_ascii()
            || b.is_ascii_uppercase()
            || (space && prev_space)
            || (!space && is_ascii_ws(b))
        {
            return false;
        }
        prev_space = space;
    }
    true
}

impl Gazetteer {
    /// Empty dictionary.
    pub fn new() -> Self {
        Gazetteer::default()
    }

    /// Insert an instance; keeps the higher-confidence entry on
    /// duplicates.
    pub fn insert(&mut self, instance: &str, confidence: f64, term_frequency: f64) {
        let key = normalize(instance);
        if key.is_empty() {
            return;
        }
        objectrunner_obs::global_count("objectrunner.knowledge.gazetteer.inserts", 1);
        let key = key.into_owned();
        let entry = GazetteerEntry {
            confidence: confidence.clamp(0.0, 1.0),
            term_frequency: term_frequency.max(1.0),
        };
        match self.entries.get(&key) {
            Some(existing) if existing.confidence >= entry.confidence => {}
            _ => {
                self.entries.insert(key.clone(), entry);
                self.display.insert(key, instance.trim().to_owned());
            }
        }
    }

    /// Look up an instance (case-insensitive).
    pub fn get(&self, instance: &str) -> Option<&GazetteerEntry> {
        self.entries.get(normalize(instance).as_ref())
    }

    /// Does the dictionary contain `instance`?
    pub fn contains(&self, instance: &str) -> bool {
        self.entries.contains_key(normalize(instance).as_ref())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(display_form, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &GazetteerEntry)> {
        self.entries
            .iter()
            .map(move |(k, e)| (self.display[k].as_str(), e))
    }

    /// Iterate `(normalized_key, entry)` pairs in unspecified order —
    /// the compiled annotation engine builds its dictionary automaton
    /// directly over these keys, skipping re-normalization.
    pub fn iter_normalized(&self) -> impl Iterator<Item = (&str, &GazetteerEntry)> {
        self.entries.iter().map(|(k, e)| (k.as_str(), e))
    }

    /// The type-selectivity estimate of Eq. 2:
    /// `score(t) = Σ_i score(i,t) / tf(i)`.
    ///
    /// Note the paper uses this *descending* — high scores mean many
    /// high-confidence low-frequency (i.e. selective) instances.
    pub fn selectivity(&self) -> f64 {
        self.entries
            .values()
            .map(|e| e.confidence / e.term_frequency)
            .sum()
    }

    /// Restrict the dictionary to a deterministic subset covering
    /// roughly `fraction` of the entries — the paper's dictionary
    /// completeness experiments (20% and 10% coverage).
    ///
    /// Selection is by a stable hash of the key so that coverage is
    /// reproducible and unbiased w.r.t. insertion order.
    pub fn with_coverage(&self, fraction: f64) -> Gazetteer {
        let fraction = fraction.clamp(0.0, 1.0);
        let threshold = (fraction * u64::MAX as f64) as u64;
        let mut out = Gazetteer::new();
        for (key, entry) in &self.entries {
            if fnv1a(key.as_bytes()) <= threshold {
                out.entries.insert(key.clone(), entry.clone());
                out.display.insert(key.clone(), self.display[key].clone());
            }
        }
        out
    }

    /// Merge another dictionary into this one (higher confidence wins).
    pub fn merge(&mut self, other: &Gazetteer) {
        for (key, entry) in &other.entries {
            match self.entries.get(key) {
                Some(existing) if existing.confidence >= entry.confidence => {}
                _ => {
                    self.entries.insert(key.clone(), entry.clone());
                    self.display.insert(key.clone(), other.display[key].clone());
                }
            }
        }
    }
}

/// FNV-1a with a splitmix64 finalizer — a tiny stable hash whose high
/// bits are uniform enough for threshold-based subsetting.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // splitmix64 finalization scrambles the biased high bits.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.insert("Metallica", 0.95, 10.0);
        g.insert("Coldplay", 0.9, 20.0);
        g.insert("Madonna", 0.92, 30.0);
        g
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let g = sample();
        assert!(g.contains("metallica"));
        assert!(g.contains("METALLICA"));
        assert!(g.contains("  Metallica  "));
        assert!(!g.contains("Slayer"));
    }

    #[test]
    fn duplicate_keeps_higher_confidence() {
        let mut g = Gazetteer::new();
        g.insert("X", 0.5, 1.0);
        g.insert("x", 0.9, 2.0);
        assert_eq!(g.len(), 1);
        assert!((g.get("X").expect("entry").confidence - 0.9).abs() < 1e-12);
        g.insert("X", 0.1, 1.0);
        assert!((g.get("X").expect("entry").confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_instances_are_ignored() {
        let mut g = Gazetteer::new();
        g.insert("   ", 0.9, 1.0);
        assert!(g.is_empty());
    }

    #[test]
    fn selectivity_matches_eq2() {
        let g = sample();
        let expected = 0.95 / 10.0 + 0.9 / 20.0 + 0.92 / 30.0;
        assert!((g.selectivity() - expected).abs() < 1e-12);
    }

    #[test]
    fn rarer_instances_are_more_selective() {
        let mut common = Gazetteer::new();
        common.insert("new york", 0.9, 1000.0);
        let mut rare = Gazetteer::new();
        rare.insert("b.b king blues and grill", 0.9, 2.0);
        assert!(rare.selectivity() > common.selectivity());
    }

    #[test]
    fn coverage_subsets_deterministically() {
        let mut g = Gazetteer::new();
        for i in 0..1000 {
            g.insert(&format!("artist {i}"), 0.9, 5.0);
        }
        let sub1 = g.with_coverage(0.2);
        let sub2 = g.with_coverage(0.2);
        assert_eq!(sub1.len(), sub2.len());
        // Roughly 20%, with generous slack for hash variance.
        assert!(sub1.len() > 120 && sub1.len() < 280, "got {}", sub1.len());
        // Subset property.
        for (name, _) in sub1.iter() {
            assert!(g.contains(name));
        }
    }

    #[test]
    fn coverage_extremes() {
        let g = sample();
        assert_eq!(g.with_coverage(0.0).len(), 0);
        assert_eq!(g.with_coverage(1.0).len(), 3);
    }

    #[test]
    fn merge_takes_higher_confidence() {
        let mut a = Gazetteer::new();
        a.insert("X", 0.5, 1.0);
        let mut b = Gazetteer::new();
        b.insert("X", 0.8, 1.0);
        b.insert("Y", 0.7, 1.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.get("X").expect("entry").confidence - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalize_is_one_pass_and_borrowing() {
        // Already-normalized ASCII borrows.
        assert!(matches!(normalize("metallica"), Cow::Borrowed(_)));
        assert!(matches!(normalize("new york city"), Cow::Borrowed(_)));
        assert!(matches!(normalize(""), Cow::Borrowed(_)));
        // Anything needing work allocates exactly once.
        for (input, want) in [
            ("  Metallica  ", "metallica"),
            ("NEW\t\tYork", "new york"),
            ("a  b", "a b"),
            ("a\u{b}b", "a b"), // vertical tab is whitespace
            ("Caf\u{e9} de Flore", "caf\u{e9} de flore"),
        ] {
            let got = normalize(input);
            assert!(matches!(got, Cow::Owned(_)), "{input:?}");
            assert_eq!(got, want, "{input:?}");
        }
    }

    #[test]
    fn normalize_into_matches_normalize() {
        let mut buf = String::new();
        for s in ["", "  A  B ", "Ärger\u{b}im Büro", "plain", "x  Y\tz"] {
            normalize_into(s, &mut buf);
            assert_eq!(buf, normalize(s).as_ref(), "{s:?}");
        }
    }

    #[test]
    fn iter_normalized_yields_keys() {
        let g = sample();
        let mut keys: Vec<&str> = g.iter_normalized().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["coldplay", "madonna", "metallica"]);
    }

    #[test]
    fn display_form_preserved() {
        let g = sample();
        let names: Vec<&str> = g.iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"Metallica"));
    }
}
