//! Deterministic fan-out executor for the staged pipeline.
//!
//! Every per-page stage of the pipeline (parse, clean, segment,
//! annotate, extract) is embarrassingly parallel, and the §IV
//! self-validation loop is parallel across candidate support values.
//! This module provides the one primitive they all share: run a
//! function over a batch of items on a small scoped-thread worker pool
//! and return the results **in item-index order**, so the parallel
//! pipeline is byte-identical to the sequential one no matter how the
//! scheduler interleaves workers.
//!
//! Design constraints:
//!
//! * No heavy dependencies — the pool is hand-rolled on
//!   [`std::thread::scope`], with an atomic cursor handing out work
//!   items (cheap dynamic load balancing; pages vary a lot in size).
//! * Determinism by construction — workers tag each result with its
//!   item index and the reduction sorts by index, so output order never
//!   depends on thread timing.
//! * Honest accounting — every map reports the summed busy time of its
//!   workers, which the pipeline surfaces as per-stage CPU time next to
//!   wall-clock time.
//!
//! Thread count resolution (see [`resolve_threads`]): an explicit
//! `PipelineConfig::threads` wins, else the `OBJECTRUNNER_THREADS`
//! environment variable, else [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "OBJECTRUNNER_THREADS";

/// Resolve the worker-thread count: explicit request → `OBJECTRUNNER_THREADS`
/// → available parallelism (floor 1).
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width scoped-thread worker pool.
///
/// The executor owns no threads between calls: each `map`/`for_each`
/// spins up at most `threads` scoped workers, which exit when the batch
/// is drained. For the pipeline's batch sizes (tens of pages, a handful
/// of support values) spawn cost is noise next to item cost.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (floor 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The single-threaded executor (runs everything inline).
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// An executor sized by [`resolve_threads`].
    pub fn from_env(requested: Option<usize>) -> Executor {
        Executor::new(resolve_threads(requested))
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in item order.
    pub fn map<T, R>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_timed(items, f).0
    }

    /// [`Executor::map`] plus the summed busy time of all workers (the
    /// stage's CPU cost, as opposed to its wall-clock cost).
    pub fn map_timed<T, R>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> (Vec<R>, Duration)
    where
        T: Sync,
        R: Send,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let start = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            return (out, start.elapsed());
        }
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        let busy = Mutex::new(Duration::ZERO);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let start = Instant::now();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    let elapsed = start.elapsed();
                    collected.lock().expect("worker panicked").extend(local);
                    *busy.lock().expect("worker panicked") += elapsed;
                });
            }
        });
        let mut tagged = collected.into_inner().expect("worker panicked");
        // Index-ordered reduction: output order is item order, never
        // completion order.
        tagged.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(tagged.len(), items.len());
        let results = tagged.into_iter().map(|(_, r)| r).collect();
        (results, busy.into_inner().expect("worker panicked"))
    }

    /// Apply `f` to every item in place (per-page stages that mutate
    /// documents: cleaning, main-block simplification). Returns the
    /// summed worker busy time.
    pub fn for_each_mut<T>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) -> Duration
    where
        T: Send,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let start = Instant::now();
            for (i, t) in items.iter_mut().enumerate() {
                f(i, t);
            }
            return start.elapsed();
        }
        // Hand out `&mut T` items through a locked iterator: safe
        // disjoint-borrow distribution without unsafe code.
        let queue = Mutex::new(items.iter_mut().enumerate());
        let busy = Mutex::new(Duration::ZERO);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let start = Instant::now();
                    loop {
                        let next = queue.lock().expect("worker panicked").next();
                        match next {
                            Some((i, item)) => f(i, item),
                            None => break,
                        }
                    }
                    *busy.lock().expect("worker panicked") += start.elapsed();
                });
            }
        });
        busy.into_inner().expect("worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let exec = Executor::new(8);
        let items: Vec<usize> = (0..257).collect();
        // Uneven per-item cost to force out-of-order completion.
        let out = exec.map(&items, |i, &x| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_sequential_exactly() {
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let f = |i: usize, s: &String| format!("{i}:{s}");
        let seq = Executor::sequential().map(&items, f);
        let par = Executor::new(8).map(&items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let exec = Executor::new(4);
        let mut items = vec![0u32; 100];
        exec.for_each_mut(&mut items, |i, x| *x += i as u32 + 1);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn empty_and_single_batches_work() {
        let exec = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.map(&[41u32], |_, &x| x + 1), vec![42]);
        let mut one = [10u32];
        exec.for_each_mut(&mut one, |_, x| *x *= 2);
        assert_eq!(one, [20]);
    }

    #[test]
    fn map_timed_reports_busy_time() {
        let exec = Executor::new(2);
        let items: Vec<u32> = (0..8).collect();
        let (_, busy) = exec.map_timed(&items, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(busy >= Duration::from_millis(8), "busy = {busy:?}");
    }

    #[test]
    fn resolve_threads_precedence() {
        // Explicit wins regardless of environment.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "floor at one worker");
        // Default path yields at least one worker.
        assert!(resolve_threads(None) >= 1);
    }
}
