//! # objectrunner-eval
//!
//! The paper's evaluation methodology (§IV-B) and the harness that
//! regenerates every table and figure:
//!
//! * [`classify`] — the golden-standard test: correct / partially
//!   correct / incorrect attributes and objects, and the two precision
//!   measures `Pc = Oc/No` and `Pp = (Oc+Op)/No`.
//! * [`runners`] — drive ObjectRunner, ExAlg and RoadRunner over a
//!   generated source and normalize their outputs.
//! * [`tables`] — Table I (per-source results), Table II (sample
//!   selection strategies) and Table III (system comparison).
//! * [`figures`] — Figure 6(a) object classification rates and 6(b)
//!   incompletely-managed source rates.
//!
//! Binaries: `table1`, `table2`, `table3`, `figure6`,
//! `dictionary_coverage` (Appendix A), `support_sweep` (Appendix B),
//! `drift_sweep` (E7: template-drift strength vs detection/repair).
//!
//! Every binary that drives the ObjectRunner pipeline accepts
//! `--stats-json`, which makes the runners print one machine-readable
//! line per source (`{"source":..,"system":..,"stats":{..}}`) with
//! per-stage wall/CPU timings alongside the human-readable output.

pub mod classify;
pub mod figures;
pub mod runners;
pub mod tables;

pub use classify::{classify_source, AttrStatus, ExtractedObject, ObjectStatus, SourceReport};
pub use runners::{
    run_exalg, run_objectrunner, run_roadrunner, set_stats_json, stats_json_enabled, SourceRun,
    SystemId,
};

/// Consume `--stats-json` from a binary's argument list: enables the
/// runners' per-source stats emission and returns the remaining args.
pub fn parse_stats_json_flag(args: Vec<String>) -> Vec<String> {
    let (flags, rest): (Vec<String>, Vec<String>) =
        args.into_iter().partition(|a| a == "--stats-json");
    if !flags.is_empty() {
        set_stats_json(true);
    }
    rest
}
