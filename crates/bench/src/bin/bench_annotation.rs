//! Annotation-stage trajectory point (`BENCH_annotation.json`).
//!
//! For every domain of the standard bench corpus (20 pages each), this
//! measures:
//!
//! * `naive_micros` — the retained naive path: per-type
//!   `annotate_type_into` rounds + upward propagation over every page;
//! * `compiled_cold_micros` — the same work through a fresh
//!   [`Annotator`] (compiled engines, empty memo);
//! * `compiled_warm_micros` — a second pass over the same annotator
//!   (every text a memo hit);
//! * the pipeline's `Annotate` stage CPU at `threads = 1` and its
//!   cache hit rate, from `PipelineStats`;
//! * the observability tax: full-pipeline wall (best of 5) with the
//!   obs layer disabled vs enabled — `obs_overhead_ok` asserts the
//!   enabled run stays within 2% (+500 µs timer slack) of disabled,
//!   the budget ci.sh's `obs-smoke` stage enforces.
//!
//! Output is one JSON document on stdout; `ci.sh` redirects it into
//! `BENCH_annotation.json` at the repository root.

use objectrunner_bench::{bench_config, bench_source, run_pipeline};
use objectrunner_core::annotate::{
    annotate_type_into, propagate_upwards_into, AnnotationMap, Annotator,
};
use objectrunner_core::stage::Stage;
use objectrunner_html::{clean_document, parse, CleanOptions, Document};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_webgen::{knowledge, Domain};
use std::hint::black_box;
use std::time::Instant;

const PAGES: usize = 20;

/// `Annotate` stage CPU (threads = 1) of the seed revision (naive
/// recognizers, allocation-heavy normalize, depth-sorted propagation)
/// on this corpus, measured on the reference machine before this
/// engine landed — the fixed "before" of the trajectory. Order matches
/// [`Domain::ALL`].
const SEED_STAGE_MICROS: [u128; 5] = [12_127, 11_040, 10_902, 11_684, 1_235];

fn docs_for(domain: Domain) -> Vec<Document> {
    bench_source(domain, PAGES)
        .pages
        .iter()
        .map(|h| {
            let mut d = parse(h);
            clean_document(&mut d, &CleanOptions::default());
            d
        })
        .collect()
}

fn naive_all(docs: &[Document], set: &RecognizerSet) {
    for doc in docs {
        let mut map = AnnotationMap::new();
        for type_name in set.annotation_order() {
            annotate_type_into(doc, &mut map, set, type_name);
        }
        propagate_upwards_into(doc, &mut map);
        black_box(&map);
    }
}

fn compiled_all(docs: &[Document], set: &RecognizerSet, annotator: &Annotator) {
    let types = set.annotation_order();
    for doc in docs {
        let mut map = AnnotationMap::new();
        annotator.annotate_types_into(doc, &mut map, &types);
        propagate_upwards_into(doc, &mut map);
        black_box(&map);
    }
}

fn micros(f: impl FnOnce()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_micros()
}

/// Full-pipeline wall (threads = 1) with the given obs handle.
fn pipeline_wall_micros(
    domain: Domain,
    source: &objectrunner_webgen::Source,
    obs: &objectrunner_obs::Obs,
) -> u128 {
    let mut cfg = bench_config();
    cfg.threads = Some(1);
    cfg.obs = obs.clone();
    micros(|| {
        black_box(run_pipeline(domain, source, cfg));
    })
}

/// Best-of-5 pipeline wall, obs disabled vs enabled, on the first
/// bench domain. Min-of-N damps scheduler noise; the enabled handle is
/// reused across repetitions like a long-lived daemon's would be, and
/// carries the full live-telemetry stack the serving daemon runs with:
/// sliding windows behind every histogram, plus — inside the timed
/// window, once per run — the per-request serving-side work of a
/// windowed slow-threshold probe, a tail-sampler offer, and one
/// structured access-log line.
fn obs_overhead() -> (u128, u128) {
    let domain = Domain::ALL[0];
    let source = bench_source(domain, PAGES);
    let disabled = (0..5)
        .map(|_| pipeline_wall_micros(domain, &source, &objectrunner_obs::Obs::disabled()))
        .min()
        .unwrap();
    let enabled_obs = objectrunner_obs::Obs::with_windows(
        objectrunner_obs::Clock::system(),
        objectrunner_obs::DEFAULT_SPAN_CAPACITY,
        objectrunner_obs::WindowConfig::default(),
    );
    let sampler = objectrunner_serve::TraceSampler::new(16);
    let log_path = std::env::temp_dir().join(format!(
        "objectrunner-bench-annotation-{}-access.jsonl",
        std::process::id()
    ));
    let access = objectrunner_serve::AccessLog::open(&log_path, 1 << 20).expect("access log");
    let enabled = (0..5)
        .map(|_| {
            let mut cfg = bench_config();
            cfg.threads = Some(1);
            cfg.obs = enabled_obs.clone();
            micros(|| {
                black_box(run_pipeline(domain, &source, cfg));
                let span = enabled_obs.trace("bench.request");
                let trace = span.trace_id();
                span.finish();
                enabled_obs.histogram_record(
                    objectrunner_serve::REQUEST_LATENCY,
                    &objectrunner_obs::LATENCY_BUCKETS_MICROS,
                    1_000,
                );
                let now = enabled_obs.clock().map_or(0, |c| c.monotonic_micros());
                black_box(
                    enabled_obs
                        .windows()
                        .and_then(|w| w.get(objectrunner_serve::REQUEST_LATENCY))
                        .map(|w| w.snapshot(now, 60_000_000).quantile(0.99)),
                );
                sampler.offer(
                    &enabled_obs,
                    objectrunner_serve::TraceKind::Slow,
                    trace,
                    1_000,
                    0,
                );
                access.write_line(&format!("{{\"trace\":{trace},\"outcome\":\"ok\"}}"));
            })
        })
        .min()
        .unwrap();
    let _ = std::fs::remove_file(access.rotated_path());
    let _ = std::fs::remove_file(&log_path);
    (disabled, enabled)
}

fn main() {
    let mut rows = Vec::new();
    let mut total_naive = 0u128;
    let mut total_cold = 0u128;
    let mut total_stage = 0u128;
    for (di, domain) in Domain::ALL.into_iter().enumerate() {
        let docs = docs_for(domain);
        let set = knowledge::recognizers_for(domain, 0.2);

        let naive = micros(|| naive_all(&docs, &set));
        let annotator = Annotator::new(&set);
        let cold = micros(|| compiled_all(&docs, &set, &annotator));
        let warm = micros(|| compiled_all(&docs, &set, &annotator));

        // The staged pipeline's own accounting at threads = 1.
        let source = bench_source(domain, PAGES);
        let mut cfg = bench_config();
        cfg.threads = Some(1);
        let outcome = run_pipeline(domain, &source, cfg);
        let stage = outcome
            .stats
            .stage(Stage::Annotate)
            .expect("annotate stage timed");
        let hits = outcome.stats.annotation_cache_hits;
        let misses = outcome.stats.annotation_cache_misses;
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let pages_per_sec = if cold > 0 {
            PAGES as f64 / (cold as f64 / 1_000_000.0)
        } else {
            0.0
        };

        total_naive += naive;
        total_cold += cold;
        total_stage += stage.cpu_micros;
        rows.push(format!(
            "    {{\"domain\":\"{}\",\"pages\":{PAGES},\"naive_micros\":{naive},\
\"compiled_cold_micros\":{cold},\"compiled_warm_micros\":{warm},\
\"speedup_vs_naive\":{:.2},\"pages_per_sec\":{:.1},\
\"pipeline_annotate_stage_micros\":{},\"seed_annotate_stage_micros\":{},\
\"speedup_vs_seed\":{:.2},\"cache_hit_rate\":{:.3}}}",
            domain.name(),
            naive as f64 / cold.max(1) as f64,
            pages_per_sec,
            stage.cpu_micros,
            SEED_STAGE_MICROS[di],
            SEED_STAGE_MICROS[di] as f64 / stage.cpu_micros.max(1) as f64,
            hit_rate,
        ));
    }
    println!("{{");
    println!("  \"bench\": \"annotation\",");
    println!("  \"threads\": 1,");
    println!(
        "  \"aggregate_speedup_vs_naive\": {:.2},",
        total_naive as f64 / total_cold.max(1) as f64
    );
    println!(
        "  \"aggregate_speedup_vs_seed\": {:.2},",
        SEED_STAGE_MICROS.iter().sum::<u128>() as f64 / total_stage.max(1) as f64
    );
    let (obs_disabled, obs_enabled) = obs_overhead();
    let overhead_pct = (obs_enabled as f64 / obs_disabled.max(1) as f64 - 1.0) * 100.0;
    let obs_ok = obs_enabled as f64 <= obs_disabled as f64 * 1.02 + 500.0;
    println!("  \"obs_disabled_micros\": {obs_disabled},");
    println!("  \"obs_enabled_micros\": {obs_enabled},");
    println!("  \"obs_overhead_pct\": {overhead_pct:.2},");
    println!("  \"obs_overhead_ok\": {obs_ok},");
    println!("  \"domains\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
