//! Instances of an SOD.
//!
//! "An instance of an entity type ti is any string that is valid w.r.t
//! the recognizer ri. Then, an instance of an SOD is defined
//! straightforwardly in a bottom-up manner, and can be viewed as a
//! finite tree whose internal nodes denote the use of a complex type
//! constructor." (paper §II-A)

use crate::types::{Sod, SodNode};
use std::fmt;

/// An instance tree of an SOD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instance {
    /// A recognized atomic value.
    Atomic { type_name: String, value: String },
    /// A tuple instance: one instance per (present) component.
    Tuple { name: String, fields: Vec<Instance> },
    /// A set instance: repeated instances of the set's child type.
    Set(Vec<Instance>),
}

/// Validation failures of an instance against an SOD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The instance node kind does not match the type node kind.
    ShapeMismatch { expected: String, got: String },
    /// An atomic value is typed with the wrong entity type.
    WrongEntityType { expected: String, got: String },
    /// A set's cardinality violates its multiplicity.
    Cardinality { type_desc: String, count: usize },
    /// A required tuple component is missing.
    MissingComponent(String),
    /// A tuple has a field matching no component.
    UnexpectedComponent(String),
    /// Neither branch of a disjunction matched.
    DisjunctionFailed,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            ValidationError::WrongEntityType { expected, got } => {
                write!(f, "wrong entity type: expected {expected}, got {got}")
            }
            ValidationError::Cardinality { type_desc, count } => {
                write!(f, "cardinality violation: {count} instances of {type_desc}")
            }
            ValidationError::MissingComponent(c) => write!(f, "missing component {c}"),
            ValidationError::UnexpectedComponent(c) => write!(f, "unexpected component {c}"),
            ValidationError::DisjunctionFailed => write!(f, "no disjunction branch matched"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Instance {
    /// Convenience constructor for atomic instances.
    pub fn atomic(type_name: &str, value: &str) -> Instance {
        Instance::Atomic {
            type_name: type_name.to_owned(),
            value: value.to_owned(),
        }
    }

    /// All values of entity type `t` anywhere in the instance tree.
    pub fn values_of_type<'a>(&'a self, t: &str, out: &mut Vec<&'a str>) {
        match self {
            Instance::Atomic { type_name, value } => {
                if type_name == t {
                    out.push(value);
                }
            }
            Instance::Tuple { fields, .. } => fields.iter().for_each(|i| i.values_of_type(t, out)),
            Instance::Set(items) => items.iter().for_each(|i| i.values_of_type(t, out)),
        }
    }

    /// Flatten to `(type_name, value)` pairs in document order.
    pub fn flatten(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        fn walk<'a>(i: &'a Instance, out: &mut Vec<(&'a str, &'a str)>) {
            match i {
                Instance::Atomic { type_name, value } => out.push((type_name, value)),
                Instance::Tuple { fields, .. } => fields.iter().for_each(|f| walk(f, out)),
                Instance::Set(items) => items.iter().for_each(|f| walk(f, out)),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Validate this instance against the (non-canonicalized) SOD.
    pub fn validate(&self, sod: &Sod) -> Result<(), ValidationError> {
        validate_node(self, sod.root())
    }
}

fn kind_name(n: &SodNode) -> String {
    match n {
        SodNode::Entity { type_name, .. } => format!("entity {type_name}"),
        SodNode::Tuple { name, .. } => format!("tuple {name}"),
        SodNode::Set { .. } => "set".to_owned(),
        SodNode::Disjunction(..) => "disjunction".to_owned(),
    }
}

fn inst_kind(i: &Instance) -> String {
    match i {
        Instance::Atomic { type_name, .. } => format!("atomic {type_name}"),
        Instance::Tuple { name, .. } => format!("tuple {name}"),
        Instance::Set(_) => "set".to_owned(),
    }
}

fn validate_node(inst: &Instance, node: &SodNode) -> Result<(), ValidationError> {
    match node {
        SodNode::Entity { type_name, .. } => match inst {
            Instance::Atomic { type_name: t, .. } if t == type_name => Ok(()),
            Instance::Atomic { type_name: t, .. } => Err(ValidationError::WrongEntityType {
                expected: type_name.clone(),
                got: t.clone(),
            }),
            other => Err(ValidationError::ShapeMismatch {
                expected: kind_name(node),
                got: inst_kind(other),
            }),
        },
        SodNode::Set {
            child,
            multiplicity,
        } => match inst {
            Instance::Set(items) => {
                if !multiplicity.accepts(items.len()) {
                    return Err(ValidationError::Cardinality {
                        type_desc: kind_name(child),
                        count: items.len(),
                    });
                }
                for item in items {
                    validate_node(item, child)?;
                }
                Ok(())
            }
            other => Err(ValidationError::ShapeMismatch {
                expected: kind_name(node),
                got: inst_kind(other),
            }),
        },
        SodNode::Disjunction(a, b) => {
            if validate_node(inst, a).is_ok() || validate_node(inst, b).is_ok() {
                Ok(())
            } else {
                Err(ValidationError::DisjunctionFailed)
            }
        }
        SodNode::Tuple { children, .. } => match inst {
            Instance::Tuple { fields, .. } => {
                // Tuples are unordered: greedily match each field to a
                // distinct component; then check every non-optional
                // component is covered.
                let mut used = vec![false; fields.len()];
                for comp in children {
                    let mut matched = false;
                    for (fi, field) in fields.iter().enumerate() {
                        if used[fi] {
                            continue;
                        }
                        if validate_node(field, comp).is_ok() {
                            used[fi] = true;
                            matched = true;
                            break;
                        }
                    }
                    if !matched && !component_is_optional(comp) {
                        return Err(ValidationError::MissingComponent(kind_name(comp)));
                    }
                }
                if let Some(fi) = used.iter().position(|&u| !u) {
                    return Err(ValidationError::UnexpectedComponent(inst_kind(&fields[fi])));
                }
                Ok(())
            }
            other => Err(ValidationError::ShapeMismatch {
                expected: kind_name(node),
                got: inst_kind(other),
            }),
        },
    }
}

fn component_is_optional(node: &SodNode) -> bool {
    match node {
        SodNode::Entity { multiplicity, .. } | SodNode::Set { multiplicity, .. } => {
            multiplicity.is_optional()
        }
        _ => false,
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instance::Atomic { type_name, value } => write!(f, "{type_name}={value:?}"),
            Instance::Tuple { name, fields } => {
                write!(f, "{name}{{")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                write!(f, "}}")
            }
            Instance::Set(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Multiplicity, SodBuilder};

    fn book_sod() -> Sod {
        SodBuilder::tuple("book")
            .entity("title", Multiplicity::One)
            .set_of_entity("author", Multiplicity::Plus)
            .entity("price", Multiplicity::One)
            .entity("date", Multiplicity::Optional)
            .build()
    }

    fn valid_book() -> Instance {
        Instance::Tuple {
            name: "book".to_owned(),
            fields: vec![
                Instance::atomic("title", "Emma"),
                Instance::Set(vec![
                    Instance::atomic("author", "Jane Austen"),
                    Instance::atomic("author", "Fiona Stafford"),
                ]),
                Instance::atomic("price", "$12.99"),
            ],
        }
    }

    #[test]
    fn valid_instance_passes() {
        assert_eq!(valid_book().validate(&book_sod()), Ok(()));
    }

    #[test]
    fn optional_component_may_be_absent_or_present() {
        let mut with_date = valid_book();
        if let Instance::Tuple { fields, .. } = &mut with_date {
            fields.push(Instance::atomic("date", "May 2010"));
        }
        assert_eq!(with_date.validate(&book_sod()), Ok(()));
    }

    #[test]
    fn missing_required_component_fails() {
        let inst = Instance::Tuple {
            name: "book".to_owned(),
            fields: vec![Instance::atomic("title", "Emma")],
        };
        assert!(matches!(
            inst.validate(&book_sod()),
            Err(ValidationError::MissingComponent(_))
        ));
    }

    #[test]
    fn empty_plus_set_fails_cardinality() {
        let inst = Instance::Tuple {
            name: "book".to_owned(),
            fields: vec![
                Instance::atomic("title", "Emma"),
                Instance::Set(vec![]),
                Instance::atomic("price", "$1.00"),
            ],
        };
        assert!(matches!(
            inst.validate(&book_sod()),
            Err(ValidationError::Cardinality { .. }) | Err(ValidationError::MissingComponent(_))
        ));
    }

    #[test]
    fn wrong_entity_type_fails() {
        let sod = SodBuilder::tuple("car")
            .entity("brand", Multiplicity::One)
            .build();
        let inst = Instance::Tuple {
            name: "car".to_owned(),
            fields: vec![Instance::atomic("price", "$5")],
        };
        assert!(inst.validate(&sod).is_err());
    }

    #[test]
    fn unexpected_component_fails() {
        let sod = SodBuilder::tuple("car")
            .entity("brand", Multiplicity::One)
            .build();
        let inst = Instance::Tuple {
            name: "car".to_owned(),
            fields: vec![
                Instance::atomic("brand", "Honda"),
                Instance::atomic("color", "red"),
            ],
        };
        assert!(matches!(
            inst.validate(&sod),
            Err(ValidationError::UnexpectedComponent(_))
        ));
    }

    #[test]
    fn tuples_are_unordered() {
        let inst = Instance::Tuple {
            name: "book".to_owned(),
            fields: vec![
                Instance::atomic("price", "$12.99"),
                Instance::atomic("title", "Emma"),
                Instance::Set(vec![Instance::atomic("author", "Jane Austen")]),
            ],
        };
        assert_eq!(inst.validate(&book_sod()), Ok(()));
    }

    #[test]
    fn disjunction_accepts_either_branch() {
        let sod = SodBuilder::tuple("listing").either("price", "bid").build();
        for t in ["price", "bid"] {
            let inst = Instance::Tuple {
                name: "listing".to_owned(),
                fields: vec![Instance::atomic(t, "5")],
            };
            assert_eq!(inst.validate(&sod), Ok(()));
        }
        let bad = Instance::Tuple {
            name: "listing".to_owned(),
            fields: vec![Instance::atomic("color", "red")],
        };
        assert!(bad.validate(&sod).is_err());
    }

    #[test]
    fn values_of_type_collects_across_sets() {
        let book = valid_book();
        let mut out = Vec::new();
        book.values_of_type("author", &mut out);
        assert_eq!(out, vec!["Jane Austen", "Fiona Stafford"]);
    }

    #[test]
    fn flatten_gives_document_order() {
        let book = valid_book();
        let flat = book.flatten();
        assert_eq!(
            flat,
            vec![
                ("title", "Emma"),
                ("author", "Jane Austen"),
                ("author", "Fiona Stafford"),
                ("price", "$12.99"),
            ]
        );
    }

    #[test]
    fn display_is_readable() {
        let s = valid_book().to_string();
        assert!(s.contains("book{"));
        assert!(s.contains("title=\"Emma\""));
        assert!(s.contains('['));
    }
}
