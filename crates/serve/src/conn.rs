//! The daemon's connection layer: a bounded acceptor plus a fixed
//! worker pool, replacing thread-per-connection.
//!
//! ```text
//!   acceptor ──> conn queue (bounded by --max-conns) ──> N workers
//!                                                          │
//!                      per-worker ReaderCache ──> Service::handle_batch
//! ```
//!
//! One acceptor thread blocks on `accept` and hands non-blocking
//! connections to a shared queue; `workers` threads take *turns* over
//! connections — drain whatever bytes are readable, peel off up to
//! `batch_max` complete lines, run them through
//! [`Service::handle_batch`] (which amortizes consecutive same-source
//! extracts into one pipeline run), write the responses, and requeue
//! the connection. A worker never parks on one idle connection, so
//! `workers` threads serve `max_conns` connections.
//!
//! **Admission control** bounds the work in flight, not the bytes
//! read: a global token budget (`inflight`) is acquired per request
//! line at the top of a turn. Lines that get no token are not queued
//! behind the budget — they are *shed* immediately with a typed
//! `{"ok":false,"error":"overloaded","shed":true}` response, telling
//! the client to back off while keeping the connection healthy.
//! Connections past `max_conns` are shed the same way at accept time.
//! Shedding is deliberate: an unbounded queue hides overload until
//! memory runs out; a typed response surfaces it immediately and
//! keeps tail latency bounded for the admitted work.
//!
//! Responses are written through a `BufWriter` with one explicit
//! flush per response — a response is one `write` syscall instead of
//! one per JSON fragment. The socket flips to blocking mode for the
//! write burst (reads are non-blocking, writes are simple), then
//! back.
//!
//! Readiness is polled round-robin with an idle backoff (a worker
//! that keeps drawing turns with no bytes sleeps ~1ms) rather than
//! epoll — the std library exposes no portable readiness API, and at
//! the daemon's design point (hundreds of connections) the poll cost
//! is noise next to extraction. Swapping the queue for an epoll loop
//! is contained headroom: everything behind `take_lines` is
//! readiness-agnostic.
//!
//! Every failure mode is counted (`objectrunner.serve.conn.*`) and
//! logged once per error kind — a flapping client cannot flood the
//! daemon's stderr.

use crate::service::{PoolInfo, Service, Special};
use objectrunner_store::Json;
use std::collections::{BTreeSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Connection-pool tuning; the daemon's `--workers`, `--max-conns`,
/// `--inflight` and `--batch` flags.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads handling requests. Default: the machine's
    /// available parallelism.
    pub workers: usize,
    /// Connections admitted at once; the acceptor sheds beyond it.
    pub max_conns: usize,
    /// Request lines in flight across the pool; lines beyond it are
    /// shed with a typed `overloaded` response.
    pub inflight: usize,
    /// Most request lines one turn hands to `handle_batch` — bounds
    /// both batching gain and per-turn latency.
    pub batch_max: usize,
    /// Hard cap on one request line; a longer line kills its
    /// connection (it would otherwise buffer unboundedly).
    pub max_line_bytes: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        PoolConfig {
            workers,
            max_conns: 1024,
            inflight: workers * 32,
            batch_max: 32,
            max_line_bytes: 64 << 20,
        }
    }
}

/// One pooled connection: the non-blocking stream plus whatever bytes
/// arrived ahead of a complete line.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    eof: bool,
}

/// What a read pass left behind.
enum ReadState {
    /// More may come; keep the connection pooled.
    Open,
    /// Peer closed its half; serve the buffered lines, then close.
    Eof,
    /// Unrecoverable I/O error; drop the connection.
    Dead,
}

struct Queue {
    conns: Mutex<VecDeque<Conn>>,
    ready: Condvar,
}

struct PoolShared {
    service: Arc<Service>,
    queue: Queue,
    /// Request-line admission tokens left.
    tokens: Mutex<usize>,
    /// Total admission tokens; `inflight = budget - tokens`.
    inflight_budget: usize,
    /// Open connections, counted exactly (a pooled connection spends
    /// part of its life inside a worker turn, off the queue).
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Error kinds already logged, one line each.
    logged: Mutex<BTreeSet<String>>,
}

impl PoolShared {
    /// Take up to `want` admission tokens; returns how many were
    /// granted (possibly zero — the caller sheds the rest).
    ///
    /// Load gauges here and below are **set from the authoritative
    /// value** (the token count under its lock, the post-op atomic),
    /// never `add`-ed: paired deltas racing across workers could
    /// otherwise drive a gauge transiently negative under shed
    /// pressure, and a missed pair would skew it forever.
    fn admit(&self, want: usize) -> usize {
        let mut tokens = self.tokens.lock().expect("tokens poisoned");
        let granted = want.min(*tokens);
        *tokens -= granted;
        self.gauge_set("inflight", (self.inflight_budget - *tokens) as i64);
        granted
    }

    fn release(&self, granted: usize) {
        let mut tokens = self.tokens.lock().expect("tokens poisoned");
        *tokens += granted;
        self.gauge_set("inflight", (self.inflight_budget - *tokens) as i64);
    }

    /// Count an I/O failure and log it once per (site, kind) — the
    /// counters carry the rate, stderr carries one example.
    fn conn_error(&self, site: &str, e: &std::io::Error) {
        self.service
            .obs()
            .counter_add(&format!("objectrunner.serve.conn.{site}_errors"), 1);
        let key = format!("{site}:{:?}", e.kind());
        let mut logged = self.logged.lock().expect("log set poisoned");
        if logged.insert(key) {
            eprintln!(
                "serve: {site} error ({:?}): {e} (logged once per kind)",
                e.kind()
            );
        }
    }

    fn gauge_set(&self, name: &str, value: i64) {
        self.service
            .obs()
            .gauge_set(&format!("objectrunner.serve.serving.{name}"), value);
    }

    fn counter_add(&self, name: &str, n: u64) {
        self.service
            .obs()
            .counter_add(&format!("objectrunner.serve.{name}"), n);
    }
}

/// A running pool; dropping it leaks the threads (the daemon runs
/// forever), [`PoolHandle::shutdown`] joins them (tests, bench).
pub struct PoolHandle {
    shared: Arc<PoolShared>,
    addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PoolHandle {
    /// The bound address (useful with an ephemeral `:0` listener).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue.ready.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            self.shared.queue.ready.notify_all();
            let _ = w.join();
        }
    }
}

/// The typed shed response: the daemon is up but out of budget; back
/// off and retry.
fn overloaded_line() -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str("overloaded")),
        ("shed".into(), Json::Bool(true)),
    ])
    .render()
}

/// Start serving `listener` through a worker pool. Returns once the
/// acceptor and workers are spawned; the caller decides whether to
/// block (daemon) or keep the handle (tests, bench).
pub fn serve_tcp(listener: TcpListener, service: Arc<Service>, config: PoolConfig) -> PoolHandle {
    let workers = config.workers.max(1);
    let inflight = config.inflight.max(1);
    service.set_pool_info(PoolInfo {
        workers,
        max_conns: config.max_conns,
        inflight_budget: inflight,
        batch_max: config.batch_max.max(1),
    });
    let addr = listener.local_addr().expect("listener has no local addr");
    let shared = Arc::new(PoolShared {
        service,
        queue: Queue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        tokens: Mutex::new(inflight),
        inflight_budget: inflight,
        active: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        logged: Mutex::new(BTreeSet::new()),
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        let max_conns = config.max_conns.max(1);
        std::thread::spawn(move || accept_loop(&shared, &listener, max_conns))
    };
    let worker_handles = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || worker_loop(&shared, &config))
        })
        .collect();

    PoolHandle {
        shared,
        addr,
        acceptor: Some(acceptor),
        workers: worker_handles,
    }
}

fn accept_loop(shared: &PoolShared, listener: &TcpListener, max_conns: usize) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.conn_error("accept", &e);
                // Transient accept errors (EMFILE, ECONNABORTED) clear
                // themselves; don't spin while they do.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= max_conns {
            shared.counter_add("serving.shed_conns", 1);
            let mut stream = stream;
            let _ = writeln!(stream, "{}", overloaded_line());
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        if let Err(e) = stream.set_nonblocking(true) {
            shared.conn_error("accept", &e);
            continue;
        }
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.counter_add("conn.accepted", 1);
        shared.gauge_set("active_conns", active as i64);
        {
            let mut q = shared.queue.conns.lock().expect("queue poisoned");
            q.push_back(Conn {
                stream,
                rbuf: Vec::new(),
                eof: false,
            });
            shared
                .service
                .obs()
                .gauge_set("objectrunner.serve.serving.queue_depth", q.len() as i64);
        }
        shared.queue.ready.notify_one();
    }
}

fn worker_loop(shared: &PoolShared, config: &PoolConfig) {
    let mut cache = shared.service.reader_cache();
    // Consecutive turns that moved no bytes; backs off the poll loop
    // so idle connections don't spin a worker at 100% CPU.
    let mut idle_turns = 0u32;
    loop {
        let conn = {
            let mut q = shared.queue.conns.lock().expect("queue poisoned");
            loop {
                if let Some(conn) = q.pop_front() {
                    shared
                        .service
                        .obs()
                        .gauge_set("objectrunner.serve.serving.queue_depth", q.len() as i64);
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue.ready.wait(q).expect("queue poisoned");
            }
        };
        let Some(mut conn) = conn else { return };
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain mode: drop the connection without serving.
            let active = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
            shared.counter_add("conn.closed", 1);
            shared.gauge_set("active_conns", active as i64);
            continue;
        }

        let (state, productive) = turn(shared, &mut cache, &mut conn, config);
        idle_turns = if productive { 0 } else { idle_turns + 1 };
        match state {
            ReadState::Open => {
                {
                    let mut q = shared.queue.conns.lock().expect("queue poisoned");
                    q.push_back(conn);
                    shared
                        .service
                        .obs()
                        .gauge_set("objectrunner.serve.serving.queue_depth", q.len() as i64);
                }
                shared.queue.ready.notify_one();
                if idle_turns >= 16 {
                    // Every pooled connection is quiet; poll gently.
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
            ReadState::Eof | ReadState::Dead => {
                let _ = conn.stream.shutdown(Shutdown::Both);
                let active = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                shared.counter_add("conn.closed", 1);
                shared.gauge_set("active_conns", active as i64);
            }
        }
    }
}

/// One scheduling turn over one connection: drain readable bytes,
/// serve up to `batch_max` complete lines, write the responses.
/// Returns the connection's fate and whether the turn did any work.
fn turn(
    shared: &PoolShared,
    cache: &mut crate::shard::ReaderCache,
    conn: &mut Conn,
    config: &PoolConfig,
) -> (ReadState, bool) {
    if let ReadState::Dead = read_available(shared, conn, config.max_line_bytes) {
        return (ReadState::Dead, false);
    }
    let lines = take_lines(&mut conn.rbuf, config.batch_max.max(1), conn.eof);
    if lines.is_empty() {
        return if conn.eof {
            (ReadState::Eof, false)
        } else {
            (ReadState::Open, false)
        };
    }

    let arrival = shared.service.shared.clock.monotonic_micros();
    shared.counter_add("serving.requests", lines.len() as u64);

    // Split the burst into ordered segments at streaming-command
    // boundaries: runs of ordinary lines go through admission control
    // and `handle_batch_at`; a `watch` / `metrics-text` line streams
    // its output straight to the socket as it is produced.
    enum Segment {
        Normal(Vec<String>),
        Stream(Special),
    }
    let mut segments: Vec<Segment> = Vec::new();
    for line in lines {
        match shared.service.special(&line) {
            Some(spec) => segments.push(Segment::Stream(spec)),
            None => match segments.last_mut() {
                Some(Segment::Normal(seg)) => seg.push(line),
                _ => segments.push(Segment::Normal(vec![line])),
            },
        }
    }

    fn send(writer: &mut std::io::BufWriter<&TcpStream>, chunk: &str) -> bool {
        writeln!(writer, "{chunk}")
            .and_then(|()| writer.flush())
            .is_ok()
    }

    // The whole serve-and-write phase runs on a blocking socket (reads
    // are non-blocking, writes are simple), one explicit flush per
    // response line so a response is one `write` syscall.
    if conn.stream.set_nonblocking(false).is_err() {
        return (ReadState::Dead, true);
    }
    let mut write_failed = false;
    {
        let mut writer = std::io::BufWriter::new(&conn.stream);
        let shed_line = overloaded_line();
        'segments: for segment in segments {
            match segment {
                Segment::Stream(spec) => {
                    let mut ok = true;
                    shared.service.run_special(&spec, &mut |chunk| {
                        ok = send(&mut writer, chunk);
                        ok
                    });
                    if !ok {
                        write_failed = true;
                        break 'segments;
                    }
                }
                Segment::Normal(seg) => {
                    let admitted = shared.admit(seg.len());
                    let responses =
                        shared
                            .service
                            .handle_batch_at(&seg[..admitted], cache, arrival);
                    shared.release(admitted);
                    let shed = seg.len() - admitted;
                    if shed > 0 {
                        shared.counter_add("serving.shed_requests", shed as u64);
                        shared
                            .service
                            .record_shed(shed, arrival, shed_line.len() + 1);
                    }
                    for response in responses
                        .iter()
                        .map(String::as_str)
                        .chain((0..shed).map(|_| shed_line.as_str()))
                    {
                        if !send(&mut writer, response) {
                            write_failed = true;
                            break 'segments;
                        }
                    }
                }
            }
        }
    }
    if write_failed {
        let e = std::io::Error::new(ErrorKind::BrokenPipe, "response write failed");
        shared.conn_error("write", &e);
        return (ReadState::Dead, true);
    }
    if conn.stream.set_nonblocking(true).is_err() {
        return (ReadState::Dead, true);
    }

    // A half-closed peer with lines still buffered (the batch cap)
    // stays pooled until the buffer drains; only then does the
    // connection close.
    if conn.eof && conn.rbuf.is_empty() {
        (ReadState::Eof, true)
    } else {
        (ReadState::Open, true)
    }
}

/// Pull whatever the socket has ready into the connection's buffer
/// without blocking.
fn read_available(shared: &PoolShared, conn: &mut Conn, max_line_bytes: usize) -> ReadState {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return ReadState::Eof;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if conn.rbuf.len() > max_line_bytes && !conn.rbuf.contains(&b'\n') {
                    let e = std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("request line exceeds {max_line_bytes} bytes"),
                    );
                    shared.conn_error("read", &e);
                    return ReadState::Dead;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadState::Open,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                shared.conn_error("read", &e);
                return ReadState::Dead;
            }
        }
    }
}

/// Split up to `max` complete lines off the front of `rbuf`, skipping
/// blank lines (the serial loop never answered them either). At EOF an
/// unterminated trailing chunk counts as a line, matching
/// `BufRead::lines`.
fn take_lines(rbuf: &mut Vec<u8>, max: usize, eof: bool) -> Vec<String> {
    let mut lines = Vec::new();
    let mut consumed = 0;
    while lines.len() < max {
        let rest = &rbuf[consumed..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            if eof && !rest.is_empty() && lines.len() < max {
                let line = String::from_utf8_lossy(rest).into_owned();
                consumed = rbuf.len();
                if !line.trim().is_empty() {
                    lines.push(line);
                }
            }
            break;
        };
        let mut end = nl;
        if end > 0 && rest[end - 1] == b'\r' {
            end -= 1;
        }
        let line = String::from_utf8_lossy(&rest[..end]).into_owned();
        consumed += nl + 1;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    rbuf.drain(..consumed);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_lines_splits_and_skips_blanks() {
        let mut buf = b"{\"a\":1}\n\n  \n{\"b\":2}\r\npartial".to_vec();
        let lines = take_lines(&mut buf, 10, false);
        assert_eq!(lines, vec!["{\"a\":1}".to_owned(), "{\"b\":2}".to_owned()]);
        assert_eq!(buf, b"partial");
        // Not at EOF: the partial line stays buffered.
        assert!(take_lines(&mut buf, 10, false).is_empty());
        assert_eq!(buf, b"partial");
        // At EOF it becomes the final line (BufRead::lines semantics).
        let lines = take_lines(&mut buf, 10, true);
        assert_eq!(lines, vec!["partial".to_owned()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn take_lines_respects_the_batch_cap() {
        let mut buf = b"1\n2\n3\n4\n".to_vec();
        let lines = take_lines(&mut buf, 2, false);
        assert_eq!(lines, vec!["1".to_owned(), "2".to_owned()]);
        assert_eq!(buf, b"3\n4\n");
    }
}
