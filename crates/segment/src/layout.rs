//! A deterministic box-model layout engine.
//!
//! Assigns every reachable DOM node a [`Rect`] inside a nominal
//! viewport. The model follows CSS defaults at the fidelity VIPS-style
//! segmentation needs:
//!
//! * block-level elements stack vertically and take the full width of
//!   their containing block;
//! * inline elements and text flow horizontally and wrap at the
//!   containing block's width;
//! * text height is proportional to the number of wrapped lines;
//! * a few elements carry intrinsic sizes (`img`, `input`, `hr`).
//!
//! The absolute pixel values are nominal — only *relative* geometry
//! (which block is biggest / most central) matters downstream.

use objectrunner_html::intern::{FxHashMap, FxHashSet};
use objectrunner_html::{Document, NodeId, NodeKind, Symbol};
use std::sync::OnceLock;

/// A rectangle in layout space (pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl Rect {
    /// Zero-sized rectangle at the origin.
    pub const ZERO: Rect = Rect {
        x: 0.0,
        y: 0.0,
        w: 0.0,
        h: 0.0,
    };

    /// Area in square pixels.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// True when `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.x + other.w <= self.x + self.w
            && other.y + other.h <= self.y + self.h + 1e-9
    }
}

/// Layout parameters (viewport and typography).
#[derive(Debug, Clone)]
pub struct LayoutOptions {
    /// Viewport width in pixels.
    pub viewport_width: f64,
    /// Average glyph advance in pixels.
    pub char_width: f64,
    /// Line height in pixels.
    pub line_height: f64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            viewport_width: 1024.0,
            char_width: 8.0,
            line_height: 18.0,
        }
    }
}

/// Elements laid out as blocks (vertical stacking).
const BLOCK_ELEMENTS: &[&str] = &[
    "html",
    "body",
    "div",
    "p",
    "ul",
    "ol",
    "li",
    "table",
    "tbody",
    "thead",
    "tr",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "header",
    "footer",
    "nav",
    "section",
    "article",
    "aside",
    "main",
    "form",
    "dl",
    "dt",
    "dd",
    "blockquote",
    "pre",
    "hr",
    "fieldset",
];

/// Is `tag` block-level under this engine's defaults?
pub fn is_block_element(tag: Symbol) -> bool {
    static SET: OnceLock<FxHashSet<Symbol>> = OnceLock::new();
    SET.get_or_init(|| BLOCK_ELEMENTS.iter().map(|t| Symbol::intern(t)).collect())
        .contains(&tag)
}

/// The result of a layout pass: a rectangle per reachable node.
pub type LayoutMap = FxHashMap<NodeId, Rect>;

/// Lay out `doc` and return the rectangle of every reachable node.
pub fn layout_document(doc: &Document, opts: &LayoutOptions) -> LayoutMap {
    let mut map = LayoutMap::default();
    let root = doc.root();
    let h = layout_node(doc, root, 0.0, 0.0, opts.viewport_width, opts, &mut map);
    map.insert(
        root,
        Rect {
            x: 0.0,
            y: 0.0,
            w: opts.viewport_width,
            h,
        },
    );
    map
}

/// Lay out node `id` with its top-left at (x, y) and `width` available.
/// Returns the height consumed.
fn layout_node(
    doc: &Document,
    id: NodeId,
    x: f64,
    y: f64,
    width: f64,
    opts: &LayoutOptions,
    map: &mut LayoutMap,
) -> f64 {
    match &doc.node(id).kind {
        NodeKind::Comment(_) => {
            map.insert(
                id,
                Rect {
                    x,
                    y,
                    w: 0.0,
                    h: 0.0,
                },
            );
            0.0
        }
        NodeKind::Text(t) => {
            let chars = t.chars().count() as f64;
            let per_line = (width / opts.char_width).max(1.0);
            let lines = (chars / per_line).ceil().max(1.0);
            let w = if lines > 1.0 {
                width
            } else {
                chars * opts.char_width
            };
            let h = lines * opts.line_height;
            map.insert(id, Rect { x, y, w, h });
            h
        }
        NodeKind::Element { name, .. } => {
            let intrinsic = intrinsic_height(*name, opts);
            let h = flow_children(doc, id, x, y, width, opts, map).max(intrinsic);
            map.insert(id, Rect { x, y, w: width, h });
            h
        }
        NodeKind::Document => flow_children(doc, id, x, y, width, opts, map),
    }
}

fn intrinsic_height(tag: Symbol, opts: &LayoutOptions) -> f64 {
    match tag.as_str() {
        "img" => 120.0,
        "input" | "select" | "button" => opts.line_height * 1.5,
        "hr" | "br" => opts.line_height * 0.5,
        _ => 0.0,
    }
}

/// Flow the children of `id`: block children stack; runs of inline
/// children share horizontal lines and wrap.
fn flow_children(
    doc: &Document,
    id: NodeId,
    x: f64,
    y: f64,
    width: f64,
    opts: &LayoutOptions,
    map: &mut LayoutMap,
) -> f64 {
    let mut cursor_y = y;
    let mut inline_run: Vec<NodeId> = Vec::new();
    let children: Vec<NodeId> = doc.children(id).to_vec();

    for child in children {
        let child_is_block = matches!(
            &doc.node(child).kind,
            NodeKind::Element { name, .. } if is_block_element(*name)
        );
        if child_is_block {
            cursor_y += flush_inline_run(doc, &mut inline_run, x, cursor_y, width, opts, map);
            cursor_y += layout_node(doc, child, x, cursor_y, width, opts, map);
        } else {
            inline_run.push(child);
        }
    }
    cursor_y += flush_inline_run(doc, &mut inline_run, x, cursor_y, width, opts, map);
    cursor_y - y
}

/// Lay out a run of inline nodes flowing left-to-right with wrapping.
/// Returns the height consumed.
fn flush_inline_run(
    doc: &Document,
    run: &mut Vec<NodeId>,
    x: f64,
    y: f64,
    width: f64,
    opts: &LayoutOptions,
    map: &mut LayoutMap,
) -> f64 {
    if run.is_empty() {
        return 0.0;
    }
    let mut cx = x;
    let mut cy = y;
    for &node in run.iter() {
        let text_len = inline_text_len(doc, node);
        let node_w = (text_len as f64 * opts.char_width).max(opts.char_width);
        if cx + node_w > x + width && cx > x {
            cx = x;
            cy += opts.line_height;
        }
        if node_w > width {
            // A single node wider than the line wraps internally: it
            // occupies the full width over several lines.
            let lines = (node_w / width).ceil().max(1.0);
            map.insert(
                node,
                Rect {
                    x,
                    y: cy,
                    w: width,
                    h: lines * opts.line_height,
                },
            );
            let mut icx = x;
            for &c in doc.children(node) {
                let cw = (inline_text_len(doc, c) as f64 * opts.char_width).max(opts.char_width);
                place_inline_subtree(doc, c, icx, cy, cw.min(width), opts, map);
                icx = x + (icx - x + cw) % width;
            }
            cy += (lines - 1.0) * opts.line_height;
            cx = x + (node_w % width).max(opts.char_width);
        } else {
            place_inline_subtree(doc, node, cx, cy, node_w, opts, map);
            cx += node_w;
        }
    }
    run.clear();
    cy + opts.line_height - y
}

/// Recursively give every node in an inline subtree a rectangle.
/// Positions are clamped to the viewport: nominal geometry is enough
/// for segmentation, and degenerate markup (block elements nested in
/// inline ones) must not place nodes outside the page.
fn place_inline_subtree(
    doc: &Document,
    id: NodeId,
    x: f64,
    y: f64,
    w: f64,
    opts: &LayoutOptions,
    map: &mut LayoutMap,
) {
    let x = x.min(opts.viewport_width - 1.0).max(0.0);
    let w = w.min(opts.viewport_width - x);
    map.insert(
        id,
        Rect {
            x,
            y,
            w,
            h: opts.line_height,
        },
    );
    let mut cx = x;
    for &c in doc.children(id) {
        let cw = (inline_text_len(doc, c) as f64 * opts.char_width).max(opts.char_width);
        place_inline_subtree(doc, c, cx, y, cw.min(w), opts, map);
        cx = (cx + cw).min(opts.viewport_width - 1.0);
    }
}

fn inline_text_len(doc: &Document, id: NodeId) -> usize {
    match &doc.node(id).kind {
        NodeKind::Text(t) => t.chars().count() + 1,
        NodeKind::Comment(_) => 0,
        _ => doc
            .children(id)
            .iter()
            .map(|&c| inline_text_len(doc, c))
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;

    fn rect_of(doc: &Document, map: &LayoutMap, tag: &str, idx: usize) -> Rect {
        let el = doc.elements_by_tag(doc.root(), tag)[idx];
        map[&el]
    }

    #[test]
    fn blocks_stack_vertically() {
        let doc = parse("<body><div>a</div><div>b</div></body>");
        let map = layout_document(&doc, &LayoutOptions::default());
        let d0 = rect_of(&doc, &map, "div", 0);
        let d1 = rect_of(&doc, &map, "div", 1);
        assert!(d1.y >= d0.y + d0.h - 1e-9, "{d0:?} then {d1:?}");
    }

    #[test]
    fn blocks_take_full_width() {
        let doc = parse("<body><div>a</div></body>");
        let opts = LayoutOptions::default();
        let map = layout_document(&doc, &opts);
        let d = rect_of(&doc, &map, "div", 0);
        assert_eq!(d.w, opts.viewport_width);
    }

    #[test]
    fn inline_elements_share_a_line() {
        let doc = parse("<div><span>aa</span><span>bb</span></div>");
        let map = layout_document(&doc, &LayoutOptions::default());
        let s0 = rect_of(&doc, &map, "span", 0);
        let s1 = rect_of(&doc, &map, "span", 1);
        assert_eq!(s0.y, s1.y);
        assert!(s1.x > s0.x);
    }

    #[test]
    fn long_text_wraps_and_grows_height() {
        let long = "word ".repeat(400);
        let doc = parse(&format!("<div>{long}</div>"));
        let opts = LayoutOptions::default();
        let map = layout_document(&doc, &opts);
        let d = rect_of(&doc, &map, "div", 0);
        assert!(d.h > opts.line_height * 2.0);
    }

    #[test]
    fn parent_contains_block_children() {
        let doc = parse("<body><div><p>one</p><p>two</p></div></body>");
        let map = layout_document(&doc, &LayoutOptions::default());
        let div = rect_of(&doc, &map, "div", 0);
        let p0 = rect_of(&doc, &map, "p", 0);
        let p1 = rect_of(&doc, &map, "p", 1);
        assert!(div.contains(&p0));
        assert!(div.contains(&p1));
    }

    #[test]
    fn every_reachable_node_has_a_rect() {
        let doc = parse("<body><ul><li>a<li>b</ul><p><em>c</em></p></body>");
        let map = layout_document(&doc, &LayoutOptions::default());
        for id in doc.descendants(doc.root()) {
            assert!(map.contains_key(&id), "missing rect for {id}");
        }
    }

    #[test]
    fn images_have_intrinsic_height() {
        let doc = parse("<div><img src=\"x\"></div>");
        let map = layout_document(&doc, &LayoutOptions::default());
        let img = rect_of(&doc, &map, "img", 0);
        // img is inline here, but the div wraps it with intrinsic size 0;
        // the img itself gets a line box.
        assert!(img.h > 0.0);
    }

    #[test]
    fn bigger_content_means_bigger_area() {
        let small = parse("<body><div id=\"a\">x</div></body>");
        let big_text = "lorem ipsum ".repeat(100);
        let big = parse(&format!("<body><div id=\"a\">{big_text}</div></body>"));
        let opts = LayoutOptions::default();
        let ms = layout_document(&small, &opts);
        let mb = layout_document(&big, &opts);
        let rs = ms[&small.elements_by_tag(small.root(), "div")[0]];
        let rb = mb[&big.elements_by_tag(big.root(), "div")[0]];
        assert!(rb.area() > rs.area());
    }
}
