//! Property-based tests for the equivalence-class analysis: the
//! structural invariants of §III-C hold on randomly generated
//! template pages.

use objectrunner_core::annotate::AnnotatedPage;
use objectrunner_core::eqclass::{find_classes, EqConfig};
use objectrunner_core::roles::{differentiate, DiffConfig};
use objectrunner_core::template::build_template;
use objectrunner_core::tokens::SourceTokens;
use objectrunner_html::parse;
use proptest::prelude::*;
use std::collections::HashMap;

/// A random template-generated source: per page, a random number of
/// records rendered with a fixed per-source cell structure.
#[derive(Debug, Clone)]
struct RandomSource {
    cell_tags: Vec<&'static str>,
    records_per_page: Vec<usize>,
    with_optional: bool,
}

fn arb_source() -> impl Strategy<Value = RandomSource> {
    (
        prop::collection::vec(
            prop::sample::select(vec!["b", "i", "em", "u", "div", "span"]),
            1..4,
        ),
        prop::collection::vec(1usize..7, 4..8),
        any::<bool>(),
    )
        .prop_map(
            |(cell_tags, records_per_page, with_optional)| RandomSource {
                cell_tags,
                records_per_page,
                with_optional,
            },
        )
}

fn render(source: &RandomSource) -> Vec<AnnotatedPage> {
    source
        .records_per_page
        .iter()
        .enumerate()
        .map(|(p, &n)| {
            let records: String = (0..n)
                .map(|i| {
                    let cells: String = source
                        .cell_tags
                        .iter()
                        .enumerate()
                        .map(|(c, tag)| format!("<{tag}>value{p}x{i}x{c}</{tag}>"))
                        .collect();
                    let optional = if source.with_optional && (p + i) % 2 == 0 {
                        "<cite>extra</cite>".to_owned()
                    } else {
                        String::new()
                    };
                    format!("<li>{cells}{optional}</li>")
                })
                .collect();
            AnnotatedPage {
                doc: parse(&format!("<body><ul>{records}</ul></body>")),
                annotations: HashMap::new(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every class found is internally consistent: member roles share
    /// the occurrence vector, spans are ordered and within page
    /// bounds, and the permutation covers all member roles.
    #[test]
    fn classes_are_internally_consistent(source in arb_source()) {
        let pages = render(&source);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &EqConfig::default());
        let vectors = src.occurrence_vectors();
        for class in &analysis.classes {
            // Vector equality across members.
            for &r in &class.roles {
                prop_assert_eq!(&vectors[r.0 as usize], &class.vector);
            }
            // Permutation covers members exactly.
            let mut perm = class.permutation.clone();
            perm.sort_unstable();
            let mut members = class.roles.clone();
            members.sort_unstable();
            prop_assert_eq!(perm, members);
            // Spans ordered within each page and in bounds.
            for (p, spans) in class.spans.iter().enumerate() {
                prop_assert_eq!(spans.len(), class.vector[p] as usize);
                for w in spans.windows(2) {
                    prop_assert!(w[0].1 < w[1].0, "overlapping instances");
                }
                for &(s, e) in spans {
                    prop_assert!(s <= e);
                    prop_assert!(e < src.pages[p].occs.len());
                }
            }
        }
    }

    /// Classes are pairwise nested or disjoint (§III-C validity).
    #[test]
    fn classes_are_nested_or_disjoint(source in arb_source()) {
        let pages = render(&source);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &EqConfig::default());
        for a in &analysis.classes {
            for b in &analysis.classes {
                if a.id >= b.id {
                    continue;
                }
                for (sa, sb) in a.spans.iter().zip(b.spans.iter()) {
                    for &(s1, e1) in sa {
                        for &(s2, e2) in sb {
                            let disjoint = e1 < s2 || e2 < s1;
                            let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                            prop_assert!(disjoint || nested);
                        }
                    }
                }
            }
        }
    }

    /// The hierarchy is acyclic and parents contain their children.
    #[test]
    fn hierarchy_is_well_formed(source in arb_source()) {
        let pages = render(&source);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &EqConfig::default());
        for class in &analysis.classes {
            let mut seen = vec![false; analysis.classes.len()];
            let mut cur = analysis.parent[class.id];
            while let Some(p) = cur {
                prop_assert!(!seen[p], "cycle through class {p}");
                seen[p] = true;
                cur = analysis.parent[p];
            }
        }
    }

    /// Differentiation terminates and only ever refines roles: the
    /// number of roles never decreases and occurrences keep their
    /// token and path.
    #[test]
    fn differentiation_refines_monotonically(source in arb_source()) {
        let pages = render(&source);
        let mut src = SourceTokens::from_pages(&pages);
        let before: Vec<Vec<(String, objectrunner_html::PathId)>> = src
            .pages
            .iter()
            .map(|p| {
                p.occs
                    .iter()
                    .map(|o| (o.token.render(), o.path))
                    .collect()
            })
            .collect();
        let roles_before = src.roles.len();
        let outcome = differentiate(&mut src, &DiffConfig::default(), |_, _| false);
        prop_assert!(!outcome.aborted);
        prop_assert!(src.roles.len() >= roles_before);
        let after: Vec<Vec<(String, objectrunner_html::PathId)>> = src
            .pages
            .iter()
            .map(|p| {
                p.occs
                    .iter()
                    .map(|o| (o.token.render(), o.path))
                    .collect()
            })
            .collect();
        prop_assert_eq!(before, after, "tokens/paths must be untouched");
    }

    /// The template tree is structurally sound: one root, parents and
    /// children agree, every non-root node has matchers.
    #[test]
    fn template_tree_is_well_formed(source in arb_source()) {
        let pages = render(&source);
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(&mut src, &DiffConfig::default(), |_, _| false);
        let tree = build_template(&src, &outcome.analysis);
        prop_assert!(tree.nodes[0].parent.is_none());
        for (i, node) in tree.nodes.iter().enumerate().skip(1) {
            let parent = node.parent.expect("non-root has parent");
            prop_assert!(tree.nodes[parent].children.contains(&i));
            prop_assert!(!node.matchers.is_empty());
            prop_assert_eq!(node.gaps.len(), node.matchers.len().saturating_sub(1));
        }
        // DFS covers every node exactly once (no orphans, no cycles).
        let mut order = tree.dfs();
        order.sort_unstable();
        order.dedup();
        prop_assert_eq!(order.len(), tree.nodes.len());
    }
}
