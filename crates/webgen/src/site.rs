//! The site template engine: renders domain objects into HTML pages
//! with per-site styles and quirks, recording the golden standard.

use crate::data::ValueGen;
use crate::domain::{Domain, GoldObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// List pages vs detail (singleton) pages (paper §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Several records per page, distilled view.
    List,
    /// One object per page, more detail.
    Detail,
}

/// Per-site quirks (see crate docs for the paper phenomena they model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quirk {
    /// Two attributes share one text node.
    SharedTextNode,
    /// Every page shows exactly this many records.
    FixedRecordCount(usize),
    /// Author lists rendered with inconsistent markup (`<a>`/plain).
    VaryingAuthorMarkup,
    /// A constant value ("New York City") embedded in the address.
    DecoyRepeatedValue,
    /// Heavy navigation/ads/footer noise around the data region.
    NoiseBlocks,
    /// Column-major layout: all values of one attribute grouped.
    GroupedColumns,
    /// Not template-based at all (must be discarded).
    Unstructured,
}

/// Specification of one synthetic site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    pub name: String,
    pub domain: Domain,
    pub kind: PageKind,
    pub quirks: Vec<Quirk>,
    /// Number of pages to generate.
    pub pages: usize,
    /// Does the site display the SOD's optional attribute?
    pub optional_present: bool,
    /// Template style variant (0–2).
    pub style: usize,
    /// Per-attribute distinct markup (`<b>title</b><i>artist</i>…`)
    /// instead of uniform cells (`<div>…</div><div>…</div>`). Distinct
    /// markup lets structure-only systems tell the attributes apart by
    /// DOM path; uniform cells require ObjectRunner's semantics-guided
    /// differentiation. Real sources are a mix of both.
    pub distinct_markup: bool,
    /// Fraction of pages that are *interstitials*: category-browse
    /// pages sharing the shell and list container but holding no
    /// records. They make page sampling matter (Table II): SOD-guided
    /// selection scores them near zero, random selection admits them
    /// into the wrapper-induction sample.
    pub interstitial: f64,
    pub seed: u64,
}

impl SiteSpec {
    /// Convenience constructor with no quirks.
    pub fn clean(name: &str, domain: Domain, kind: PageKind, pages: usize, seed: u64) -> SiteSpec {
        SiteSpec {
            name: name.to_owned(),
            domain,
            kind,
            quirks: Vec::new(),
            pages,
            optional_present: true,
            style: (seed % 3) as usize,
            distinct_markup: false,
            interstitial: 0.0,
            seed,
        }
    }

    /// Use per-attribute distinct markup.
    pub fn with_distinct_markup(mut self) -> SiteSpec {
        self.distinct_markup = true;
        self
    }

    /// Mix in interstitial (record-free) pages at the given rate.
    pub fn with_interstitials(mut self, fraction: f64) -> SiteSpec {
        self.interstitial = fraction.clamp(0.0, 1.0);
        self
    }

    /// Add a quirk.
    pub fn with_quirk(mut self, quirk: Quirk) -> SiteSpec {
        self.quirks.push(quirk);
        self
    }

    /// Is a quirk active?
    pub fn has(&self, quirk: Quirk) -> bool {
        self.quirks.contains(&quirk)
    }

    fn fixed_count(&self) -> Option<usize> {
        self.quirks.iter().find_map(|q| match q {
            Quirk::FixedRecordCount(n) => Some(*n),
            _ => None,
        })
    }
}

/// A template redesign applied on top of a [`SiteSpec`]: the *same*
/// objects rendered through a mutated template, modeling the real-web
/// event a serving layer must survive — the site ships a redesign while
/// the stored wrapper still expects the old markup.
///
/// `strength` selects nested tiers of mutation; each tier keeps all
/// weaker ones active:
///
/// | strength | tier        | mutation                                        |
/// |----------|-------------|-------------------------------------------------|
/// | > 0      | cosmetic    | attribute reorder, container class rename       |
/// | ≥ 0.25   | separators  | cell tags change (`div`→`p`, `td`→`th`, …)      |
/// | ≥ 0.5    | record wrap | an extra wrapper `div` appears inside records   |
/// | ≥ 0.75   | container   | the list container itself changes (`ul`→`ol`)   |
///
/// Cosmetic drift is invisible to a path-based wrapper (attributes are
/// not part of token paths), separator drift misaligns the cell
/// matchers, and the stronger tiers shift every path below the
/// mutation point. Crucially, rendering through a `Drift` consumes
/// exactly the same RNG draws as rendering without one, so
/// [`generate_drifted`] produces a source whose golden truth is
/// byte-identical to the clean run of the same spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drift {
    /// Mutation strength in `[0, 1]`; see the tier table above.
    pub strength: f64,
}

impl Drift {
    /// No mutation: `generate_site_with(spec, &Drift::NONE)` is
    /// byte-identical to `generate_site(spec)`.
    pub const NONE: Drift = Drift { strength: 0.0 };

    /// A drift of the given strength (clamped to `[0, 1]`).
    pub fn new(strength: f64) -> Drift {
        Drift {
            strength: strength.clamp(0.0, 1.0),
        }
    }

    fn cosmetic(&self) -> bool {
        self.strength > 0.0
    }

    fn separators(&self) -> bool {
        self.strength >= 0.25
    }

    fn record_wrap(&self) -> bool {
        self.strength >= 0.5
    }

    fn container(&self) -> bool {
        self.strength >= 0.75
    }

    /// The results-container class name (cosmetic tier renames it).
    fn results_class(&self) -> &'static str {
        if self.cosmetic() {
            "results-v2"
        } else {
            "results"
        }
    }
}

/// A generated source: pages plus golden standard.
#[derive(Debug, Clone)]
pub struct Source {
    pub spec: SiteSpec,
    /// Raw HTML, one string per page.
    pub pages: Vec<String>,
    /// Golden objects per page.
    pub truth: Vec<Vec<GoldObject>>,
}

impl Source {
    /// Total golden objects (`No` in Table I).
    pub fn object_count(&self) -> usize {
        self.truth.iter().map(Vec::len).sum()
    }
}

/// Generate a source from its specification (fully deterministic).
pub fn generate_site(spec: &SiteSpec) -> Source {
    generate_site_with(spec, &Drift::NONE)
}

/// Generate the spec's objects through a drifted template: the golden
/// truth is byte-identical to `generate_site(spec)`, only the markup
/// around the values changes.
pub fn generate_drifted(spec: &SiteSpec, strength: f64) -> Source {
    generate_site_with(spec, &Drift::new(strength))
}

/// Generate a source, rendering through the given template drift.
pub fn generate_site_with(spec: &SiteSpec, drift: &Drift) -> Source {
    let mut pages = Vec::with_capacity(spec.pages);
    let mut truth = Vec::with_capacity(spec.pages);
    for (page, objects) in site_pages(spec, drift) {
        pages.push(page);
        truth.push(objects);
    }
    Source {
        spec: spec.clone(),
        pages,
        truth,
    }
}

/// The constant city the `DecoyRepeatedValue` quirk embeds.
const DECOY_CITY: &str = "New York City";

/// Stream a site's pages one at a time: the generator behind
/// [`generate_site_with`], exposed for disk-writing corpus generation
/// and streaming benchmarks that must never hold a million pages in
/// memory. One sequential RNG drives all pages, so collecting this
/// iterator reproduces `generate_site_with` byte-for-byte.
pub fn site_pages<'a>(spec: &'a SiteSpec, drift: &'a Drift) -> SitePages<'a> {
    SitePages {
        spec,
        drift,
        rng: StdRng::seed_from_u64(spec.seed ^ 0x5151_7eb1),
        page_idx: 0,
    }
}

/// Iterator over `(page_html, golden_objects)` — see [`site_pages`].
pub struct SitePages<'a> {
    spec: &'a SiteSpec,
    drift: &'a Drift,
    rng: StdRng,
    page_idx: usize,
}

impl Iterator for SitePages<'_> {
    type Item = (String, Vec<GoldObject>);

    fn next(&mut self) -> Option<(String, Vec<GoldObject>)> {
        if self.page_idx >= self.spec.pages {
            return None;
        }
        let page_idx = self.page_idx;
        self.page_idx += 1;
        Some(render_page(self.spec, self.drift, &mut self.rng, page_idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.pages - self.page_idx;
        (left, Some(left))
    }
}

/// Render one page (and its golden objects) off the site's sequential
/// RNG.
fn render_page(
    spec: &SiteSpec,
    drift: &Drift,
    rng: &mut StdRng,
    page_idx: usize,
) -> (String, Vec<GoldObject>) {
    if spec.has(Quirk::Unstructured) {
        let mut v = ValueGen::new(rng);
        let body = format!(
            "<p>{}</p><p>{}</p><div>{}</div>",
            v.prose(20 + page_idx % 7),
            v.prose(15 + page_idx % 5),
            v.prose(10)
        );
        return (shell(spec, drift, &body, rng), Vec::new());
    }

    if spec.kind == PageKind::List && rng.gen_bool(spec.interstitial) {
        // Category-browse interstitial: same shell, same list
        // container paths, no records.
        let n_cats = rng.gen_range(6..14);
        let mut v = ValueGen::new(rng);
        let cats: String = (0..n_cats)
            .map(|i| format!("<li><a>{} category {i}</a></li>", v.prose(1)))
            .collect();
        // The drifted container applies here too: an interstitial
        // is the same template with no records in it.
        let body = wrap_records(spec, drift, std::slice::from_ref(&cats));
        return (shell(spec, drift, &body, rng), Vec::new());
    }

    let n_records = match (spec.kind, spec.fixed_count()) {
        (PageKind::Detail, _) => 1,
        (PageKind::List, Some(k)) => k,
        (PageKind::List, None) => rng.gen_range(4..=12),
    };

    let mut objects = Vec::with_capacity(n_records);
    let mut rendered = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let (gold, html) = render_record(spec, drift, rng, DECOY_CITY);
        objects.push(gold);
        rendered.push(html);
    }

    let body = if spec.has(Quirk::GroupedColumns) {
        render_grouped(spec, drift, &objects)
    } else {
        match spec.kind {
            PageKind::List => wrap_records(spec, drift, &rendered),
            PageKind::Detail => rendered.pop().expect("one record"),
        }
    };
    (shell(spec, drift, &body, rng), objects)
}

/// Generate one record's gold object and its attribute values.
fn record_values(spec: &SiteSpec, rng: &mut StdRng, decoy_city: &str) -> GoldObject {
    let mut v = ValueGen::new(rng);
    let mut gold = GoldObject::default();
    match spec.domain {
        Domain::Concerts => {
            gold.push("artist", &v.artist());
            gold.push("date", &v.concert_date());
            gold.push("theater", &v.venue());
            if spec.optional_present && v.rng.gen_bool(0.8) {
                let addr = if spec.has(Quirk::DecoyRepeatedValue) {
                    format!("{}, {decoy_city}", v.street_address())
                } else {
                    v.street_address()
                };
                gold.push("address", &addr);
            }
        }
        Domain::Albums => {
            gold.push("title", &v.title());
            gold.push("artist", &v.artist());
            gold.push("price", &v.price());
            if spec.optional_present && v.rng.gen_bool(0.8) {
                gold.push("date", &v.short_date());
            }
        }
        Domain::Books => {
            gold.push("title", &v.title());
            for a in v.authors(3) {
                gold.push("author", &a);
            }
            gold.push("price", &v.price());
            if spec.optional_present && v.rng.gen_bool(0.8) {
                gold.push("date", &v.short_date());
            }
        }
        Domain::Publications => {
            gold.push("title", &v.publication_title());
            for a in v.authors(4) {
                gold.push("author", &a);
            }
            if spec.optional_present && v.rng.gen_bool(0.8) {
                gold.push("date", &v.short_date());
            }
        }
        Domain::Cars => {
            let (brand, _full) = v.car();
            gold.push("brand", &brand);
            gold.push("price", &v.car_price());
        }
    }
    gold
}

/// Render one record into HTML (style- and quirk-dependent).
fn render_record(
    spec: &SiteSpec,
    drift: &Drift,
    rng: &mut StdRng,
    decoy_city: &str,
) -> (GoldObject, String) {
    let gold = record_values(spec, rng, decoy_city);
    let html = match spec.kind {
        PageKind::List => render_list_record(spec, drift, &gold, rng),
        PageKind::Detail => render_detail_record(spec, drift, &gold, rng),
    };
    (gold, html)
}

/// Attribute cells of a record (shared/merged handling included).
fn record_cells(spec: &SiteSpec, gold: &GoldObject, rng: &mut StdRng) -> Vec<String> {
    let mut cells: Vec<String> = Vec::new();
    let attrs = spec.domain.attributes();
    let shared = spec.has(Quirk::SharedTextNode);

    match spec.domain {
        Domain::Concerts => {
            if shared {
                cells.push(format!(
                    "{} — {}",
                    gold.values("artist")[0],
                    gold.values("date")[0]
                ));
            } else {
                cells.push(gold.values("artist")[0].clone());
                cells.push(gold.values("date")[0].clone());
            }
            // Location sub-structure: theater in <a>, address in a span.
            let addr = gold
                .values("address")
                .first()
                .map(|a| format!("<span>{a}</span>"))
                .unwrap_or_default();
            cells.push(format!("<a>{}</a>{addr}", gold.values("theater")[0]));
        }
        Domain::Cars => {
            if shared {
                // Brand and model in one text unit (the model varies,
                // so it cannot be mistaken for template text).
                const MODELS: &[&str] = &[
                    "Meridian", "Vista", "Pulse", "Traverse", "Summit", "Cadence", "Orbit",
                ];
                let model = MODELS[rng.gen_range(0..MODELS.len())];
                cells.push(format!("{} {model}", gold.values("brand")[0]));
            } else {
                cells.push(gold.values("brand")[0].clone());
            }
            cells.push(gold.values("price")[0].clone());
        }
        _ => {
            for attr in attrs {
                if spec.domain.set_attributes().contains(&attr) {
                    cells.push(render_authors(spec, gold.values(attr), rng));
                } else if let Some(value) = gold.values(attr).first() {
                    if shared && attr == "title" {
                        // Title and the following attribute share a cell.
                        continue; // handled below
                    }
                    cells.push(value.clone());
                }
            }
            if shared {
                let second = if spec.domain == Domain::Publications {
                    // title shares with the first author
                    gold.values("author")[0].clone()
                } else {
                    gold.values("artist").first().cloned().unwrap_or_default()
                };
                let merged = format!("{} by {}", gold.values("title")[0], second);
                cells.insert(0, merged);
            }
        }
    }
    cells
}

/// Author-list markup.
fn render_authors(spec: &SiteSpec, authors: &[String], rng: &mut StdRng) -> String {
    if spec.has(Quirk::VaryingAuthorMarkup) {
        // The amazon.com case: markup depends on the record.
        match rng.gen_range(0..3) {
            0 => format!(
                "by <a>{}</a>{}",
                authors[0],
                if authors.len() > 1 {
                    format!(" and {}", authors[1..].join(" and "))
                } else {
                    String::new()
                }
            ),
            1 => format!("by {}", authors.join(", ")),
            _ => format!("by <a>{}</a>", authors.join("</a>, <a>")),
        }
    } else {
        authors
            .iter()
            .map(|a| format!("<a>{a}</a>"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Distinct per-attribute wrappers, cycled by cell index.
const DISTINCT_TAGS: &[&str] = &["b", "i", "em", "u", "cite"];

/// One list record in the site's style.
fn render_list_record(
    spec: &SiteSpec,
    drift: &Drift,
    gold: &GoldObject,
    rng: &mut StdRng,
) -> String {
    let cells = record_cells(spec, gold, rng);
    // Record-wrap drift: an extra grouping div appears between the
    // record element and its cells, shifting every cell path down.
    let group = |inner: String| {
        if drift.record_wrap() {
            format!("<div class=\"group\">{inner}</div>")
        } else {
            inner
        }
    };
    if spec.distinct_markup {
        // Distinct per-attribute cells: each attribute lives under its
        // own tag, so the columns are separable by DOM path alone.
        // Separator drift rotates the tag cycle by one.
        let rot = usize::from(drift.separators());
        let inner: String = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let tag = DISTINCT_TAGS[(i + rot) % DISTINCT_TAGS.len()];
                format!("<{tag}>{c}</{tag}>")
            })
            .collect();
        let inner = group(inner);
        return match spec.style {
            0 => format!("<li>{inner}</li>"),
            1 => format!("<tr><td>{inner}</td></tr>"),
            _ => format!("<div class=\"rec\">{inner}</div>"),
        };
    }
    match spec.style {
        0 => {
            let tag = if drift.separators() { "p" } else { "div" };
            let inner: String = cells
                .iter()
                .map(|c| format!("<{tag}>{c}</{tag}>"))
                .collect();
            format!("<li>{}</li>", group(inner))
        }
        1 => {
            let tag = if drift.separators() { "th" } else { "td" };
            let inner: String = cells
                .iter()
                .map(|c| {
                    if drift.record_wrap() {
                        format!("<{tag}><div>{c}</div></{tag}>")
                    } else {
                        format!("<{tag}>{c}</{tag}>")
                    }
                })
                .collect();
            format!("<tr>{inner}</tr>")
        }
        _ => {
            let tag = if drift.separators() { "em" } else { "span" };
            let inner: String = cells
                .iter()
                .map(|c| format!("<{tag} class=\"cell\">{c}</{tag}>"))
                .collect();
            format!("<div class=\"rec\">{}</div>", group(inner))
        }
    }
}

/// Wrap list records in the style's container.
fn wrap_records(spec: &SiteSpec, drift: &Drift, records: &[String]) -> String {
    let joined = records.concat();
    let class = drift.results_class();
    match spec.style {
        0 => {
            // Container drift swaps the list element itself.
            let tag = if drift.container() { "ol" } else { "ul" };
            format!("<{tag} class=\"{class}\">{joined}</{tag}>")
        }
        1 => {
            let table = format!("<table class=\"{class}\"><tbody>{joined}</tbody></table>");
            if drift.container() {
                format!("<div class=\"tablewrap\">{table}</div>")
            } else {
                table
            }
        }
        _ => {
            let tag = if drift.container() { "section" } else { "div" };
            format!("<{tag} class=\"{class}\">{joined}</{tag}>")
        }
    }
}

/// A detail (singleton) page body.
fn render_detail_record(
    spec: &SiteSpec,
    drift: &Drift,
    gold: &GoldObject,
    rng: &mut StdRng,
) -> String {
    let cells = record_cells(spec, gold, rng);
    let labels = detail_labels(spec.domain, cells.len());
    let label_tag = if drift.separators() { "strong" } else { "b" };
    let rows: String = cells
        .iter()
        .zip(labels.iter())
        .map(|(c, l)| {
            format!("<div class=\"row\"><{label_tag}>{l}</{label_tag}><span>{c}</span></div>")
        })
        .collect();
    let rows = if drift.record_wrap() {
        format!("<div class=\"group\">{rows}</div>")
    } else {
        rows
    };
    let item_tag = if drift.container() { "article" } else { "div" };
    let mut v = ValueGen::new(rng);
    format!(
        "<{item_tag} class=\"item\"><h1>{}</h1>{rows}<div class=\"about\">{}</div></{item_tag}>",
        cells.first().cloned().unwrap_or_default(),
        v.prose(14)
    )
}

fn detail_labels(domain: Domain, n: usize) -> Vec<&'static str> {
    let all: Vec<&'static str> = match domain {
        Domain::Concerts => vec!["Who", "When", "Where"],
        Domain::Albums => vec!["Album", "Artist", "Price", "Released"],
        Domain::Books => vec!["Title", "Authors", "Price", "Published"],
        Domain::Publications => vec!["Title", "Authors", "Year"],
        Domain::Cars => vec!["Make", "Price"],
    };
    let mut out = all;
    out.truncate(n);
    while out.len() < n {
        out.push("Info");
    }
    out
}

/// Column-major layout: every attribute's values grouped together.
fn render_grouped(spec: &SiteSpec, drift: &Drift, objects: &[GoldObject]) -> String {
    let cell_tag = if drift.separators() { "em" } else { "span" };
    let mut columns = String::new();
    for attr in spec.domain.attributes() {
        let cells: String = objects
            .iter()
            .flat_map(|o| o.values(attr).iter())
            .map(|value| format!("<{cell_tag}>{value}</{cell_tag}>"))
            .collect();
        columns.push_str(&format!("<div class=\"col-{attr}\">{cells}</div>"));
    }
    let tag = if drift.container() { "section" } else { "div" };
    format!(
        "<{tag} class=\"{}\">{columns}</{tag}>",
        drift.results_class()
    )
}

/// The page shell: header/nav, the data region, sidebar/footer.
fn shell(spec: &SiteSpec, drift: &Drift, body: &str, rng: &mut StdRng) -> String {
    let mut v = ValueGen::new(rng);
    let heavy = spec.has(Quirk::NoiseBlocks);
    let nav = format!(
        "<div class=\"nav\"><a>home</a><a>browse</a><a>deals</a><a>help</a> {}</div>",
        if heavy { v.prose(12) } else { String::new() }
    );
    let sidebar = if heavy {
        format!(
            "<div class=\"sidebar\"><h3>sponsored</h3><p>{}</p><p>{}</p></div>",
            v.prose(10),
            v.prose(8)
        )
    } else {
        String::new()
    };
    let footer = format!(
        "<div class=\"footer\">copyright {} terms privacy {}</div>",
        spec.name,
        if heavy { v.prose(10) } else { String::new() }
    );
    // Cosmetic drift reorders the content div's attributes — invisible
    // to a path-based wrapper, which never keys on attribute order.
    let content_attrs = if drift.cosmetic() {
        "id=\"main\" class=\"content\""
    } else {
        "class=\"content\" id=\"main\""
    };
    format!(
        "<html><head><title>{name}</title><script>var t=1;</script>\
         <style>.x{{color:red}}</style></head>\
         <body>{nav}<div {content_attrs}>{body}</div>{sidebar}{footer}</body></html>",
        name = spec.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(domain: Domain, kind: PageKind) -> SiteSpec {
        SiteSpec::clean("testsite", domain, kind, 6, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(Domain::Concerts, PageKind::List);
        let a = generate_site(&s);
        let b = generate_site(&s);
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn streamed_pages_match_materialized_generation() {
        for strength in [0.0, 0.5] {
            let s = spec(Domain::Books, PageKind::List).with_interstitials(0.2);
            let drift = Drift::new(strength);
            let all = generate_site_with(&s, &drift);
            let streamed: Vec<(String, Vec<GoldObject>)> = site_pages(&s, &drift).collect();
            assert_eq!(streamed.len(), all.pages.len());
            for (i, (page, truth)) in streamed.iter().enumerate() {
                assert_eq!(page, &all.pages[i], "page {i} diverged");
                assert_eq!(truth, &all.truth[i], "truth {i} diverged");
            }
        }
    }

    #[test]
    fn truth_matches_page_content() {
        let source = generate_site(&spec(Domain::Albums, PageKind::List));
        for (page, objects) in source.pages.iter().zip(source.truth.iter()) {
            for o in objects {
                for (_, values) in &o.attrs {
                    for value in values {
                        assert!(page.contains(value), "gold value {value} not on page");
                    }
                }
            }
        }
    }

    #[test]
    fn list_pages_have_several_records() {
        let source = generate_site(&spec(Domain::Books, PageKind::List));
        assert!(source.truth.iter().all(|t| t.len() >= 4));
        assert!(source.object_count() >= 24);
    }

    #[test]
    fn detail_pages_have_one_record() {
        let source = generate_site(&spec(Domain::Concerts, PageKind::Detail));
        assert!(source.truth.iter().all(|t| t.len() == 1));
    }

    #[test]
    fn fixed_record_count_is_respected() {
        let s = spec(Domain::Books, PageKind::List).with_quirk(Quirk::FixedRecordCount(7));
        let source = generate_site(&s);
        assert!(source.truth.iter().all(|t| t.len() == 7));
    }

    #[test]
    fn unstructured_sites_have_no_objects() {
        let s = spec(Domain::Albums, PageKind::List).with_quirk(Quirk::Unstructured);
        let source = generate_site(&s);
        assert_eq!(source.object_count(), 0);
        assert!(source.pages.iter().all(|p| !p.contains("<li>")));
    }

    #[test]
    fn decoy_embeds_constant_city_in_addresses() {
        let s = SiteSpec {
            optional_present: true,
            ..spec(Domain::Concerts, PageKind::List)
        }
        .with_quirk(Quirk::DecoyRepeatedValue);
        let source = generate_site(&s);
        let with_addr: Vec<&GoldObject> = source
            .truth
            .iter()
            .flatten()
            .filter(|o| o.has("address"))
            .collect();
        assert!(!with_addr.is_empty());
        for o in with_addr {
            assert!(
                o.values("address")[0].ends_with("New York City"),
                "decoy missing: {:?}",
                o.values("address")
            );
        }
    }

    #[test]
    fn shared_text_node_merges_attribute_display() {
        let s = spec(Domain::Concerts, PageKind::List).with_quirk(Quirk::SharedTextNode);
        let source = generate_site(&s);
        let first = &source.truth[0][0];
        let merged = format!(
            "{} — {}",
            first.values("artist")[0],
            first.values("date")[0]
        );
        assert!(source.pages[0].contains(&merged));
    }

    #[test]
    fn grouped_columns_layout_groups_values() {
        let s = spec(Domain::Cars, PageKind::List).with_quirk(Quirk::GroupedColumns);
        let source = generate_site(&s);
        assert!(source.pages[0].contains("col-brand"));
        assert!(source.pages[0].contains("col-price"));
    }

    #[test]
    fn styles_produce_different_markup() {
        let mk = |style: usize| {
            let mut s = spec(Domain::Albums, PageKind::List);
            s.style = style;
            generate_site(&s).pages[0].clone()
        };
        assert!(mk(0).contains("<ul"));
        assert!(mk(1).contains("<table"));
        assert!(mk(2).contains("class=\"rec\""));
    }

    #[test]
    fn optional_attribute_varies_within_site() {
        let s = SiteSpec {
            pages: 10,
            optional_present: true,
            ..spec(Domain::Albums, PageKind::List)
        };
        let source = generate_site(&s);
        let objects: Vec<&GoldObject> = source.truth.iter().flatten().collect();
        let with = objects.iter().filter(|o| o.has("date")).count();
        assert!(with > 0 && with < objects.len(), "date should be optional");
    }

    #[test]
    fn drifted_truth_is_identical_to_base() {
        for style in 0..3 {
            let mut s = spec(Domain::Books, PageKind::List);
            s.style = style;
            let base = generate_site(&s);
            for strength in [0.1, 0.25, 0.5, 0.75, 1.0] {
                let drifted = generate_drifted(&s, strength);
                assert_eq!(
                    base.truth, drifted.truth,
                    "truth changed at style {style} strength {strength}"
                );
                assert_ne!(
                    base.pages, drifted.pages,
                    "markup unchanged at style {style} strength {strength}"
                );
            }
        }
    }

    #[test]
    fn zero_drift_is_the_identity() {
        let s = spec(Domain::Albums, PageKind::List);
        let base = generate_site(&s);
        let none = generate_site_with(&s, &Drift::NONE);
        assert_eq!(base.pages, none.pages);
        assert_eq!(base.truth, none.truth);
    }

    #[test]
    fn cosmetic_drift_only_touches_attributes() {
        let mut s = spec(Domain::Albums, PageKind::List);
        s.style = 0;
        let base = generate_site(&s);
        let drifted = generate_drifted(&s, 0.1);
        // Tag structure is untouched: stripping attributes equalizes.
        let strip = |html: &str| {
            html.replace("class=\"results\"", "")
                .replace("class=\"results-v2\"", "")
                .replace("class=\"content\" id=\"main\"", "")
                .replace("id=\"main\" class=\"content\"", "")
        };
        for (a, b) in base.pages.iter().zip(drifted.pages.iter()) {
            assert_eq!(strip(a), strip(b));
        }
    }

    #[test]
    fn drift_tiers_mutate_progressively() {
        let mut s = spec(Domain::Albums, PageKind::List);
        s.style = 0;
        let sep = generate_drifted(&s, 0.25).pages[0].clone();
        assert!(
            sep.contains("<p>") && !sep.contains("<div><"),
            "cells become <p>"
        );
        let wrapped = generate_drifted(&s, 0.5).pages[0].clone();
        assert!(wrapped.contains("<li><div class=\"group\">"));
        let container = generate_drifted(&s, 0.8).pages[0].clone();
        assert!(container.contains("<ol class=\"results-v2\">"));
        assert!(!container.contains("<ul"));
    }

    #[test]
    fn detail_pages_drift_too() {
        let s = spec(Domain::Concerts, PageKind::Detail);
        let strong = generate_drifted(&s, 1.0).pages[0].clone();
        assert!(strong.contains("<article class=\"item\">"));
        assert!(strong.contains("<strong>"));
        assert!(strong.contains("<div class=\"group\">"));
    }

    #[test]
    fn authors_can_collapse_into_text() {
        let s = spec(Domain::Books, PageKind::List).with_quirk(Quirk::VaryingAuthorMarkup);
        let source = generate_site(&s);
        let has_plain_by = source.pages.iter().any(|p| p.contains("by "));
        assert!(has_plain_by);
    }
}
