//! Matching the canonical SOD into the annotated template tree
//! (paper §III-D) and the partial-matching existence test used by the
//! §III-E abort condition.
//!
//! "We then do the matching of the canonical SOD with the template
//! tree bottom-up, by a dynamic programming approach which starting
//! from the leaf classes bearing type annotations, tries to identify a
//! sub-hierarchy that matches the entire SOD. … These atomic types of
//! the SOD should match separators that (i) belong to the same
//! equivalence class, and (ii) have annotations for these types."

use crate::extract::page_stream;
use crate::template::{GapKind, Matcher, NodeMultiplicity, TemplateTree};
use crate::tokens::SourceTokens;
use objectrunner_html::{Document, FxHashMap, FxHashSet, PageToken, PathId, Symbol};
use objectrunner_sod::{canonicalize, Sod, SodNode};

/// A gap address inside the template tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapRef {
    pub node: usize,
    pub gap: usize,
}

/// How one SOD set component maps into the template.
#[derive(Debug, Clone)]
pub enum SetMapping {
    /// The set's elements correspond to instances of a repeating
    /// template node; each element's values come from `element`.
    Repeated {
        set_node: usize,
        element: TupleMapping,
    },
    /// No repeating structure found — the whole set is displayed as a
    /// single field (e.g. comma-separated authors). Values will be
    /// extracted together (a *partially correct* outcome by the
    /// paper's classification).
    Collapsed { type_name: String, gap: GapRef },
}

/// How a (canonical) tuple maps into the template.
#[derive(Debug, Clone)]
pub struct TupleMapping {
    /// The template node anchoring the tuple.
    pub anchor: usize,
    /// Atomic type → gap. Two types may share a gap when the page
    /// displays them as one text unit (merged fields).
    pub atomics: Vec<(String, GapRef)>,
    /// Set components.
    pub sets: Vec<SetMapping>,
    /// Optional atomic types with no witness in this source.
    pub missing_optional: Vec<String>,
}

impl TupleMapping {
    /// Are two different atomic types mapped to the same gap?
    pub fn has_merged_fields(&self) -> bool {
        for (i, (_, g1)) in self.atomics.iter().enumerate() {
            for (_, g2) in self.atomics.iter().skip(i + 1) {
                if g1 == g2 {
                    return true;
                }
            }
        }
        false
    }
}

/// The full SOD → template mapping.
#[derive(Debug, Clone)]
pub struct SodMapping {
    pub record: TupleMapping,
    /// True when the anchor repeats (list page) rather than occurring
    /// once per page (detail page).
    pub record_repeats: bool,
}

/// Why matching failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// A required atomic type had no annotated gap under any anchor.
    MissingRequired(Vec<String>),
    /// The template tree has no candidate anchors at all.
    NoAnchors,
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::MissingRequired(types) => {
                write!(f, "no gap matches required types: {}", types.join(", "))
            }
            MatchError::NoAnchors => write!(f, "template tree has no anchors"),
        }
    }
}

impl std::error::Error for MatchError {}

/// Minimum share of a gap's annotations the majority type must hold.
const MAJORITY_SHARE: f64 = 0.5;

/// A type may claim a gap when it holds at least this share of the
/// gap's annotations — two types legitimately share a gap when the
/// page displays both in one text unit (merged fields).
const SIGNIFICANT_SHARE: f64 = 1.0 / 3.0;

/// Match `sod` (canonicalized internally) against `tree`.
pub fn match_sod(tree: &TemplateTree, sod: &Sod) -> Result<SodMapping, MatchError> {
    let canon = canonicalize(sod);
    let SodNode::Tuple { children, .. } = canon.root() else {
        // A bare entity or set root: wrap implicitly.
        return Err(MatchError::NoAnchors);
    };

    if tree.nodes.len() <= 1 {
        return Err(MatchError::NoAnchors);
    }

    // Try every node as the record anchor; keep the best-scoring one.
    let mut best: Option<(i64, SodMapping)> = None;
    let mut worst_missing: Vec<String> = Vec::new();
    for anchor in 0..tree.nodes.len() {
        match match_tuple(tree, anchor, children) {
            Ok(mapping) => {
                let score = score_mapping(tree, &mapping);
                if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    let record_repeats =
                        tree.nodes[anchor].multiplicity == NodeMultiplicity::Repeating;
                    best = Some((
                        score,
                        SodMapping {
                            record: mapping,
                            record_repeats,
                        },
                    ));
                }
            }
            Err(MatchError::MissingRequired(m)) => {
                if worst_missing.is_empty() || m.len() < worst_missing.len() {
                    worst_missing = m;
                }
            }
            Err(_) => {}
        }
    }
    match best {
        Some((_, mapping)) => Ok(mapping),
        None if !worst_missing.is_empty() => Err(MatchError::MissingRequired(worst_missing)),
        None => Err(MatchError::NoAnchors),
    }
}

/// Match one canonical tuple's components against the gaps reachable
/// from `anchor` through non-repeating edges.
fn match_tuple(
    tree: &TemplateTree,
    anchor: usize,
    components: &[SodNode],
) -> Result<TupleMapping, MatchError> {
    let reach = tree.tuple_reach(anchor);
    // Candidate (gap, type) pairs. A type may claim a gap when it
    // holds a significant share of the gap's annotations, or when the
    // gap holds a significant share of the *type's own* evidence
    // (robust to vote-count skew between verbose and terse types
    // sharing one merged gap).
    let mut type_totals: FxHashMap<Symbol, usize> = FxHashMap::default();
    for &n in &reach {
        for gap in &tree.nodes[n].gaps {
            for (t, &votes) in &gap.annotations {
                *type_totals.entry(*t).or_insert(0) += votes;
            }
        }
    }
    let mut gap_majorities: Vec<(GapRef, Symbol, usize)> = Vec::new(); // (gap, type, votes)
    for &n in &reach {
        for (j, gap) in tree.nodes[n].gaps.iter().enumerate() {
            let total: usize = gap.annotations.values().sum();
            if total == 0 {
                continue;
            }
            for (t, &votes) in &gap.annotations {
                let gap_share = votes as f64 / total as f64;
                let type_share = votes as f64 / *type_totals.get(t).unwrap_or(&1) as f64;
                if gap_share >= SIGNIFICANT_SHARE || type_share >= SIGNIFICANT_SHARE {
                    gap_majorities.push((GapRef { node: n, gap: j }, *t, votes));
                }
            }
        }
    }

    let mut atomics: Vec<(String, GapRef)> = Vec::new();
    let mut sets: Vec<SetMapping> = Vec::new();
    let mut missing_optional: Vec<String> = Vec::new();
    let mut missing_required: Vec<String> = Vec::new();
    let mut used_gaps: Vec<GapRef> = Vec::new();

    for comp in components {
        match comp {
            SodNode::Entity {
                type_name,
                multiplicity,
            } => {
                // Best gap whose majority annotation is this type.
                let candidate = gap_majorities
                    .iter()
                    .filter(|(_, t, _)| t.as_str() == type_name.as_str())
                    .max_by_key(|(g, _, votes)| (*votes, std::cmp::Reverse(g.node), g.gap));
                match candidate {
                    Some(&(gap, _, _)) => {
                        used_gaps.push(gap);
                        atomics.push((type_name.clone(), gap));
                    }
                    None if multiplicity.is_optional() => {
                        missing_optional.push(type_name.clone());
                    }
                    None => missing_required.push(type_name.clone()),
                }
            }
            SodNode::Set {
                child,
                multiplicity,
            } => match match_set(tree, anchor, child) {
                Some(mapping) => sets.push(mapping),
                None if multiplicity.is_optional() => {
                    for t in collect_entity_types(child) {
                        missing_optional.push(t);
                    }
                }
                None => missing_required.extend(collect_entity_types(child)),
            },
            SodNode::Disjunction(a, b) => {
                // Try either branch as a component list of one.
                let branch_a = match_tuple(tree, anchor, std::slice::from_ref(a));
                let branch_b = match_tuple(tree, anchor, std::slice::from_ref(b));
                match (branch_a, branch_b) {
                    (Ok(m), _) | (_, Ok(m)) => {
                        atomics.extend(m.atomics);
                        sets.extend(m.sets);
                        missing_optional.extend(m.missing_optional);
                    }
                    _ => missing_required.extend(collect_entity_types(comp)),
                }
            }
            SodNode::Tuple { .. } => {
                // Canonical form guarantees no tuple directly here,
                // but stay safe: match it in place.
                let inner = match_tuple(tree, anchor, std::slice::from_ref(comp))?;
                atomics.extend(inner.atomics);
                sets.extend(inner.sets);
            }
        }
    }

    // Elimination: a single unmatched required atomic and a single
    // unclaimed data gap pair up (structure completes the annotations).
    if missing_required.len() == 1 {
        let unclaimed: Vec<GapRef> = reach
            .iter()
            .flat_map(|&n| {
                tree.nodes[n]
                    .gaps
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.kind() == GapKind::Data)
                    .map(move |(j, _)| GapRef { node: n, gap: j })
            })
            .filter(|g| !used_gaps.contains(g))
            .collect();
        if unclaimed.len() == 1 {
            let t = missing_required.pop().expect("len checked");
            atomics.push((t, unclaimed[0]));
        }
    }

    if !missing_required.is_empty() {
        return Err(MatchError::MissingRequired(missing_required));
    }
    Ok(TupleMapping {
        anchor,
        atomics,
        sets,
        missing_optional,
    })
}

/// Match a set component: prefer a repeating descendant node whose
/// gaps bear the element's annotations; otherwise collapse into a gap.
fn match_set(tree: &TemplateTree, anchor: usize, child: &SodNode) -> Option<SetMapping> {
    let types = collect_entity_types(child);
    let primary = types.first()?.clone();

    // Repeating descendants reachable from the anchor's tuple zone.
    let reach = tree.tuple_reach(anchor);
    let mut candidates: Vec<usize> = Vec::new();
    for &n in &reach {
        for &c in &tree.nodes[n].children {
            if tree.nodes[c].multiplicity == NodeMultiplicity::Repeating && c != anchor {
                candidates.push(c);
            }
        }
    }
    for cand in candidates {
        // The element tuple must match inside this repeating node.
        let components = set_element_components(child);
        if let Ok(element) = match_tuple(tree, cand, &components) {
            if !element.atomics.is_empty() {
                return Some(SetMapping::Repeated {
                    set_node: cand,
                    element,
                });
            }
        }
    }

    // Collapsed: any reachable gap with the element annotation.
    for &n in &reach {
        for (j, gap) in tree.nodes[n].gaps.iter().enumerate() {
            if let Some((t, share)) = gap.majority_annotation() {
                if t == primary && share >= MAJORITY_SHARE {
                    return Some(SetMapping::Collapsed {
                        type_name: primary,
                        gap: GapRef { node: n, gap: j },
                    });
                }
            }
        }
    }
    None
}

/// The component list of a set element (a tuple's children, or the
/// node itself for entity elements).
fn set_element_components(child: &SodNode) -> Vec<SodNode> {
    match child {
        SodNode::Tuple { children, .. } => children.clone(),
        other => vec![other.clone()],
    }
}

fn collect_entity_types(node: &SodNode) -> Vec<String> {
    let mut out = Vec::new();
    node.entity_types(&mut out);
    out.into_iter().map(str::to_owned).collect()
}

/// Mapping preference: distinct gaps, sets resolved as repeated,
/// anchors deeper in the tree (records, not page shells).
fn score_mapping(tree: &TemplateTree, mapping: &TupleMapping) -> i64 {
    let mut distinct: Vec<GapRef> = mapping.atomics.iter().map(|&(_, g)| g).collect();
    distinct.sort_by_key(|g| (g.node, g.gap));
    distinct.dedup();
    let mut score = distinct.len() as i64 * 100;
    score -= (mapping.atomics.len() as i64 - distinct.len() as i64) * 40; // merged penalty
    for set in &mapping.sets {
        score += match set {
            SetMapping::Repeated { .. } => 80,
            SetMapping::Collapsed { .. } => 20,
        };
    }
    score -= mapping.missing_optional.len() as i64 * 5;
    // Prefer repeating anchors (records) and deeper nodes.
    if tree.nodes[mapping.anchor].multiplicity == NodeMultiplicity::Repeating {
        score += 30;
    }
    let mut depth = 0;
    let mut cur = tree.nodes[mapping.anchor].parent;
    while let Some(p) = cur {
        depth += 1;
        cur = tree.nodes[p].parent;
    }
    score += depth;
    score
}

/// The wrapper slots drift detection watches: the deduplicated
/// separator matchers of every template node the SOD mapping touches —
/// the record anchor, the nodes holding its atomics' gaps, and set
/// nodes with their element tuples, recursively. Slots outside the
/// mapping are template noise: a redesign of page regions the wrapper
/// never reads should not flag it stale.
pub fn wrapper_slots(tree: &TemplateTree, mapping: &SodMapping) -> Vec<Matcher> {
    let mut nodes: Vec<usize> = Vec::new();
    collect_mapping_nodes(&mapping.record, &mut nodes);
    nodes.sort_unstable();
    nodes.dedup();
    let mut slots: Vec<Matcher> = Vec::new();
    for n in nodes {
        for &m in &tree.nodes[n].matchers {
            if !slots.contains(&m) {
                slots.push(m);
            }
        }
    }
    slots
}

pub(crate) fn collect_mapping_nodes(mapping: &TupleMapping, out: &mut Vec<usize>) {
    out.push(mapping.anchor);
    for (_, gap) in &mapping.atomics {
        out.push(gap.node);
    }
    for set in &mapping.sets {
        match set {
            SetMapping::Repeated { set_node, element } => {
                out.push(*set_node);
                collect_mapping_nodes(element, out);
            }
            SetMapping::Collapsed { gap, .. } => out.push(gap.node),
        }
    }
}

/// Per-page template-drift measurement (serving layer): of the
/// wrapper's slots, how many failed to align anywhere on the page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftReport {
    /// Total wrapper slots checked.
    pub slots: usize,
    /// Slots with no `(token, path)` occurrence on the page.
    pub misaligned: usize,
}

impl DriftReport {
    /// Drift score in `[0, 1]`: the fraction of slots that fail to
    /// align. 0 = the template still fits perfectly (attribute
    /// reordering and class renames are invisible — matchers carry tag
    /// names and tag paths only); 1 = no slot aligns at all.
    pub fn score(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.misaligned as f64 / self.slots as f64
        }
    }
}

/// Score one (cleaned, simplified) page against a wrapper's slots.
/// A slot aligns when its exact `(token, path)` pair occurs anywhere in
/// the page stream — the same test the extraction scan performs, so a
/// page scoring 0 is one every matcher can in principle be located on.
pub fn drift_score(tree: &TemplateTree, mapping: &SodMapping, doc: &Document) -> DriftReport {
    let slots = wrapper_slots(tree, mapping);
    if slots.is_empty() {
        return DriftReport::default();
    }
    let present: FxHashSet<(PageToken, PathId)> = page_stream(doc)
        .into_iter()
        .map(|t| (t.token, t.path))
        .collect();
    let misaligned = slots
        .iter()
        .filter(|m| !present.contains(&(m.token, m.path)))
        .count();
    DriftReport {
        slots: slots.len(),
        misaligned,
    }
}

/// §III-E abort test: a partial matching can still exist only if the
/// required atomic types have annotated witnesses in the sample. "For
/// each of the missing parts … there is still some untreated token
/// annotated by that type." One uncovered type is tolerated because
/// the matching step can complete a single missing required type by
/// gap elimination (structure finishing what annotations started).
pub fn partial_match_possible(src: &SourceTokens, sod: &Sod) -> bool {
    let canon = canonicalize(sod);
    let required: Vec<&str> = required_types(canon.root());
    if required.is_empty() {
        return true;
    }
    let mut seen: FxHashMap<&str, bool> = required.iter().map(|&t| (t, false)).collect();
    for page in &src.pages {
        for occ in &page.occs {
            if let Some(ann) = &occ.annotation {
                if let Some(flag) = seen.get_mut(ann.as_str()) {
                    *flag = true;
                }
            }
        }
    }
    seen.values().filter(|&&v| !v).count() <= 1
}

fn required_types(node: &SodNode) -> Vec<&str> {
    let mut out = Vec::new();
    fn walk<'a>(node: &'a SodNode, out: &mut Vec<&'a str>) {
        match node {
            SodNode::Entity {
                type_name,
                multiplicity,
            } => {
                if !multiplicity.is_optional() {
                    out.push(type_name);
                }
            }
            SodNode::Tuple { children, .. } => children.iter().for_each(|c| walk(c, out)),
            SodNode::Set {
                child,
                multiplicity,
            } => {
                if !multiplicity.is_optional() {
                    walk(child, out);
                }
            }
            SodNode::Disjunction(..) => {} // either side may satisfy it
        }
    }
    walk(node, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use crate::roles::{differentiate, DiffConfig};
    use crate::template::build_template;
    use crate::tokens::SourceTokens;
    use objectrunner_html::{parse, NodeKind};
    use objectrunner_sod::{Multiplicity, SodBuilder};
    use std::collections::HashMap as Map;

    /// Annotate text nodes round-robin with the given type names
    /// (one per record column).
    fn page_with_columns(records: usize, columns: &[&str], annotate_every: usize) -> AnnotatedPage {
        let recs: String = (0..records)
            .map(|i| {
                let cells: String = columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| format!("<div>{col} value {i} {c}</div>"))
                    .collect();
                format!("<li>{cells}</li>")
            })
            .collect();
        let mut page = AnnotatedPage {
            doc: parse(&format!("<body><ul>{recs}</ul></body>")),
            annotations: Map::new(),
        };
        let texts: Vec<_> = page
            .doc
            .descendants(page.doc.root())
            .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .collect();
        for (idx, t) in texts.iter().enumerate() {
            let col = idx % columns.len();
            let rec = idx / columns.len();
            if rec.is_multiple_of(annotate_every) {
                page.annotations.insert(
                    *t,
                    vec![Annotation {
                        type_name: columns[col].to_owned(),
                        confidence: 0.9,
                    }],
                );
            }
        }
        page
    }

    fn tree_for(pages: &[AnnotatedPage]) -> (SourceTokens, crate::template::TemplateTree) {
        let mut src = SourceTokens::from_pages(pages);
        let outcome = differentiate(&mut src, &DiffConfig::default(), |_, _| false);
        let tree = build_template(&src, &outcome.analysis);
        (src, tree)
    }

    #[test]
    fn flat_sod_matches_record_node() {
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2, 4]
            .iter()
            .map(|&n| page_with_columns(n, &["artist", "date"], 1))
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("full match");
        assert!(mapping.record_repeats);
        assert_eq!(mapping.record.atomics.len(), 2);
        assert!(!mapping.record.has_merged_fields());
    }

    #[test]
    fn incomplete_annotations_still_match() {
        // Only every 3rd record annotated — majority votes still map
        // the gaps.
        let pages: Vec<AnnotatedPage> = [3usize, 3, 6, 3]
            .iter()
            .map(|&n| page_with_columns(n, &["artist", "date"], 3))
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("full match");
        assert_eq!(mapping.record.atomics.len(), 2);
    }

    #[test]
    fn missing_required_type_is_an_error() {
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2]
            .iter()
            .map(|&n| page_with_columns(n, &["artist"], 1))
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .entity("venue", Multiplicity::One)
            .build();
        let err = match_sod(&tree, &sod).expect_err("cannot match");
        match err {
            MatchError::MissingRequired(types) => {
                assert!(types.contains(&"price".to_owned()) || types.contains(&"venue".to_owned()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_optional_type_is_tolerated() {
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2]
            .iter()
            .map(|&n| page_with_columns(n, &["artist", "date"], 1))
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .entity("price", Multiplicity::Optional)
            .build();
        let mapping = match_sod(&tree, &sod).expect("match without optional");
        assert_eq!(mapping.record.missing_optional, vec!["price".to_owned()]);
    }

    #[test]
    fn elimination_completes_single_unannotated_required_gap() {
        // Three columns, but only two types are ever annotated; the
        // third (price) must be assigned to the remaining data gap.
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2, 3]
            .iter()
            .map(|&n| page_with_columns(n, &["artist", "date", "price"], 1))
            .map(|mut p| {
                // Strip the "price" annotations to simulate a type with
                // no recognizer coverage.
                for anns in p.annotations.values_mut() {
                    anns.retain(|a| a.type_name != "price");
                }
                p.annotations.retain(|_, v| !v.is_empty());
                p
            })
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("album")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("elimination completes");
        assert_eq!(mapping.record.atomics.len(), 3);
        assert!(!mapping.record.has_merged_fields());
    }

    #[test]
    fn shared_text_node_produces_merged_fields() {
        // Artist and date share one <div>: both types annotate the
        // same gap, so the mapping merges them.
        let mk = |n: usize| {
            let recs: String = (0..n)
                .map(|i| {
                    format!(
                        "<li><div>Artist{i} on May {}, 2010</div><div>${i}.99</div></li>",
                        i + 1
                    )
                })
                .collect();
            let mut page = AnnotatedPage {
                doc: parse(&format!("<body><ul>{recs}</ul></body>")),
                annotations: Map::new(),
            };
            let texts: Vec<_> = page
                .doc
                .descendants(page.doc.root())
                .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                .collect();
            for (idx, t) in texts.iter().enumerate() {
                if idx % 2 == 0 {
                    // Both artist and date in the combined cell.
                    page.annotations.insert(
                        *t,
                        vec![
                            Annotation {
                                type_name: "artist".into(),
                                confidence: 0.9,
                            },
                            Annotation {
                                type_name: "date".into(),
                                confidence: 0.8,
                            },
                        ],
                    );
                } else {
                    page.annotations.insert(
                        *t,
                        vec![Annotation {
                            type_name: "price".into(),
                            confidence: 0.9,
                        }],
                    );
                }
            }
            page
        };
        let pages: Vec<AnnotatedPage> = vec![mk(2), mk(3), mk(2), mk(4)];
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("match with merged fields");
        assert!(mapping.record.has_merged_fields());
    }

    #[test]
    fn drift_score_is_zero_on_template_pages_and_one_on_redesigns() {
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2, 4]
            .iter()
            .map(|&n| page_with_columns(n, &["artist", "date"], 1))
            .collect();
        let (_, tree) = tree_for(&pages);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("full match");
        assert!(
            !wrapper_slots(&tree, &mapping).is_empty(),
            "mapping yields slots"
        );

        // Unseen page, same template: every slot aligns.
        let same = parse(
            "<body><ul><li><div>artist value 9 0</div><div>date value 9 1</div></li></ul></body>",
        );
        let report = drift_score(&tree, &mapping, &same);
        assert_eq!(report.misaligned, 0);
        assert_eq!(report.score(), 0.0);

        // Redesigned container (<ol>): every tag path shifts, nothing
        // aligns.
        let redesigned = parse(
            "<body><ol><li><div>artist value 9 0</div><div>date value 9 1</div></li></ol></body>",
        );
        let report = drift_score(&tree, &mapping, &redesigned);
        assert_eq!(report.misaligned, report.slots);
        assert_eq!(report.score(), 1.0);

        // Partial drift (cells renamed <div> → <p>): record separators
        // still align, cell separators do not.
        let partial =
            parse("<body><ul><li><p>artist value 9 0</p><p>date value 9 1</p></li></ul></body>");
        let report = drift_score(&tree, &mapping, &partial);
        assert!(report.misaligned > 0 && report.misaligned < report.slots);
        let s = report.score();
        assert!(s > 0.0 && s < 1.0, "partial drift score {s}");
    }

    #[test]
    fn partial_match_test_checks_annotation_presence() {
        let pages: Vec<AnnotatedPage> = [2usize, 3, 2]
            .iter()
            .map(|&n| page_with_columns(n, &["artist"], 1))
            .collect();
        let src = SourceTokens::from_pages(&pages);
        let ok_sod = SodBuilder::tuple("a")
            .entity("artist", Multiplicity::One)
            .build();
        assert!(partial_match_possible(&src, &ok_sod));
        // One uncovered required type is tolerated (gap elimination
        // can complete it); two are not.
        let one_missing = SodBuilder::tuple("a")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .build();
        assert!(partial_match_possible(&src, &one_missing));
        let bad_sod = SodBuilder::tuple("a")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .entity("venue", Multiplicity::One)
            .build();
        assert!(!partial_match_possible(&src, &bad_sod));
        let optional_sod = SodBuilder::tuple("a")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::Optional)
            .build();
        assert!(partial_match_possible(&src, &optional_sod));
    }
}
