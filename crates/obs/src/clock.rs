//! Time sources for the observability layer.
//!
//! Everything in `objectrunner-obs` reads time through a [`Clock`]
//! handle instead of calling `Instant::now`/`SystemTime::now`
//! directly, for two reasons:
//!
//! * **Monotonicity** — span timestamps and the serve daemon's uptime
//!   must never go backwards, so the default source anchors one
//!   `Instant` at construction and reports microseconds since that
//!   anchor.
//! * **Testability** — uptime and last-activity reporting are
//!   impossible to assert against a real clock; tests inject a
//!   [`FakeClock`] and advance it by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A source of monotonic and wall-clock time, in microseconds.
pub trait ClockSource: Send + Sync + std::fmt::Debug {
    /// Microseconds on a monotonic axis (origin unspecified but fixed
    /// for the life of the source; never decreases).
    fn monotonic_micros(&self) -> u64;
    /// Microseconds since the Unix epoch (may jump if the system
    /// clock is adjusted; display only, never used for durations).
    fn wall_unix_micros(&self) -> u64;
}

/// A cheaply clonable handle to a [`ClockSource`].
#[derive(Clone, Debug)]
pub struct Clock(Arc<dyn ClockSource>);

impl Clock {
    /// The real clock: monotonic micros since construction, wall time
    /// from the system clock.
    pub fn system() -> Clock {
        Clock(Arc::new(SystemClock::new()))
    }

    /// A hand-advanced clock for tests. The returned handle and the
    /// `Arc<FakeClock>` share state: advance the latter, observe
    /// through the former.
    pub fn fake() -> (Clock, Arc<FakeClock>) {
        let fake = Arc::new(FakeClock::default());
        (Clock(Arc::clone(&fake) as Arc<dyn ClockSource>), fake)
    }

    /// Wrap an arbitrary source.
    pub fn from_source(source: Arc<dyn ClockSource>) -> Clock {
        Clock(source)
    }

    pub fn monotonic_micros(&self) -> u64 {
        self.0.monotonic_micros()
    }

    pub fn wall_unix_micros(&self) -> u64 {
        self.0.wall_unix_micros()
    }
}

/// The default source: `Instant` anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    anchor: Instant,
}

impl SystemClock {
    pub fn new() -> SystemClock {
        SystemClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl ClockSource for SystemClock {
    fn monotonic_micros(&self) -> u64 {
        self.anchor.elapsed().as_micros() as u64
    }

    fn wall_unix_micros(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }
}

/// A deterministic, hand-advanced clock for tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    mono: AtomicU64,
    wall: AtomicU64,
}

impl FakeClock {
    /// Advance both axes by `micros`.
    pub fn advance_micros(&self, micros: u64) {
        self.mono.fetch_add(micros, Ordering::SeqCst);
        self.wall.fetch_add(micros, Ordering::SeqCst);
    }

    /// Pin the wall clock to an absolute Unix-micros value (the
    /// monotonic axis is unaffected — exactly like a real NTP step).
    pub fn set_wall_unix_micros(&self, micros: u64) {
        self.wall.store(micros, Ordering::SeqCst);
    }
}

impl ClockSource for FakeClock {
    fn monotonic_micros(&self) -> u64 {
        self.mono.load(Ordering::SeqCst)
    }

    fn wall_unix_micros(&self) -> u64 {
        self.wall.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = Clock::system();
        let a = clock.monotonic_micros();
        let b = clock.monotonic_micros();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_by_hand_only() {
        let (clock, fake) = Clock::fake();
        assert_eq!(clock.monotonic_micros(), 0);
        fake.advance_micros(1_500);
        assert_eq!(clock.monotonic_micros(), 1_500);
        assert_eq!(clock.wall_unix_micros(), 1_500);
        fake.set_wall_unix_micros(1_000_000);
        assert_eq!(clock.wall_unix_micros(), 1_000_000);
        assert_eq!(
            clock.monotonic_micros(),
            1_500,
            "mono unaffected by wall step"
        );
    }
}
