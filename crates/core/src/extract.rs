//! Applying an inferred wrapper to pages (paper step 2-d: "use τi to
//! extract all the instances of s from Si").
//!
//! Extraction is purely structural: the wrapper's separator matchers
//! (token value + DOM path, in per-instance order) are located on each
//! page by a greedy left-to-right scan; the text between consecutive
//! separators yields the mapped attribute values. "Once the wrapper is
//! constructed, the time required to extract the data was negligible."

use crate::matching::{GapRef, SetMapping, SodMapping, TupleMapping};
use crate::template::{NodeMultiplicity, TemplateTree};
use objectrunner_html::{node_path_id, token_stream, Document, PageToken, PathId};
use objectrunner_sod::Instance;

/// One token of an extraction-side page stream. Token and path are
/// interned, so comparing against a template matcher is two integer
/// compares.
#[derive(Debug, Clone, Copy)]
pub struct StreamTok {
    pub token: PageToken,
    pub path: PathId,
}

/// Flatten a page for extraction.
pub fn page_stream(doc: &Document) -> Vec<StreamTok> {
    token_stream(doc, doc.root())
        .into_iter()
        .map(|(token, node)| StreamTok {
            path: node_path_id(doc, node),
            token,
        })
        .collect()
}

/// Extract all objects from one page.
pub fn extract_page(
    tree: &TemplateTree,
    mapping: &SodMapping,
    object_name: &str,
    doc: &Document,
) -> Vec<Instance> {
    let stream = page_stream(doc);
    let anchor = mapping.record.anchor;
    let instances = match_node_instances(tree, anchor, &stream, 0, stream.len());
    instances
        .iter()
        .map(|positions| extract_tuple(tree, &mapping.record, object_name, &stream, positions))
        .collect()
}

/// Find the instances of template node `node` within `[lo, hi)` of the
/// stream: each instance is the ordered positions of the node's
/// matchers. Instances are found by a greedy left-to-right scan and
/// never overlap.
pub fn match_node_instances(
    tree: &TemplateTree,
    node: usize,
    stream: &[StreamTok],
    lo: usize,
    hi: usize,
) -> Vec<Vec<usize>> {
    let matchers = &tree.nodes[node].matchers;
    if matchers.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut pos = lo;
    while pos < hi {
        // Find the next start (first matcher).
        let Some(start) = find_matcher(stream, &matchers[0], pos, hi) else {
            break;
        };
        // Chain the remaining matchers, bounded by the next start
        // token so a malformed record cannot swallow its successor.
        let bound = find_matcher(stream, &matchers[0], start + 1, hi).unwrap_or(hi);
        let mut positions = vec![start];
        let mut cur = start + 1;
        let mut complete = true;
        for m in &matchers[1..] {
            match find_matcher(stream, m, cur, bound.max(cur)) {
                Some(p) => {
                    positions.push(p);
                    cur = p + 1;
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            pos = positions.last().copied().expect("non-empty") + 1;
            out.push(positions);
        } else {
            pos = start + 1;
        }
    }
    out
}

fn find_matcher(
    stream: &[StreamTok],
    matcher: &crate::template::Matcher,
    lo: usize,
    hi: usize,
) -> Option<usize> {
    (lo..hi.min(stream.len()))
        .find(|&i| stream[i].token == matcher.token && stream[i].path == matcher.path)
}

/// Extract one tuple instance given its anchor matcher positions.
fn extract_tuple(
    tree: &TemplateTree,
    mapping: &TupleMapping,
    name: &str,
    stream: &[StreamTok],
    anchor_positions: &[usize],
) -> Instance {
    let region = (
        anchor_positions.first().copied().unwrap_or(0),
        anchor_positions.last().copied().unwrap_or(0) + 1,
    );

    // Pre-match descendant node instances used by this mapping, so
    // their token spans can be excluded from surrounding gap values.
    // Descendant matchers can be ambiguous (ordinal-differentiated
    // roles share token and path), so each node is searched only
    // inside the anchor gap that hosts it.
    let mut descendant_spans: Vec<(usize, usize)> = Vec::new();
    let mut node_instances: Vec<(usize, Vec<Vec<usize>>)> = Vec::new();
    let mut wanted_nodes: Vec<usize> = mapping
        .atomics
        .iter()
        .map(|&(_, g)| g.node)
        .filter(|&n| n != mapping.anchor)
        .collect();
    for set in &mapping.sets {
        if let SetMapping::Repeated { set_node, .. } = set {
            wanted_nodes.push(*set_node);
        }
    }
    wanted_nodes.sort_unstable();
    wanted_nodes.dedup();
    for node in wanted_nodes {
        let (lo, hi) = match hosting_gap(tree, mapping.anchor, node) {
            Some(gap_idx) if gap_idx + 1 < anchor_positions.len() => {
                (anchor_positions[gap_idx] + 1, anchor_positions[gap_idx + 1])
            }
            _ => region,
        };
        let insts = match_node_instances(tree, node, stream, lo, hi);
        for inst in &insts {
            if let (Some(&s), Some(&e)) = (inst.first(), inst.last()) {
                descendant_spans.push((s, e));
            }
        }
        node_instances.push((node, insts));
    }

    let mut fields: Vec<Instance> = Vec::new();

    for (type_name, gap) in &mapping.atomics {
        let value = if gap.node == mapping.anchor {
            gap_value(stream, anchor_positions, gap.gap, &descendant_spans)
        } else {
            // Value lives in a descendant node's gap: use its first
            // (only) instance within the region.
            node_instances
                .iter()
                .find(|(n, _)| *n == gap.node)
                .and_then(|(_, insts)| insts.first())
                .map(|positions| gap_value(stream, positions, gap.gap, &[]))
                .unwrap_or_default()
        };
        if !value.is_empty() {
            fields.push(Instance::atomic(type_name, &value));
        }
    }

    for set in &mapping.sets {
        match set {
            SetMapping::Repeated { set_node, element } => {
                let empty = Vec::new();
                let insts = node_instances
                    .iter()
                    .find(|(n, _)| *n == *set_node)
                    .map(|(_, i)| i)
                    .unwrap_or(&empty);
                let mut items = Vec::new();
                for positions in insts {
                    let item = extract_tuple(tree, element, "element", stream, positions);
                    // Unwrap single-field element tuples to their value.
                    match item {
                        Instance::Tuple { fields, .. } if fields.len() == 1 => {
                            items.push(fields.into_iter().next().expect("len checked"));
                        }
                        other => items.push(other),
                    }
                }
                fields.push(Instance::Set(items));
            }
            SetMapping::Collapsed { type_name, gap } => {
                let value = if gap.node == mapping.anchor {
                    gap_value(stream, anchor_positions, gap.gap, &descendant_spans)
                } else {
                    node_instances
                        .iter()
                        .find(|(n, _)| *n == gap.node)
                        .and_then(|(_, insts)| insts.first())
                        .map(|positions| gap_value(stream, positions, gap.gap, &[]))
                        .unwrap_or_default()
                };
                let items = if value.is_empty() {
                    Vec::new()
                } else {
                    vec![Instance::atomic(type_name, &value)]
                };
                fields.push(Instance::Set(items));
            }
        }
    }

    Instance::Tuple {
        name: name.to_owned(),
        fields,
    }
}

/// The gap of `anchor` whose hosted subtree contains `node` — used to
/// bound descendant matching, since descendant matchers can be
/// ambiguous (ordinal-differentiated roles share token and path).
pub fn hosting_gap(tree: &TemplateTree, anchor: usize, node: usize) -> Option<usize> {
    fn subtree_contains(tree: &TemplateTree, root: usize, node: usize) -> bool {
        if root == node {
            return true;
        }
        tree.nodes[root]
            .children
            .iter()
            .any(|&c| subtree_contains(tree, c, node))
    }
    for (j, gap) in tree.nodes[anchor].gaps.iter().enumerate() {
        if gap
            .children
            .iter()
            .any(|&c| subtree_contains(tree, c, node))
        {
            return Some(j);
        }
    }
    None
}

/// The words between matcher positions `gap` and `gap+1` of a matched
/// instance (no exclusions) — used by SOD-free consumers (e.g. the
/// ExAlg baseline) that extract every field of a template node.
pub fn instance_gap_text(stream: &[StreamTok], positions: &[usize], gap: usize) -> String {
    gap_value(stream, positions, gap, &[])
}

/// The words between matcher positions `gap` and `gap+1`, excluding
/// tokens inside `excluded` spans.
fn gap_value(
    stream: &[StreamTok],
    positions: &[usize],
    gap: usize,
    excluded: &[(usize, usize)],
) -> String {
    if gap + 1 >= positions.len() {
        return String::new();
    }
    let (s, e) = (positions[gap], positions[gap + 1]);
    let mut words: Vec<&str> = Vec::new();
    for (i, tok) in stream.iter().enumerate().take(e).skip(s + 1) {
        if excluded.iter().any(|&(xs, xe)| xs <= i && i <= xe) {
            continue;
        }
        if let PageToken::Word(w) = &tok.token {
            words.push(w.as_str());
        }
    }
    words.join(" ")
}

/// Helper used by tests and the pipeline: a [`GapRef`] rendered as a
/// human-readable position.
pub fn describe_gap(tree: &TemplateTree, gap: GapRef) -> String {
    let node = &tree.nodes[gap.node];
    let left = node
        .matchers
        .get(gap.gap)
        .map(|m| m.token.render())
        .unwrap_or_default();
    let right = node
        .matchers
        .get(gap.gap + 1)
        .map(|m| m.token.render())
        .unwrap_or_default();
    let mult = match node.multiplicity {
        NodeMultiplicity::One => "1",
        NodeMultiplicity::Optional => "?",
        NodeMultiplicity::Repeating => "*",
    };
    format!("node{}[{mult}] {left}·{right}", gap.node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use crate::matching::match_sod;
    use crate::roles::{differentiate, DiffConfig};
    use crate::template::build_template;
    use crate::tokens::SourceTokens;
    use objectrunner_html::{parse, NodeKind};
    use objectrunner_sod::{Multiplicity, SodBuilder};
    use std::collections::HashMap as Map;

    /// Build concert-style pages and annotate alternating columns.
    fn concert_page(artists: &[&str]) -> AnnotatedPage {
        let recs: String = artists
            .iter()
            .enumerate()
            .map(|(i, a)| format!("<li><div>{a}</div><div>May {}, 2010</div></li>", i + 1))
            .collect();
        let mut page = AnnotatedPage {
            doc: parse(&format!("<body><ul>{recs}</ul></body>")),
            annotations: Map::new(),
        };
        let texts: Vec<_> = page
            .doc
            .descendants(page.doc.root())
            .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .collect();
        for (idx, t) in texts.iter().enumerate() {
            let type_name = if idx % 2 == 0 { "artist" } else { "date" };
            page.annotations.insert(
                *t,
                vec![Annotation {
                    type_name: type_name.to_owned(),
                    confidence: 0.9,
                }],
            );
        }
        page
    }

    fn wrapper_parts(pages: &[AnnotatedPage]) -> (TemplateTree, SodMapping) {
        let mut src = SourceTokens::from_pages(pages);
        let outcome = differentiate(&mut src, &DiffConfig::default(), |_, _| false);
        let tree = build_template(&src, &outcome.analysis);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build();
        let mapping = match_sod(&tree, &sod).expect("SOD matches");
        (tree, mapping)
    }

    #[test]
    fn extracts_all_records_from_unseen_page() {
        let sample = vec![
            concert_page(&["A", "B"]),
            concert_page(&["C", "D", "E"]),
            concert_page(&["F"]),
            concert_page(&["G", "H"]),
        ];
        let (tree, mapping) = wrapper_parts(&sample);
        // A page never seen during induction:
        let unseen = parse(
            "<body><ul><li><div>Metallica</div><div>May 9, 2011</div></li>\
             <li><div>Muse</div><div>May 10, 2011</div></li></ul></body>",
        );
        let objects = extract_page(&tree, &mapping, "concert", &unseen);
        assert_eq!(objects.len(), 2);
        let mut artists = Vec::new();
        objects[0].values_of_type("artist", &mut artists);
        objects[1].values_of_type("artist", &mut artists);
        assert_eq!(artists, vec!["Metallica", "Muse"]);
        let mut dates = Vec::new();
        objects[0].values_of_type("date", &mut dates);
        assert_eq!(dates, vec!["May 9, 2011"]);
    }

    #[test]
    fn multiword_values_are_preserved() {
        let sample = vec![
            concert_page(&["The Rolling Stones", "B"]),
            concert_page(&["C C C", "D"]),
            concert_page(&["E", "F"]),
        ];
        let (tree, mapping) = wrapper_parts(&sample);
        let unseen = parse(
            "<body><ul><li><div>B.B King Blues and Grill</div>\
             <div>June 19, 2010</div></li></ul></body>",
        );
        let objects = extract_page(&tree, &mapping, "concert", &unseen);
        assert_eq!(objects.len(), 1);
        let mut artists = Vec::new();
        objects[0].values_of_type("artist", &mut artists);
        assert_eq!(artists, vec!["B.B King Blues and Grill"]);
    }

    #[test]
    fn empty_page_extracts_nothing() {
        let sample = vec![
            concert_page(&["A", "B"]),
            concert_page(&["C"]),
            concert_page(&["D", "E"]),
        ];
        let (tree, mapping) = wrapper_parts(&sample);
        let unseen = parse("<body><p>maintenance notice</p></body>");
        assert!(extract_page(&tree, &mapping, "concert", &unseen).is_empty());
    }

    #[test]
    fn matcher_scan_does_not_overlap_records() {
        let sample = vec![
            concert_page(&["A", "B", "C"]),
            concert_page(&["D"]),
            concert_page(&["E", "F"]),
        ];
        let (tree, mapping) = wrapper_parts(&sample);
        let unseen = parse(
            "<body><ul>\
             <li><div>One</div><div>May 1, 2012</div></li>\
             <li><div>Two</div><div>May 2, 2012</div></li>\
             <li><div>Three</div><div>May 3, 2012</div></li>\
             </ul></body>",
        );
        let objects = extract_page(&tree, &mapping, "concert", &unseen);
        assert_eq!(objects.len(), 3);
    }

    #[test]
    fn malformed_record_is_skipped_not_merged() {
        let sample = vec![
            concert_page(&["A", "B"]),
            concert_page(&["C"]),
            concert_page(&["D", "E"]),
        ];
        let (tree, mapping) = wrapper_parts(&sample);
        // Middle record lacks its date <div>; its values must not leak
        // into the next record.
        let unseen = parse(
            "<body><ul>\
             <li><div>One</div><div>May 1, 2012</div></li>\
             <li><div>Broken</div></li>\
             <li><div>Three</div><div>May 3, 2012</div></li>\
             </ul></body>",
        );
        let objects = extract_page(&tree, &mapping, "concert", &unseen);
        let mut artists = Vec::new();
        for o in &objects {
            o.values_of_type("artist", &mut artists);
        }
        assert!(artists.contains(&"One"));
        assert!(artists.contains(&"Three"));
        assert!(!artists.contains(&"Broken May 3, 2012"));
    }

    #[test]
    fn gap_value_excludes_marked_spans() {
        let doc = parse("<div>a b c</div>");
        let stream = page_stream(&doc);
        // positions: 0=<div> 1=a 2=b 3=c 4=</div>
        let v = gap_value(&stream, &[0, 4], 0, &[]);
        assert_eq!(v, "a b c");
        let v2 = gap_value(&stream, &[0, 4], 0, &[(2, 2)]);
        assert_eq!(v2, "a c");
    }

    #[test]
    fn page_stream_paths_match_sample_side() {
        let doc = parse("<body><ul><li>x</li></ul></body>");
        let stream = page_stream(&doc);
        let li = stream
            .iter()
            .find(|t| t.token == PageToken::Open("li".into()))
            .expect("li");
        // The tolerant parser does not synthesize an <html> element.
        assert_eq!(li.path.render(), "body/ul/li");
    }
}
