//! The store itself: open, ingest, get, query, compact, status.
//!
//! In-memory state is deliberately small — a `BTreeMap` from identity
//! key to the live record's location on disk. Records are read back on
//! demand (get/query/fusion), so the store's memory footprint tracks
//! object *count*, not object *bytes*, matching the streaming
//! extraction path's memory discipline.
//!
//! Ingest stages a batch per identity key, fuses repeat sightings via
//! `core::dedup::fuse`, and appends the dirty records **in key order**
//! — so the bytes written are a function of the batch's contents, not
//! of extraction scheduling. Appends fsync before the manifest
//! commits; a crash in between leaves a torn tail that open truncates.

use crate::manifest::{Manifest, SegmentMeta, MANIFEST_FILE};
use crate::query::{Query, QueryResult};
use crate::record::{AttrProvenance, ObjectRecord};
use crate::segment::{
    encode_frame, is_segment_file_name, segment_file_name, verify_payload, FrameLoc, SEGMENT_HEADER,
};
use crate::{atom_count, ObjStoreError};
use objectrunner_core::dedup::{fuse, object_key_checked, KeySkipReason};
use objectrunner_obs::{Obs, Span, LATENCY_BUCKETS_MICROS};
use objectrunner_sod::Instance;
use objectrunner_store::{fnv64, Fnv64};
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Bound;
use std::path::{Path, PathBuf};

/// Default segment roll size. Small enough that compaction rewrites in
/// bounded chunks, large enough that a typical crawl fits in a few
/// files.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Where a live record lives on disk.
#[derive(Debug, Clone)]
struct LiveEntry {
    /// Index into `Manifest::segments`.
    seg: usize,
    loc: FrameLoc,
    version: u64,
    /// Index into `ObjectStore::domains`.
    domain: u32,
}

/// One extracted object offered to [`ObjectStore::ingest`].
#[derive(Debug, Clone)]
pub struct IngestObject {
    pub instance: Instance,
    /// Page the object was extracted from (provenance).
    pub page_id: String,
}

/// Batch-level provenance shared by every object of one extraction.
#[derive(Debug, Clone)]
pub struct IngestContext<'a> {
    /// Source (site) name.
    pub source: &'a str,
    /// Domain name the wrapper extracts.
    pub domain: &'a str,
    /// Extracting wrapper's revision.
    pub wrapper_revision: u64,
    /// Repair lineage: the revision this wrapper was repaired from.
    pub repaired_from: Option<u64>,
    /// Extraction wall-clock time (micros since epoch).
    pub extracted_unix_micros: u64,
    /// Extracting wrapper's confidence (induction quality).
    pub confidence: f64,
    /// Identity-key attributes (`Domain::key_attributes`).
    pub key_attrs: &'a [&'a str],
}

/// What one ingest batch did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Objects offered.
    pub ingested: u64,
    /// First-sighting objects written at version 1.
    pub new_objects: u64,
    /// Existing objects that gained attributes (new version written).
    pub fused: u64,
    /// Offers that collided with an existing identity key.
    pub duplicates: u64,
    /// Offers with no identity key (not stored).
    pub skipped: u64,
    /// Skip counts by missing key attribute.
    pub skipped_missing_attr: BTreeMap<String, u64>,
    /// Records appended to disk.
    pub records_written: u64,
}

/// What one compaction did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Live records carried into the new generation.
    pub live_records: u64,
    /// Superseded versions dropped.
    pub dropped_records: u64,
    pub segments_before: usize,
    pub segments_after: usize,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

/// A point-in-time summary for `store-status` / `status`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStatus {
    pub generation: u64,
    pub segments: usize,
    pub live_objects: u64,
    /// Superseded versions still occupying segment bytes.
    pub dead_records: u64,
    /// Committed segment bytes.
    pub bytes: u64,
    /// Live objects per domain.
    pub per_domain: BTreeMap<String, u64>,
    pub ingested: u64,
    pub new_objects: u64,
    pub fused: u64,
    pub duplicates: u64,
    pub skipped: u64,
    pub compactions: u64,
    /// Wall time of the last compaction in this process (not
    /// persisted — manifest bytes stay a pure function of history).
    pub last_compaction_unix_micros: Option<u64>,
}

/// The durable object store. Not internally synchronized — callers
/// (the serve layer) hold it behind their own lock, which is also what
/// keeps append order deterministic.
pub struct ObjectStore {
    dir: PathBuf,
    max_segment_bytes: u64,
    obs: Obs,
    manifest: Manifest,
    live: BTreeMap<String, LiveEntry>,
    domains: Vec<String>,
    domain_live: Vec<u64>,
    dead_records: u64,
    last_compaction_unix_micros: Option<u64>,
}

impl ObjectStore {
    /// Open (or create) a store with default segment sizing.
    pub fn open(dir: impl Into<PathBuf>, obs: Obs) -> Result<ObjectStore, ObjStoreError> {
        ObjectStore::open_with(dir, DEFAULT_MAX_SEGMENT_BYTES, obs)
    }

    /// Open with an explicit segment roll size (tests use tiny ones to
    /// exercise multi-segment stores cheaply).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        max_segment_bytes: u64,
        obs: Obs,
    ) -> Result<ObjectStore, ObjStoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut span = obs.trace("objstore.open");
        let manifest = Manifest::load(&dir)?.unwrap_or_else(Manifest::fresh);

        let mut store = ObjectStore {
            dir,
            max_segment_bytes,
            obs,
            manifest,
            live: BTreeMap::new(),
            domains: Vec::new(),
            domain_live: Vec::new(),
            dead_records: 0,
            last_compaction_unix_micros: None,
        };
        store.sweep_uncommitted_files()?;
        for seg in 0..store.manifest.segments.len() {
            store.load_segment(seg)?;
        }
        store.recount_domains();
        span.attr_u64("segments", store.manifest.segments.len() as u64);
        span.attr_u64("live_objects", store.live.len() as u64);
        span.finish();
        store.publish_gauges();
        Ok(store)
    }

    /// Delete files the manifest does not own: `MANIFEST.tmp` and
    /// segment files of other generations (a crashed compaction) or
    /// never committed (a crashed first append).
    fn sweep_uncommitted_files(&self) -> Result<(), ObjStoreError> {
        let owned: Vec<&str> = self
            .manifest
            .segments
            .iter()
            .map(|s| s.file.as_str())
            .collect();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stray = name == format!("{MANIFEST_FILE}.tmp")
                || (is_segment_file_name(name) && !owned.contains(&name));
            if stray {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Verify and index one committed segment: whole-prefix checksum
    /// against the manifest, truncate any torn tail, then scan frames
    /// into the live map (later versions of a key supersede earlier).
    fn load_segment(&mut self, seg: usize) -> Result<(), ObjStoreError> {
        let meta = self.manifest.segments[seg].clone();
        let path = self.dir.join(&meta.file);
        let bytes = fs::read(&path)?;
        let committed = meta.committed_bytes as usize;
        if bytes.len() < committed {
            return Err(ObjStoreError::Corrupt {
                file: meta.file.clone(),
                detail: format!(
                    "file is {} bytes, manifest committed {committed}",
                    bytes.len()
                ),
            });
        }
        if bytes.len() > committed {
            // Torn append from a crash before manifest commit.
            let f = fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(meta.committed_bytes)?;
            f.sync_all()?;
        }
        let data =
            std::str::from_utf8(&bytes[..committed]).map_err(|e| ObjStoreError::Corrupt {
                file: meta.file.clone(),
                detail: format!("committed prefix is not UTF-8: {e}"),
            })?;
        if fnv64(data.as_bytes()) != meta.checksum {
            return Err(ObjStoreError::Corrupt {
                file: meta.file.clone(),
                detail: "committed prefix checksum mismatch".into(),
            });
        }
        let mut records = 0u64;
        let mut updates: Vec<(String, LiveEntry)> = Vec::new();
        let domains = &mut self.domains;
        crate::segment::scan(data, &meta.file, |loc, payload| {
            let record = ObjectRecord::parse(payload, &meta.file)?;
            records += 1;
            updates.push((
                record.key,
                LiveEntry {
                    seg,
                    loc,
                    version: record.version,
                    domain: self_intern(domains, &record.domain),
                },
            ));
            Ok(())
        })?;
        if records != meta.records {
            return Err(ObjStoreError::Corrupt {
                file: meta.file.clone(),
                detail: format!(
                    "{records} records on disk, manifest committed {}",
                    meta.records
                ),
            });
        }
        for (key, entry) in updates {
            if self.live.insert(key, entry).is_some() {
                self.dead_records += 1;
            }
        }
        Ok(())
    }

    fn intern_domain(&mut self, domain: &str) -> u32 {
        self_intern(&mut self.domains, domain)
    }

    fn recount_domains(&mut self) {
        self.domain_live = vec![0; self.domains.len()];
        for entry in self.live.values() {
            self.domain_live[entry.domain as usize] += 1;
        }
    }

    /// Read one live record back from its segment, verifying its frame
    /// checksum.
    fn read_record(&self, entry: &LiveEntry) -> Result<ObjectRecord, ObjStoreError> {
        let meta = &self.manifest.segments[entry.seg];
        let mut f = fs::File::open(self.dir.join(&meta.file))?;
        f.seek(SeekFrom::Start(entry.loc.payload_offset))?;
        let mut buf = vec![0u8; entry.loc.payload_len as usize];
        f.read_exact(&mut buf)?;
        let payload = String::from_utf8(buf).map_err(|e| ObjStoreError::Corrupt {
            file: meta.file.clone(),
            detail: format!("record payload is not UTF-8: {e}"),
        })?;
        verify_payload(&payload, &entry.loc, &meta.file)?;
        ObjectRecord::parse(&payload, &meta.file)
    }

    /// Fetch the live version of an object by identity key.
    pub fn get(&self, key: &str) -> Result<Option<ObjectRecord>, ObjStoreError> {
        match self.live.get(key) {
            None => Ok(None),
            Some(entry) => self.read_record(entry).map(Some),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Ingest one extraction batch. See the module docs for the
    /// staging/fusion/append discipline.
    pub fn ingest(
        &mut self,
        objects: Vec<IngestObject>,
        ctx: &IngestContext<'_>,
        trace: Option<(u64, u64)>,
    ) -> Result<IngestReport, ObjStoreError> {
        let started = self.now_micros();
        let mut span = self.span("objstore.ingest", trace);
        let mut report = IngestReport {
            ingested: objects.len() as u64,
            ..IngestReport::default()
        };

        // Stage the batch per identity key, fusing repeat sightings.
        struct Staged {
            record: ObjectRecord,
            dirty: bool,
            existed: bool,
        }
        let mut staged: BTreeMap<String, Staged> = BTreeMap::new();
        for obj in objects {
            let key = match object_key_checked(&obj.instance, ctx.key_attrs) {
                Ok(k) => k,
                Err(KeySkipReason::MissingKeyAttr { attr }) => {
                    report.skipped += 1;
                    *report.skipped_missing_attr.entry(attr).or_insert(0) += 1;
                    continue;
                }
            };
            let prov = AttrProvenance {
                source: ctx.source.to_owned(),
                page_id: obj.page_id,
                wrapper_revision: ctx.wrapper_revision,
                repaired_from: ctx.repaired_from,
                extracted_unix_micros: ctx.extracted_unix_micros,
                confidence: ctx.confidence,
            };
            let slot = match staged.entry(key.clone()) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => match self.live.get(&key) {
                    Some(entry) => {
                        let record = self.read_record(entry)?;
                        e.insert(Staged {
                            record,
                            dirty: false,
                            existed: true,
                        })
                    }
                    None => {
                        let atoms = obj.instance.flatten().len();
                        report.new_objects += 1;
                        e.insert(Staged {
                            record: ObjectRecord {
                                key,
                                version: 1,
                                seq: 0, // assigned at append
                                domain: ctx.domain.to_owned(),
                                instance: obj.instance,
                                provs: vec![prov],
                                attr_prov: vec![0; atoms],
                            },
                            dirty: true,
                            existed: false,
                        });
                        continue;
                    }
                },
            };
            // The key already names a stored or staged object: fuse.
            report.duplicates += 1;
            if let Some(fusion) = fuse(&slot.record.instance, &obj.instance) {
                report.fused += 1;
                let Instance::Tuple { fields, .. } = &obj.instance else {
                    unreachable!("fuse only succeeds on tuples");
                };
                let prov_ix = slot.record.provs.len() as u32;
                slot.record.provs.push(prov);
                for &fi in &fusion.added_fields {
                    let atoms = atom_count(&fields[fi]);
                    slot.record
                        .attr_prov
                        .extend(std::iter::repeat_n(prov_ix, atoms));
                }
                slot.record.instance = fusion.instance;
                slot.dirty = true;
            }
        }

        // Append dirty staged records in key order.
        let dirty: Vec<ObjectRecord> = staged
            .into_iter()
            .filter(|(_, s)| s.dirty)
            .map(|(_, mut s)| {
                if s.existed {
                    s.record.version += 1;
                }
                s.record.seq = self.manifest.next_seq;
                self.manifest.next_seq += 1;
                s.record
            })
            .collect();
        report.records_written = dirty.len() as u64;
        self.append_records(&dirty)?;

        self.manifest.ingested += report.ingested;
        self.manifest.new_objects += report.new_objects;
        self.manifest.fused += report.fused;
        self.manifest.duplicates += report.duplicates;
        self.manifest.skipped += report.skipped;
        self.manifest.commit(&self.dir)?;

        span.attr_u64("objects", report.ingested);
        span.attr_u64("new_objects", report.new_objects);
        span.attr_u64("fused", report.fused);
        span.attr_u64("duplicates", report.duplicates);
        span.attr_u64("skipped", report.skipped);
        span.finish();
        self.obs
            .counter_add("objectrunner.objstore.ingest.objects", report.ingested);
        self.obs.counter_add(
            "objectrunner.objstore.ingest.new_objects",
            report.new_objects,
        );
        self.obs
            .counter_add("objectrunner.objstore.ingest.fused", report.fused);
        self.obs
            .counter_add("objectrunner.objstore.ingest.duplicates", report.duplicates);
        self.obs
            .counter_add("objectrunner.objstore.ingest.skipped", report.skipped);
        self.record_latency("objectrunner.objstore.ingest.latency_micros", started);
        self.publish_gauges();
        Ok(report)
    }

    /// Append rendered records to the active segment (rolling to a new
    /// one at the size threshold), fsync, and update segment metadata.
    /// The manifest is NOT committed here — callers batch that.
    fn append_records(&mut self, records: &[ObjectRecord]) -> Result<(), ObjStoreError> {
        for record in records {
            let payload = record.render();
            let frame = encode_frame(&payload);
            let seg = self.active_segment_for(frame.len() as u64)?;
            let meta = &self.manifest.segments[seg];
            let path = self.dir.join(&meta.file);
            let mut f = fs::OpenOptions::new().append(true).open(&path)?;
            let payload_offset =
                meta.committed_bytes + frame.find('\n').expect("frame header") as u64 + 1;
            f.write_all(frame.as_bytes())?;
            f.sync_all()?;

            let mut sum = Fnv64::resume(meta.checksum);
            sum.update(frame.as_bytes());
            let domain = self.intern_domain(&record.domain);
            let meta = &mut self.manifest.segments[seg];
            let entry = LiveEntry {
                seg,
                loc: FrameLoc {
                    payload_offset,
                    payload_len: payload.len() as u32,
                    checksum: fnv64(payload.as_bytes()),
                },
                version: record.version,
                domain,
            };
            meta.committed_bytes += frame.len() as u64;
            meta.checksum = sum.finish();
            meta.records += 1;
            if self.live.insert(record.key.clone(), entry).is_some() {
                self.dead_records += 1;
            }
        }
        self.recount_domains();
        Ok(())
    }

    /// Index of the segment the next `frame_len`-byte frame should go
    /// to, creating/rolling files as needed.
    fn active_segment_for(&mut self, frame_len: u64) -> Result<usize, ObjStoreError> {
        let roll = match self.manifest.segments.last() {
            None => true,
            Some(meta) => {
                meta.records > 0 && meta.committed_bytes + frame_len > self.max_segment_bytes
            }
        };
        if roll {
            let index = self
                .manifest
                .segments
                .iter()
                .filter(|s| {
                    s.file
                        .starts_with(&format!("seg-g{:05}-", self.manifest.generation))
                })
                .count() as u64;
            let file = segment_file_name(self.manifest.generation, index);
            let path = self.dir.join(&file);
            let mut f = fs::File::create(&path)?;
            f.write_all(SEGMENT_HEADER.as_bytes())?;
            f.sync_all()?;
            self.manifest.segments.push(SegmentMeta {
                file,
                records: 0,
                committed_bytes: SEGMENT_HEADER.len() as u64,
                checksum: fnv64(SEGMENT_HEADER.as_bytes()),
            });
        }
        Ok(self.manifest.segments.len() - 1)
    }

    /// Run a query. Results come back in identity-key order; see
    /// [`Query`] for cursor semantics.
    pub fn query(
        &self,
        q: &Query,
        trace: Option<(u64, u64)>,
    ) -> Result<QueryResult, ObjStoreError> {
        let started = self.now_micros();
        let mut span = self.span("objstore.query", trace);
        let limit = q.limit.clamp(1, crate::query::MAX_LIMIT);
        let domain_ix: Option<u32> = match &q.domain {
            None => None,
            Some(d) => match self.domains.iter().position(|x| x == d) {
                Some(i) => Some(i as u32),
                // Unknown domain: definitionally empty result.
                None => {
                    span.finish();
                    return Ok(QueryResult {
                        hits: Vec::new(),
                        next_cursor: None,
                        scanned: 0,
                    });
                }
            },
        };
        let range = match &q.cursor {
            None => self.live.range::<String, _>(..),
            Some(c) => self
                .live
                .range::<String, _>((Bound::Excluded(c.clone()), Bound::Unbounded)),
        };
        let mut hits = Vec::new();
        let mut scanned = 0usize;
        let mut next_cursor = None;
        for (key, entry) in range {
            if let Some(d) = domain_ix {
                if entry.domain != d {
                    continue;
                }
            }
            scanned += 1;
            let record = self.read_record(entry)?;
            if q.matches(&record.instance) {
                hits.push(record);
                if hits.len() == limit {
                    next_cursor = Some(key.clone());
                    break;
                }
            }
        }
        span.attr_u64("hits", hits.len() as u64);
        span.attr_u64("scanned", scanned as u64);
        span.finish();
        self.obs
            .counter_add("objectrunner.objstore.query.hits", hits.len() as u64);
        self.record_latency("objectrunner.objstore.query.latency_micros", started);
        Ok(QueryResult {
            hits,
            next_cursor,
            scanned,
        })
    }

    /// Rewrite live records into a fresh generation, dropping
    /// superseded versions, then atomically switch the manifest over
    /// and delete the old generation's files.
    ///
    /// Record bytes are preserved exactly (key, version, seq,
    /// provenance — everything), so reads before and after compaction
    /// are byte-identical; only file placement changes.
    pub fn compact(
        &mut self,
        now_unix_micros: u64,
        trace: Option<(u64, u64)>,
    ) -> Result<CompactReport, ObjStoreError> {
        let started = self.now_micros();
        let mut span = self.span("objstore.compact", trace);
        let mut report = CompactReport {
            live_records: self.live.len() as u64,
            dropped_records: self.dead_records,
            segments_before: self.manifest.segments.len(),
            bytes_before: self
                .manifest
                .segments
                .iter()
                .map(|s| s.committed_bytes)
                .sum(),
            ..CompactReport::default()
        };

        let generation = self.manifest.generation + 1;
        let mut new_segments: Vec<SegmentMeta> = Vec::new();
        let mut new_entries: Vec<(String, LiveEntry)> = Vec::new();
        let mut current: Option<(fs::File, SegmentMeta, Fnv64)> = None;

        for (key, entry) in &self.live {
            let record = self.read_record(entry)?;
            let payload = record.render();
            let frame = encode_frame(&payload);
            let roll = match &current {
                None => true,
                Some((_, meta, _)) => {
                    meta.committed_bytes + frame.len() as u64 > self.max_segment_bytes
                        && meta.records > 0
                }
            };
            if roll {
                if let Some(done) = current.take() {
                    new_segments.push(finish_segment(done)?);
                }
                let file = segment_file_name(generation, new_segments.len() as u64);
                let f = fs::File::create(self.dir.join(format!("{file}.tmp")))?;
                let mut sum = Fnv64::new();
                sum.update(SEGMENT_HEADER.as_bytes());
                let mut f = f;
                f.write_all(SEGMENT_HEADER.as_bytes())?;
                current = Some((
                    f,
                    SegmentMeta {
                        file,
                        records: 0,
                        committed_bytes: SEGMENT_HEADER.len() as u64,
                        checksum: 0, // running state kept in the Fnv64
                    },
                    sum,
                ));
            }
            let (f, meta, sum) = current.as_mut().expect("rolled above");
            let payload_offset =
                meta.committed_bytes + frame.find('\n').expect("frame header") as u64 + 1;
            f.write_all(frame.as_bytes())?;
            sum.update(frame.as_bytes());
            new_entries.push((
                key.clone(),
                LiveEntry {
                    seg: new_segments.len(),
                    loc: FrameLoc {
                        payload_offset,
                        payload_len: payload.len() as u32,
                        checksum: fnv64(payload.as_bytes()),
                    },
                    version: entry.version,
                    domain: entry.domain,
                },
            ));
            meta.committed_bytes += frame.len() as u64;
            meta.records += 1;
        }
        if let Some(done) = current.take() {
            new_segments.push(finish_segment(done)?);
        }

        // Rename tmp files into place, then commit the manifest: a
        // crash before commit leaves strays that open sweeps away.
        for meta in &new_segments {
            fs::rename(
                self.dir.join(format!("{}.tmp", meta.file)),
                self.dir.join(&meta.file),
            )?;
        }
        let old_files: Vec<String> = self
            .manifest
            .segments
            .iter()
            .map(|s| s.file.clone())
            .collect();
        self.manifest.generation = generation;
        self.manifest.compactions += 1;
        self.manifest.segments = new_segments;
        self.manifest.commit(&self.dir)?;
        for file in old_files {
            match fs::remove_file(self.dir.join(&file)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ObjStoreError::Io(e)),
            }
        }

        self.live = new_entries.into_iter().collect();
        self.dead_records = 0;
        self.last_compaction_unix_micros = Some(now_unix_micros);
        report.segments_after = self.manifest.segments.len();
        report.bytes_after = self
            .manifest
            .segments
            .iter()
            .map(|s| s.committed_bytes)
            .sum();

        span.attr_u64("live_records", report.live_records);
        span.attr_u64("dropped_records", report.dropped_records);
        span.attr_u64("bytes_after", report.bytes_after);
        span.finish();
        self.obs
            .counter_add("objectrunner.objstore.compact.runs", 1);
        self.record_latency("objectrunner.objstore.compact.latency_micros", started);
        self.publish_gauges();
        Ok(report)
    }

    /// Point-in-time summary.
    pub fn status(&self) -> StoreStatus {
        let per_domain = self
            .domains
            .iter()
            .zip(&self.domain_live)
            .filter(|(_, &n)| n > 0)
            .map(|(d, &n)| (d.clone(), n))
            .collect();
        StoreStatus {
            generation: self.manifest.generation,
            segments: self.manifest.segments.len(),
            live_objects: self.live.len() as u64,
            dead_records: self.dead_records,
            bytes: self
                .manifest
                .segments
                .iter()
                .map(|s| s.committed_bytes)
                .sum(),
            per_domain,
            ingested: self.manifest.ingested,
            new_objects: self.manifest.new_objects,
            fused: self.manifest.fused,
            duplicates: self.manifest.duplicates,
            skipped: self.manifest.skipped,
            compactions: self.manifest.compactions,
            last_compaction_unix_micros: self.last_compaction_unix_micros,
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn span(&self, name: &'static str, trace: Option<(u64, u64)>) -> Span {
        match trace {
            Some((t, parent)) => self.obs.span_in(t, parent, name),
            None => self.obs.trace(name),
        }
    }

    fn now_micros(&self) -> u64 {
        self.obs.clock().map(|c| c.monotonic_micros()).unwrap_or(0)
    }

    fn record_latency(&self, name: &str, started: u64) {
        let elapsed = self.now_micros().saturating_sub(started);
        self.obs
            .histogram_record(name, &LATENCY_BUCKETS_MICROS, elapsed);
    }

    fn publish_gauges(&self) {
        self.obs
            .gauge_set("objectrunner.objstore.live_objects", self.live.len() as i64);
        self.obs.gauge_set(
            "objectrunner.objstore.dead_records",
            self.dead_records as i64,
        );
        self.obs.gauge_set(
            "objectrunner.objstore.segments",
            self.manifest.segments.len() as i64,
        );
        let bytes: u64 = self
            .manifest
            .segments
            .iter()
            .map(|s| s.committed_bytes)
            .sum();
        self.obs
            .gauge_set("objectrunner.objstore.bytes", bytes as i64);
    }
}

fn self_intern(domains: &mut Vec<String>, domain: &str) -> u32 {
    match domains.iter().position(|d| d == domain) {
        Some(i) => i as u32,
        None => {
            domains.push(domain.to_owned());
            (domains.len() - 1) as u32
        }
    }
}

/// Flush, fsync and finalize one compaction segment: fold the running
/// checksum into its metadata.
fn finish_segment(
    (f, mut meta, sum): (fs::File, SegmentMeta, Fnv64),
) -> Result<SegmentMeta, ObjStoreError> {
    f.sync_all()?;
    meta.checksum = sum.finish();
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SCRATCH: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("objstore-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn concert(artist: &str, date: &str, theater: Option<&str>) -> IngestObject {
        let mut fields = vec![
            Instance::atomic("artist", artist),
            Instance::atomic("date", date),
        ];
        if let Some(t) = theater {
            fields.push(Instance::atomic("theater", t));
        }
        IngestObject {
            instance: Instance::Tuple {
                name: "concert".into(),
                fields,
            },
            page_id: format!("page-{artist}"),
        }
    }

    fn ctx<'a>(source: &'a str, key_attrs: &'a [&'a str]) -> IngestContext<'a> {
        IngestContext {
            source,
            domain: "Concerts",
            wrapper_revision: 1,
            repaired_from: None,
            extracted_unix_micros: 1_700_000_000_000_000,
            confidence: 0.9,
            key_attrs,
        }
    }

    fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    fs::read(e.path()).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn ingest_get_reopen_round_trip() {
        let dir = scratch_dir("roundtrip");
        let key_attrs = ["artist", "date"];
        let mut store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        let report = store
            .ingest(
                vec![
                    concert("Metallica", "May 11, 2010", Some("MSG")),
                    concert("Muse", "May 12, 2010", None),
                ],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        assert_eq!(report.new_objects, 2);
        assert_eq!(report.records_written, 2);

        let status = store.status();
        assert_eq!(status.live_objects, 2);
        assert_eq!(status.per_domain.get("Concerts"), Some(&2));

        // Cold reopen sees the same objects and the same provenance.
        drop(store);
        let store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        assert_eq!(store.len(), 2);
        let q = store.query(&Query::all(), None).unwrap();
        assert_eq!(q.hits.len(), 2);
        for hit in &q.hits {
            assert_eq!(hit.version, 1);
            assert_eq!(hit.attr_prov.len(), hit.instance.flatten().len());
            for i in 0..hit.attr_prov.len() {
                let p = hit.provenance_of(i);
                assert_eq!(p.source, "zvents");
                assert_eq!(p.wrapper_revision, 1);
                assert!((p.confidence - 0.9).abs() < 1e-9);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fusion_writes_new_version_with_merged_provenance() {
        let dir = scratch_dir("fusion");
        let key_attrs = ["artist", "date"];
        let mut store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        store
            .ingest(
                vec![concert("Metallica", "May 11, 2010", None)],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        // Second source knows the theater: fuse, bump version.
        let report = store
            .ingest(
                vec![concert("METALLICA", "may 11 2010", Some("MSG"))],
                &ctx("yellowpages", &key_attrs),
                None,
            )
            .unwrap();
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.fused, 1);
        assert_eq!(report.new_objects, 0);

        let q = store.query(&Query::all(), None).unwrap();
        assert_eq!(q.hits.len(), 1, "one live object");
        let hit = &q.hits[0];
        assert_eq!(hit.version, 2);
        let flat = hit.instance.flatten();
        assert_eq!(flat.len(), 3, "theater fused in");
        // artist+date provenance: first source; theater: second.
        assert_eq!(hit.provenance_of(0).source, "zvents");
        assert_eq!(hit.provenance_of(1).source, "zvents");
        let theater_atom = flat.iter().position(|(t, _)| *t == "theater").unwrap();
        assert_eq!(hit.provenance_of(theater_atom).source, "yellowpages");
        assert_eq!(store.get(&hit.key).unwrap().as_ref(), Some(hit));
        assert_eq!(store.get("no such key").unwrap(), None);

        // A sighting that adds nothing is a pure duplicate: no write.
        let before = store.status().bytes;
        let report = store
            .ingest(
                vec![concert("Metallica", "May 11, 2010", None)],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.fused, 0);
        assert_eq!(report.records_written, 0);
        assert_eq!(store.status().bytes, before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skipped_objects_are_counted_not_stored() {
        let dir = scratch_dir("skip");
        let key_attrs = ["artist", "date", "theater"];
        let mut store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        let report = store
            .ingest(
                vec![
                    concert("Metallica", "May 11, 2010", None), // no theater
                    concert("Muse", "May 12, 2010", Some("MSG")),
                ],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        assert_eq!(report.skipped, 1);
        assert_eq!(report.skipped_missing_attr.get("theater"), Some(&1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.status().skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_is_byte_deterministic_regardless_of_offer_order() {
        // Two stores ingesting the same batch must be byte-identical;
        // staging keys the batch, so offer order inside a batch cannot
        // leak into the files (the thread-count determinism the serve
        // equivalence test relies on).
        let key_attrs = ["artist", "date"];
        let batch = vec![
            concert("Muse", "May 12, 2010", None),
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("AC/DC", "May 13, 2010", None),
        ];
        let mut reversed = batch.clone();
        reversed.reverse();

        let dir_a = scratch_dir("det-a");
        let dir_b = scratch_dir("det-b");
        let mut a = ObjectStore::open(&dir_a, Obs::disabled()).unwrap();
        let mut b = ObjectStore::open(&dir_b, Obs::disabled()).unwrap();
        a.ingest(batch, &ctx("zvents", &key_attrs), None).unwrap();
        b.ingest(reversed, &ctx("zvents", &key_attrs), None)
            .unwrap();
        assert_eq!(dir_bytes(&dir_a), dir_bytes(&dir_b));
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn query_filters_paginate_and_survive_reopen() {
        let dir = scratch_dir("query");
        let key_attrs = ["artist", "date"];
        // Tiny segments force a multi-segment store.
        let mut store = ObjectStore::open_with(&dir, 256, Obs::disabled()).unwrap();
        let batch: Vec<IngestObject> = (0..10)
            .map(|i| concert(&format!("Artist {i:02}"), "May 1, 2020", Some("MSG")))
            .collect();
        store
            .ingest(batch, &ctx("zvents", &key_attrs), None)
            .unwrap();
        assert!(store.status().segments > 1, "tiny segments must roll");

        let q = Query {
            filters: vec![Filter {
                attr: "theater".into(),
                op: crate::query::FilterOp::Eq,
                value: "msg".into(),
            }],
            limit: 4,
            ..Query::all()
        };
        let page1 = store.query(&q, None).unwrap();
        assert_eq!(page1.hits.len(), 4);
        let cursor = page1.next_cursor.clone().expect("more pages");

        // The cursor stays valid across a cold reopen.
        drop(store);
        let store = ObjectStore::open_with(&dir, 256, Obs::disabled()).unwrap();
        let page2 = store
            .query(
                &Query {
                    cursor: Some(cursor),
                    ..q.clone()
                },
                None,
            )
            .unwrap();
        assert_eq!(page2.hits.len(), 4);
        assert!(page1
            .hits
            .iter()
            .all(|h| page2.hits.iter().all(|g| g.key != h.key)));

        // Unknown domain is an empty result, not an error.
        let none = store
            .query(
                &Query {
                    domain: Some("Cars".into()),
                    ..Query::all()
                },
                None,
            )
            .unwrap();
        assert!(none.hits.is_empty() && none.next_cursor.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_dead_versions_and_preserves_reads() {
        let dir = scratch_dir("compact");
        let key_attrs = ["artist", "date"];
        let mut store = ObjectStore::open_with(&dir, 512, Obs::disabled()).unwrap();
        for source in ["zvents", "yellowpages", "ticketweb"] {
            let batch: Vec<IngestObject> = (0..6)
                .map(|i| {
                    concert(
                        &format!("Artist {i}"),
                        "May 1, 2020",
                        // Later sources add a theater → fusion → new versions.
                        (source != "zvents").then_some(source),
                    )
                })
                .collect();
            store.ingest(batch, &ctx(source, &key_attrs), None).unwrap();
        }
        let before_status = store.status();
        assert!(before_status.dead_records > 0, "fusions left dead versions");
        let before: Vec<String> = store
            .query(&Query::all(), None)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.to_json().render())
            .collect();

        let report = store.compact(123, None).unwrap();
        assert_eq!(report.dropped_records, before_status.dead_records);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.status().dead_records, 0);
        assert_eq!(store.status().last_compaction_unix_micros, Some(123));

        let after: Vec<String> = store
            .query(&Query::all(), None)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.to_json().render())
            .collect();
        assert_eq!(before, after, "reads are byte-identical across compaction");

        // And across a reopen of the compacted store.
        drop(store);
        let store = ObjectStore::open_with(&dir, 512, Obs::disabled()).unwrap();
        let reopened: Vec<String> = store
            .query(&Query::all(), None)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.to_json().render())
            .collect();
        assert_eq!(before, reopened);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_strays_swept() {
        let dir = scratch_dir("torn");
        let key_attrs = ["artist", "date"];
        let mut store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        store
            .ingest(
                vec![concert("Metallica", "May 11, 2010", None)],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        let seg = store.manifest.segments[0].file.clone();
        drop(store);

        // Crash simulation: half a frame appended past the committed
        // length, plus a stale compaction temp and manifest temp.
        let path = dir.join(&seg);
        let committed = fs::metadata(&path).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"REC 999 0123456789abcdef\n{\"key\":\"torn")
            .unwrap();
        drop(f);
        fs::write(dir.join("seg-g00002-00000.seg.tmp"), b"garbage").unwrap();
        fs::write(dir.join("seg-g00099-00000.seg"), b"garbage").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"garbage").unwrap();

        let store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        assert_eq!(store.len(), 1, "committed record survives");
        assert_eq!(fs::metadata(&path).unwrap().len(), committed, "tail gone");
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(!dir.join("seg-g00002-00000.seg.tmp").exists());
        assert!(!dir.join("seg-g00099-00000.seg").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_inside_committed_prefix_fails_loud() {
        let dir = scratch_dir("corrupt");
        let key_attrs = ["artist", "date"];
        let mut store = ObjectStore::open(&dir, Obs::disabled()).unwrap();
        store
            .ingest(
                vec![concert("Metallica", "May 11, 2010", None)],
                &ctx("zvents", &key_attrs),
                None,
            )
            .unwrap();
        let seg = store.manifest.segments[0].file.clone();
        drop(store);

        let path = dir.join(&seg);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ObjectStore::open(&dir, Obs::disabled()),
            Err(ObjStoreError::Corrupt { .. })
        ));

        // Truncation inside the committed prefix is data loss, not a
        // torn tail: also loud.
        fs::write(&path, &bytes[..mid]).unwrap();
        assert!(matches!(
            ObjectStore::open(&dir, Obs::disabled()),
            Err(ObjStoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
