//! Domain knowledge wiring: the synthetic YAGO-like ontology over the
//! entity pools, and per-domain recognizer sets with a dictionary
//! coverage knob (the paper's 20% / 10% completeness experiments).

use crate::data;
use crate::domain::Domain;
use objectrunner_knowledge::gazetteer::Gazetteer;
use objectrunner_knowledge::ontology::Ontology;
use objectrunner_knowledge::recognizer::{Recognizer, RecognizerSet};

/// Deterministic pseudo term-frequency in `[2, 50]` for an instance.
fn tf_of(name: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    2.0 + (h % 49) as f64
}

/// Build the synthetic ontology: classes with subclass/relatedness
/// edges and `isInstanceOf` facts from the entity pools.
///
/// Mirrors the paper's motivating structure: bands are *not* direct
/// instances of `Artist`; the semantic neighborhood finds them.
pub fn domain_ontology() -> Ontology {
    let mut o = Ontology::new();
    let artist = o.add_class("Artist");
    let band = o.add_class("Band");
    let musician = o.add_class("Musician");
    let author = o.add_class("Author");
    let writer = o.add_class("Writer");
    let person = o.add_class("Person");
    let venue = o.add_class("Venue");
    let theater = o.add_class("Theater");
    let brand = o.add_class("CarBrand");
    let manufacturer = o.add_class("Manufacturer");

    o.add_related(band, artist);
    o.add_subclass(musician, artist);
    o.add_subclass(artist, person);
    o.add_related(writer, author);
    o.add_subclass(author, person);
    o.add_related(theater, venue);
    o.add_related(manufacturer, brand);

    // Bands only under Band (the Metallica situation).
    for a in data::all_artists() {
        o.add_instance(band, &a, 0.93, tf_of(&a));
    }
    for p in data::all_people() {
        o.add_instance(writer, &p, 0.9, tf_of(&p));
    }
    for v in data::all_venues() {
        o.add_instance(theater, &v, 0.88, tf_of(&v));
    }
    for b in data::all_car_brands() {
        o.add_instance(manufacturer, &b, 0.97, tf_of(&b));
    }
    o
}

/// Titles are open vocabulary — no ontology class; a plain gazetteer.
fn title_gazetteer() -> Gazetteer {
    let mut g = Gazetteer::new();
    for t in data::all_titles() {
        g.insert(&t, 0.8, tf_of(&t));
    }
    g
}

/// Publication titles (the closed pattern space of the generator).
fn publication_title_gazetteer() -> Gazetteer {
    let mut g = Gazetteer::new();
    for t in data::all_publication_titles() {
        g.insert(&t, 0.8, 3.0);
    }
    g
}

/// The recognizer set for a domain at a given dictionary coverage.
///
/// `isInstanceOf` types go through the ontology's semantic
/// neighborhood; predefined types (date, price, address) are complete
/// by construction. Car brands keep full coverage — a closed, tiny
/// vocabulary any real dictionary covers.
pub fn recognizers_for(domain: Domain, coverage: f64) -> RecognizerSet {
    let ontology = domain_ontology();
    let mut set = RecognizerSet::new();
    match domain {
        Domain::Concerts => {
            set.insert(
                "artist",
                Recognizer::dictionary(ontology.gazetteer_for("Artist", 1).with_coverage(coverage)),
            );
            set.insert(
                "theater",
                Recognizer::dictionary(ontology.gazetteer_for("Venue", 1).with_coverage(coverage)),
            );
            set.insert("date", Recognizer::predefined_date());
            set.insert("address", Recognizer::predefined_address());
        }
        Domain::Albums => {
            set.insert(
                "artist",
                Recognizer::dictionary(ontology.gazetteer_for("Artist", 1).with_coverage(coverage)),
            );
            set.insert(
                "title",
                Recognizer::dictionary(title_gazetteer().with_coverage(coverage)),
            );
            set.insert("price", Recognizer::predefined_price());
            set.insert("date", Recognizer::predefined_date());
        }
        Domain::Books => {
            set.insert(
                "title",
                Recognizer::dictionary(title_gazetteer().with_coverage(coverage)),
            );
            set.insert(
                "author",
                Recognizer::dictionary(ontology.gazetteer_for("Author", 1).with_coverage(coverage)),
            );
            set.insert("price", Recognizer::predefined_price());
            set.insert("date", Recognizer::predefined_date());
        }
        Domain::Publications => {
            set.insert(
                "title",
                Recognizer::dictionary(publication_title_gazetteer().with_coverage(coverage)),
            );
            set.insert(
                "author",
                Recognizer::dictionary(ontology.gazetteer_for("Author", 1).with_coverage(coverage)),
            );
            set.insert("date", Recognizer::predefined_date());
        }
        Domain::Cars => {
            set.insert(
                "brand",
                Recognizer::dictionary(ontology.gazetteer_for("CarBrand", 1)),
            );
            set.insert("price", Recognizer::predefined_price());
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_neighborhood_finds_bands_as_artists() {
        let o = domain_ontology();
        // Direct lookup misses bands; the neighborhood finds them.
        assert!(o.instances_of("Artist").is_empty());
        let g = o.gazetteer_for("Artist", 1);
        assert!(g.len() >= 200);
        assert!(g.contains(&data::all_artists()[0]));
    }

    #[test]
    fn coverage_knob_shrinks_dictionaries() {
        let full = recognizers_for(Domain::Albums, 1.0);
        let fifth = recognizers_for(Domain::Albums, 0.2);
        let len = |s: &RecognizerSet, t: &str| {
            s.get(t)
                .and_then(|r| r.gazetteer())
                .map(|g| g.len())
                .unwrap_or(0)
        };
        assert!(len(&fifth, "artist") < len(&full, "artist") / 2);
        assert!(len(&fifth, "artist") > 10);
    }

    #[test]
    fn every_domain_covers_its_sod_types() {
        for d in Domain::ALL {
            let set = recognizers_for(d, 0.2);
            let sod = d.sod();
            for t in sod.entity_types() {
                assert!(set.get(t).is_some(), "{} missing recognizer {t}", d.name());
            }
        }
    }

    #[test]
    fn brands_keep_full_coverage() {
        let set = recognizers_for(Domain::Cars, 0.2);
        let g = set
            .get("brand")
            .and_then(|r| r.gazetteer())
            .expect("gazetteer");
        for b in data::all_car_brands() {
            assert!(g.contains(&b), "brand {b} missing");
        }
    }

    #[test]
    fn sample_values_are_recognized() {
        let set = recognizers_for(Domain::Concerts, 1.0);
        let artist = &data::all_artists()[3];
        assert!(set
            .get("artist")
            .expect("artist")
            .recognize(artist)
            .is_some());
        let venue = &data::all_venues()[5];
        assert!(set
            .get("theater")
            .expect("theater")
            .recognize(venue)
            .is_some());
    }

    #[test]
    fn publication_titles_are_recognizable() {
        let g = publication_title_gazetteer();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut v = crate::data::ValueGen::new(&mut rng);
        let hits = (0..40)
            .filter(|_| g.contains(&v.publication_title()))
            .count();
        assert!(hits > 10, "only {hits}/40 publication titles recognized");
    }
}
