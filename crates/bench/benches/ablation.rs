//! E9 — ablations of the design choices DESIGN.md calls out:
//! the annotated-word guard, main-block simplification, ordinal
//! differentiation, and the support parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objectrunner_bench::{bench_config, bench_pipeline, bench_source};
use objectrunner_core::pipeline::PipelineConfig;
use objectrunner_webgen::Domain;
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let source = bench_source(Domain::Albums, 30);

    let configs: Vec<(&str, PipelineConfig)> = vec![
        ("baseline", bench_config()),
        (
            "no_annotations_guard",
            PipelineConfig {
                annotations_guard: false,
                ..bench_config()
            },
        ),
        (
            "no_main_block",
            PipelineConfig {
                use_main_block: false,
                ..bench_config()
            },
        ),
        (
            "support_5_only",
            PipelineConfig {
                support_range: (5, 5),
                ..bench_config()
            },
        ),
    ];
    for (label, config) in configs {
        group.bench_function(BenchmarkId::new("pipeline", label), |b| {
            b.iter(|| {
                let pipeline = bench_pipeline(Domain::Albums, config.clone());
                black_box(pipeline.run_on_html(&source.pages).ok())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
