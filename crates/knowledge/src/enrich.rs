//! Dictionary enrichment from extraction results (paper §III-C, Eq. 4).
//!
//! "The discovery of new instances during the extraction phase from
//! the Web pages also enables us to enrich our dictionaries. In this
//! regard, we associate confidence scores before adding them in the
//! dictionaries based on confidence score from the wrapper generation
//! step, extracted instances (I) and existing instances (D):
//!
//! ```text
//! score(c) = f( wrapper_score(c), Σ_{D∩I} score(i,c) / count(I) )
//! ```
//!
//! This formula gives more weight either to instances obtained by a
//! good wrapper (one built with no or very few conflicting
//! annotations) or to those which have a significant overlap with the
//! set of existing values in dictionaries."

use crate::gazetteer::Gazetteer;

/// Inputs to one enrichment round for one entity type.
#[derive(Debug, Clone)]
pub struct EnrichmentInput {
    /// Quality of the wrapper that produced the instances, in `[0, 1]`
    /// (1 = no conflicting annotations during wrapper generation).
    pub wrapper_score: f64,
    /// The values extracted for this type's column (set `I`).
    pub extracted: Vec<String>,
}

/// Result of an enrichment round.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichmentReport {
    /// Number of extracted values already present in the dictionary
    /// (`|D ∩ I|`).
    pub overlap: usize,
    /// Number of new instances added.
    pub added: usize,
    /// The confidence assigned to the new instances (Eq. 4).
    pub confidence: f64,
}

/// The combination function `f`: a weighted blend that lets either a
/// good wrapper or a strong dictionary overlap carry the score.
fn combine(wrapper_score: f64, overlap_score: f64) -> f64 {
    // "more weight either to instances obtained by a good wrapper or
    // to those which have a significant overlap": take the stronger
    // signal, softened by the weaker one.
    let hi = wrapper_score.max(overlap_score);
    let lo = wrapper_score.min(overlap_score);
    (0.75 * hi + 0.25 * lo).clamp(0.0, 1.0)
}

/// Minimum confidence for new instances to enter the dictionary.
const MIN_ENRICH_CONFIDENCE: f64 = 0.3;

/// Enrich `dictionary` with values extracted by a wrapper (Eq. 4).
///
/// Existing entries also get their confidence reinforced when
/// re-observed ("we can update the scores on existing dictionary
/// values after each source is processed").
pub fn enrich(dictionary: &mut Gazetteer, input: &EnrichmentInput) -> EnrichmentReport {
    let count_i = input.extracted.len();
    if count_i == 0 {
        return EnrichmentReport {
            overlap: 0,
            added: 0,
            confidence: 0.0,
        };
    }
    // Σ_{D∩I} score(i,c) / count(I)
    let mut overlap = 0usize;
    let mut overlap_sum = 0.0;
    for value in &input.extracted {
        if let Some(entry) = dictionary.get(value) {
            overlap += 1;
            overlap_sum += entry.confidence;
        }
    }
    let overlap_score = overlap_sum / count_i as f64;
    let confidence = combine(input.wrapper_score.clamp(0.0, 1.0), overlap_score);

    let mut added = 0usize;
    if confidence >= MIN_ENRICH_CONFIDENCE {
        for value in &input.extracted {
            match dictionary.get(value) {
                Some(entry) => {
                    // Reinforce: nudge existing confidence towards 1.
                    let new_conf = entry.confidence + 0.1 * (1.0 - entry.confidence);
                    let tf = entry.term_frequency;
                    dictionary.insert(value, new_conf, tf);
                }
                None => {
                    dictionary.insert(value, confidence, 1.0);
                    added += 1;
                }
            }
        }
    }
    EnrichmentReport {
        overlap,
        added,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(names: &[&str]) -> Gazetteer {
        let mut g = Gazetteer::new();
        for n in names {
            g.insert(n, 0.8, 5.0);
        }
        g
    }

    fn values(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn good_wrapper_adds_new_instances() {
        let mut d = dict(&["Metallica"]);
        let report = enrich(
            &mut d,
            &EnrichmentInput {
                wrapper_score: 0.95,
                extracted: values(&["Metallica", "Muse", "Coldplay"]),
            },
        );
        assert_eq!(report.overlap, 1);
        assert_eq!(report.added, 2);
        assert!(d.contains("Muse"));
        assert!(d.contains("Coldplay"));
    }

    #[test]
    fn bad_wrapper_with_no_overlap_adds_nothing() {
        let mut d = dict(&["Metallica"]);
        let report = enrich(
            &mut d,
            &EnrichmentInput {
                wrapper_score: 0.1,
                extracted: values(&["Garbage1", "Garbage2"]),
            },
        );
        assert_eq!(report.added, 0);
        assert!(!d.contains("Garbage1"));
    }

    #[test]
    fn strong_overlap_carries_weak_wrapper() {
        // Most extracted values are already known: overlap vouches for
        // the rest even though the wrapper had conflicts.
        let mut d = dict(&["A", "B", "C", "D"]);
        let report = enrich(
            &mut d,
            &EnrichmentInput {
                wrapper_score: 0.2,
                extracted: values(&["A", "B", "C", "D", "NewOne"]),
            },
        );
        assert_eq!(report.overlap, 4);
        assert_eq!(report.added, 1);
        assert!(d.contains("NewOne"));
    }

    #[test]
    fn reobserved_instances_are_reinforced() {
        let mut d = dict(&["Metallica"]);
        let before = d.get("Metallica").expect("entry").confidence;
        enrich(
            &mut d,
            &EnrichmentInput {
                wrapper_score: 0.9,
                extracted: values(&["Metallica"]),
            },
        );
        let after = d.get("Metallica").expect("entry").confidence;
        assert!(after > before);
        assert!(after <= 1.0);
    }

    #[test]
    fn empty_extraction_is_a_noop() {
        let mut d = dict(&["X"]);
        let report = enrich(
            &mut d,
            &EnrichmentInput {
                wrapper_score: 1.0,
                extracted: vec![],
            },
        );
        assert_eq!(
            report,
            EnrichmentReport {
                overlap: 0,
                added: 0,
                confidence: 0.0
            }
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn combine_favors_the_stronger_signal() {
        assert!(combine(0.9, 0.0) > 0.6);
        assert!(combine(0.0, 0.9) > 0.6);
        assert!(combine(0.1, 0.1) < 0.2);
        assert!(combine(1.0, 1.0) <= 1.0);
    }
}
