//! E13 — the harvested-object database over the paper corpus
//! (`results/objstore_summary.txt`).
//!
//! For every domain, two synthetic sources render the *same* gold
//! objects through different site names (the same template seed — the
//! classic syndicated-listing situation). Both are induced and
//! extracted with the regular pipeline, and every extraction is
//! ingested into one shared object store. The table shows what the
//! dedup layer did per domain: objects offered, first sightings,
//! cross-source duplicates suppressed, and extractions skipped for
//! missing key attributes. The footer reports store-level numbers —
//! bytes on disk, a full-walk query check, latency quantiles from the
//! store's own `objectrunner.objstore.*` histograms, and the
//! compaction fixed point. The table and counters are deterministic;
//! the latency footer is a measurement and varies run to run (like
//! the bench bins, unlike the byte-compared table bins).

use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_eval::runners::{DEFAULT_COVERAGE, SAMPLE_SIZE};
use objectrunner_html::{clean_document, parse, CleanOptions};
use objectrunner_objstore::{IngestContext, IngestObject, ObjectStore, Query};
use objectrunner_obs::{Clock, Obs, DEFAULT_SPAN_CAPACITY};
use objectrunner_webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};
use std::path::PathBuf;

/// Extract a source with a freshly induced wrapper; one offer list per
/// page, page ids matching the corpus writer's naming.
fn harvest(domain: Domain, name: &str, seed: u64) -> Vec<Vec<IngestObject>> {
    let spec = SiteSpec::clean(name, domain, PageKind::List, 12, seed);
    let source = generate_site(&spec);
    let config = PipelineConfig {
        sample: objectrunner_core::sample::SampleConfig {
            sample_size: SAMPLE_SIZE,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(
        domain.sod(),
        knowledge::recognizers_for(domain, DEFAULT_COVERAGE),
    )
    .with_config(config);
    let outcome = pipeline
        .run_on_html(&source.pages)
        .expect("paper-corpus source induces");
    source
        .pages
        .iter()
        .enumerate()
        .map(|(i, html)| {
            let mut doc = parse(html);
            clean_document(&mut doc, &CleanOptions::default());
            outcome
                .wrapper
                .extract_document(&doc)
                .into_iter()
                .map(|instance| IngestObject {
                    instance,
                    page_id: format!("page-{i:03}"),
                })
                .collect()
        })
        .collect()
}

fn main() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("objectrunner-eval-objstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::with_clock_and_capacity(Clock::system(), DEFAULT_SPAN_CAPACITY);
    let mut store = ObjectStore::open(&dir, obs.clone()).expect("fresh store");

    println!("E13 — HARVESTED-OBJECT STORE OVER THE PAPER CORPUS");
    println!("Two sources per domain render the same gold objects (shared seed);");
    println!("the second source's harvest must dedup against the first's.");
    println!();
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Domain", "offered", "new", "dup", "skipped", "live"
    );

    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let seed = 17_000 + i as u64;
        let key_attrs = domain.key_attributes();
        let mut offered = 0u64;
        let mut new = 0u64;
        let mut dup = 0u64;
        let mut skipped = 0u64;
        for (tag, micros) in [
            ("a", 1_700_000_000_000_000u64),
            ("b", 1_700_000_050_000_000),
        ] {
            let name = format!("harvest-{}-{tag}", domain.name().to_lowercase());
            let ctx = IngestContext {
                source: &name,
                domain: domain.name(),
                wrapper_revision: 1,
                repaired_from: None,
                extracted_unix_micros: micros,
                confidence: 1.0,
                key_attrs: &key_attrs,
            };
            for offers in harvest(domain, &name, seed) {
                let report = store.ingest(offers, &ctx, None).expect("ingest");
                offered += report.ingested;
                new += report.new_objects;
                dup += report.duplicates;
                skipped += report.skipped;
            }
        }
        let live = store
            .status()
            .per_domain
            .get(domain.name())
            .copied()
            .unwrap_or(0);
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
            domain.name(),
            offered,
            new,
            dup,
            skipped,
            live
        );
    }

    // Full pagination walk (the query path the daemon serves), then
    // the compaction fixed point.
    let status = store.status();
    let mut walked = 0usize;
    let mut cursor = None;
    loop {
        let page = store
            .query(
                &Query {
                    limit: 100,
                    cursor: cursor.take(),
                    ..Query::all()
                },
                None,
            )
            .expect("walk");
        walked += page.hits.len();
        match page.next_cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    let keys_before: Vec<String> = {
        let q = store
            .query(
                &Query {
                    limit: 500,
                    ..Query::all()
                },
                None,
            )
            .expect("snapshot");
        q.hits.iter().map(|r| r.render()).collect()
    };
    store.compact(1_700_000_099_000_000, None).expect("compact");
    let keys_after: Vec<String> = {
        let q = store
            .query(
                &Query {
                    limit: 500,
                    ..Query::all()
                },
                None,
            )
            .expect("snapshot");
        q.hits.iter().map(|r| r.render()).collect()
    };

    let snapshot = obs.snapshot();
    let ingest_h = snapshot.histogram("objectrunner.objstore.ingest.latency_micros");
    let query_h = snapshot.histogram("objectrunner.objstore.query.latency_micros");
    println!();
    println!(
        "store: {} bytes in {} segment(s), {} live objects",
        status.bytes, status.segments, status.live_objects
    );
    println!(
        "dedup: {:.1}% of offered objects were cross-source duplicates",
        100.0 * status.duplicates as f64 / status.ingested.max(1) as f64
    );
    println!("query walk: {walked} objects via cursor pagination");
    println!(
        "latency (store histograms): ingest p50 {}us p99 {}us over {} batches; query p50 {}us p99 {}us over {} queries",
        ingest_h.quantile(0.5),
        ingest_h.quantile(0.99),
        ingest_h.count,
        query_h.quantile(0.5),
        query_h.quantile(0.99),
        query_h.count
    );
    println!(
        "compact fixed point: {}",
        if keys_before == keys_after && walked == status.live_objects as usize {
            "reads byte-identical before/after"
        } else {
            "VIOLATED"
        }
    );

    let _ = std::fs::remove_dir_all(&dir);
}
