//! Property-based tests for the layout engine and block segmentation.

use objectrunner_html::parse;
use objectrunner_segment::{block_tree, layout_document, select_main_block, LayoutOptions};
use proptest::prelude::*;

/// Random block/inline document structures.
fn arb_page() -> impl Strategy<Value = String> {
    let text = "[a-z]{1,8}( [a-z]{1,8}){0,6}";
    let leaf = text.prop_map(|t| t);
    let node = leaf.prop_recursive(4, 48, 4, |inner| {
        (
            prop::sample::select(vec!["div", "p", "ul", "li", "span", "em", "table", "td"]),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| format!("<{tag}>{}</{tag}>", kids.join("")))
    });
    prop::collection::vec(node, 1..5)
        .prop_map(|kids| format!("<html><body>{}</body></html>", kids.join("")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reachable node receives a rectangle, with finite
    /// non-negative dimensions inside a sane horizontal range.
    #[test]
    fn layout_covers_every_node(html in arb_page()) {
        let doc = parse(&html);
        let opts = LayoutOptions::default();
        let layout = layout_document(&doc, &opts);
        for id in doc.descendants(doc.root()) {
            let rect = layout.get(&id).copied()
                .unwrap_or_else(|| panic!("missing rect for {id}"));
            prop_assert!(rect.w.is_finite() && rect.h.is_finite());
            prop_assert!(rect.w >= 0.0 && rect.h >= 0.0);
            prop_assert!(rect.x >= -1e-9);
            prop_assert!(rect.x <= opts.viewport_width + 1e-9, "x={} beyond viewport", rect.x);
        }
    }

    /// Block-level children lie vertically within their parent's span.
    #[test]
    fn block_children_are_within_parents(html in arb_page()) {
        let doc = parse(&html);
        let opts = LayoutOptions::default();
        let layout = layout_document(&doc, &opts);
        let tree = block_tree(&doc, &layout, &opts);
        for block in &tree.blocks {
            for &child in &block.children {
                let c = &tree.blocks[child];
                prop_assert!(c.rect.y >= block.rect.y - 1e-6);
                prop_assert!(
                    c.rect.y + c.rect.h <= block.rect.y + block.rect.h + 1e-6,
                    "child {:?} escapes parent {:?}",
                    c.rect,
                    block.rect
                );
            }
        }
    }

    /// The block tree is a tree: every non-root block has exactly one
    /// parent, and depths increase by one along edges.
    #[test]
    fn block_tree_is_a_tree(html in arb_page()) {
        let doc = parse(&html);
        let opts = LayoutOptions::default();
        let layout = layout_document(&doc, &opts);
        let tree = block_tree(&doc, &layout, &opts);
        let mut parent_count = vec![0usize; tree.blocks.len()];
        for (i, block) in tree.blocks.iter().enumerate() {
            for &c in &block.children {
                parent_count[c] += 1;
                prop_assert_eq!(tree.blocks[c].depth, block.depth + 1, "edge {}→{}", i, c);
            }
        }
        prop_assert_eq!(parent_count[0], 0, "root has no parent");
        for (i, &n) in parent_count.iter().enumerate().skip(1) {
            prop_assert_eq!(n, 1, "block {} has {} parents", i, n);
        }
    }

    /// Main-block selection never panics and, when it chooses, the
    /// chosen signature exists on at least one page.
    #[test]
    fn main_block_choice_is_findable(pages in prop::collection::vec(arb_page(), 1..4)) {
        let docs: Vec<_> = pages.iter().map(|p| parse(p)).collect();
        if let Some(choice) = select_main_block(&docs, &LayoutOptions::default()) {
            prop_assert!(choice.support >= 1);
            let found = docs.iter().any(|d| !choice.signature.find_in(d).is_empty());
            prop_assert!(found, "chosen signature on no page");
        }
    }
}
