//! Acceptance guard for tree-diff wrapper repair: on the cosmetic and
//! separator drift tiers, a *repaired* wrapper — old wrapper patched
//! through the template-tree mapping, no induction stages — must
//! extract byte-identical objects to a full re-induction on the
//! drifted pages, for every domain and at both thread counts the
//! determinism suite pins. On the container tier, repair must decline
//! loudly so the serving layer falls back to re-induction.

use objectrunner::core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner::core::sample::SampleConfig;
use objectrunner::core::wrapper::{repair_wrapper, RepairConfig};
use objectrunner::webgen::{
    generate_drifted, generate_site, knowledge, Domain, PageKind, SiteSpec,
};

fn spec(domain: Domain, index: usize) -> SiteSpec {
    let mut spec = SiteSpec::clean(
        &format!("repair-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_200 + index as u64,
    );
    // Pin the markup style so the tier exercised at a given strength
    // is the same across seeds.
    spec.style = index % 3;
    spec
}

fn config() -> PipelineConfig {
    PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Induce a clean wrapper, drift the site, repair, and return
/// `(repaired objects, freshly re-induced objects)`.
fn repaired_vs_fresh(
    domain: Domain,
    index: usize,
    strength: f64,
    threads: Option<usize>,
) -> (Vec<String>, Vec<String>) {
    let spec = spec(domain, index);
    let clean_pages = generate_site(&spec).pages;
    let mut cfg = config();
    cfg.threads = threads;
    let clean = cfg.clean.clone();
    let pipeline = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
        .with_config(cfg.clone());
    let outcome = pipeline
        .run_on_html(&clean_pages)
        .unwrap_or_else(|e| panic!("{} failed to wrap clean site: {e}", domain.name()));

    let drifted = generate_drifted(&spec, strength);
    let prepared = extract_only(
        &outcome.wrapper,
        outcome.main_block.as_ref(),
        &clean,
        &drifted.pages,
        threads,
    );
    let repaired = repair_wrapper(
        &outcome.wrapper,
        &domain.sod(),
        &prepared.docs,
        &RepairConfig::default(),
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} strength {strength}: repair declined ({e}) on a tier it must absorb",
            domain.name()
        )
    });
    let served = extract_only(
        &repaired.wrapper,
        outcome.main_block.as_ref(),
        &clean,
        &drifted.pages,
        threads,
    );
    let repaired_objects: Vec<String> = served.objects().iter().map(|o| o.to_string()).collect();

    let fresh = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
        .with_config(cfg)
        .run_on_html(&drifted.pages)
        .unwrap_or_else(|e| panic!("{} failed to re-induce at {strength}: {e}", domain.name()));
    let fresh_objects: Vec<String> = fresh.objects.iter().map(|o| o.to_string()).collect();
    (repaired_objects, fresh_objects)
}

fn assert_tier_equivalence(strength: f64) {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        for threads in [Some(1), Some(8)] {
            let (repaired, fresh) = repaired_vs_fresh(domain, i, strength, threads);
            assert!(
                !fresh.is_empty(),
                "{} strength {strength}: fresh re-induction extracted nothing",
                domain.name()
            );
            assert_eq!(
                repaired,
                fresh,
                "{} strength {strength} threads {threads:?}: repaired extraction \
                 diverged from fresh re-induction",
                domain.name()
            );
        }
    }
}

#[test]
fn repaired_extraction_matches_reinduction_on_cosmetic_drift() {
    assert_tier_equivalence(0.1);
}

#[test]
fn repaired_extraction_matches_reinduction_on_separator_drift() {
    assert_tier_equivalence(0.3);
}

/// On the container tier the chain tokens change (`<ul>` → `<ol>`,
/// `<div>` → `<section>`, a new wrapper `<div>`). Repair must never
/// produce a silently wrong wrapper here: it either declines (the
/// serving layer falls back to re-induction) or — when the drifted
/// markup still embeds the old chain token-for-token — the patched
/// wrapper must extract exactly what a fresh re-induction would.
#[test]
fn repair_never_silently_corrupts_on_container_redesign() {
    let mut declined = 0usize;
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let spec = spec(domain, i);
        let clean_pages = generate_site(&spec).pages;
        let cfg = config();
        let clean = cfg.clean.clone();
        let outcome = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
            .with_config(cfg.clone())
            .run_on_html(&clean_pages)
            .unwrap_or_else(|e| panic!("{} failed to wrap clean site: {e}", domain.name()));

        let drifted = generate_drifted(&spec, 0.8);
        let prepared = extract_only(
            &outcome.wrapper,
            outcome.main_block.as_ref(),
            &clean,
            &drifted.pages,
            None,
        );
        match repair_wrapper(
            &outcome.wrapper,
            &domain.sod(),
            &prepared.docs,
            &RepairConfig::default(),
        ) {
            Err(_) => declined += 1,
            Ok(repaired) => {
                let served = extract_only(
                    &repaired.wrapper,
                    outcome.main_block.as_ref(),
                    &clean,
                    &drifted.pages,
                    None,
                );
                let repaired_objects: Vec<String> =
                    served.objects().iter().map(|o| o.to_string()).collect();
                let fresh = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
                    .with_config(cfg)
                    .run_on_html(&drifted.pages)
                    .unwrap_or_else(|e| {
                        panic!("{} failed to re-induce at 0.8: {e}", domain.name())
                    });
                let fresh_objects: Vec<String> =
                    fresh.objects.iter().map(|o| o.to_string()).collect();
                assert_eq!(
                    repaired_objects,
                    fresh_objects,
                    "{}: repair survived the container tier but extracted wrong objects",
                    domain.name()
                );
            }
        }
    }
    // The tag-renaming redesigns (`ul` → `ol` on style 0) must hit the
    // fallback path — that is the behaviour the serving layer's
    // re-induction fallback and the ci smoke stage pin down.
    assert!(
        declined >= 1,
        "no domain declined at the container tier; the fallback path is untested"
    );
}
