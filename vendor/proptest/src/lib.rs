//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the strategy combinators, macros and prelude the
//! workspace's property tests use: `Strategy`/`Just`/`prop_map`/
//! `prop_recursive`/`boxed`, regex-literal string strategies (a small
//! generator-only regex subset), integer ranges, tuples, unions
//! (`prop_oneof!`), `collection::{vec, hash_set}`, `sample::select`,
//! `bool::ANY`, `any::<bool>()`, and the `proptest!` test macro.
//!
//! No shrinking: a failing case panics with the standard assertion
//! message. Case generation is deterministic per test (the RNG is
//! seeded from the test's module path), so failures reproduce.

// ---------------------------------------------------------------- rng

/// Deterministic generator used for case generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Seed derived from the (stable) test path so each test gets an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform draw from `[low, high]` (inclusive).
    pub fn range_i128(&mut self, low: i128, high: i128) -> i128 {
        assert!(low <= high, "empty range");
        let span = (high - low) as u128 + 1;
        let draw = ((self.next_u64() as u128).wrapping_mul(span)) >> 64;
        low + draw as i128
    }
}

// ----------------------------------------------------------- strategy

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// Generator of arbitrary values (no shrinking).
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// Recursive strategies: `depth` levels of `recurse` wrapped
        /// around the base case. `desired_size` / `expected_branch_size`
        /// are accepted for API compatibility but depth alone bounds
        /// generation here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
            }
            cur
        }
    }

    /// Clonable type-erased strategy (`Rc`-backed; tests are
    /// single-threaded per case loop).
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice between strategies of a common value type;
    /// backs `prop_oneof!` and `prop_recursive`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "empty union");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "zero-weight union");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as usize) as u32;
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    /// String literals are generator-only regexes (subset: literals,
    /// `[...]` classes with ranges, `.`, `(...)` groups, `{m,n}`/`{n}`/
    /// `?`/`*`/`+` quantifiers).
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let pattern = super::regex_gen::parse(self);
            let mut out = String::new();
            super::regex_gen::generate(&pattern, rng, &mut out);
            out
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

// --------------------------------------------------- regex generation

mod regex_gen {
    use super::TestRng;

    #[derive(Debug)]
    pub enum Node {
        Lit(char),
        Dot,
        Class(Vec<(char, char)>),
        Group(Vec<Item>),
    }

    #[derive(Debug)]
    pub struct Item {
        pub node: Node,
        pub min: u32,
        pub max: u32,
    }

    /// Unbounded quantifiers (`*`, `+`) are capped here.
    const UNBOUNDED_CAP: u32 = 8;

    pub fn parse(pattern: &str) -> Vec<Item> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let items = parse_seq(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex (stopped at {pos}): {pattern:?}"
        );
        items
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Vec<Item> {
        let mut items = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' {
            let node = match chars[*pos] {
                '[' => {
                    *pos += 1;
                    let mut ranges = Vec::new();
                    while chars[*pos] != ']' {
                        let lo = read_char(chars, pos);
                        if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                            *pos += 1;
                            let hi = read_char(chars, pos);
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    *pos += 1; // ']'
                    Node::Class(ranges)
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unclosed group in regex strategy"
                    );
                    *pos += 1;
                    Node::Group(inner)
                }
                '.' => {
                    *pos += 1;
                    Node::Dot
                }
                _ => Node::Lit(read_char(chars, pos)),
            };
            let (min, max) = parse_quant(chars, pos);
            items.push(Item { node, min, max });
        }
        items
    }

    fn read_char(chars: &[char], pos: &mut usize) -> char {
        let c = chars[*pos];
        *pos += 1;
        if c == '\\' {
            let escaped = chars[*pos];
            *pos += 1;
            escaped
        } else {
            c
        }
    }

    fn parse_quant(chars: &[char], pos: &mut usize) -> (u32, u32) {
        if *pos >= chars.len() {
            return (1, 1);
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                (0, 1)
            }
            '*' => {
                *pos += 1;
                (0, UNBOUNDED_CAP)
            }
            '+' => {
                *pos += 1;
                (1, UNBOUNDED_CAP)
            }
            '{' => {
                *pos += 1;
                let mut min = 0u32;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut m = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        m = m * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    m
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "malformed quantifier");
                *pos += 1;
                (min, max)
            }
            _ => (1, 1),
        }
    }

    pub fn generate(items: &[Item], rng: &mut TestRng, out: &mut String) {
        for item in items {
            let count = item.min + rng.below((item.max - item.min + 1) as usize) as u32;
            for _ in 0..count {
                match &item.node {
                    Node::Lit(c) => out.push(*c),
                    // Printable ASCII, like an unadventurous `.`.
                    Node::Dot => out.push((0x20 + rng.below(0x5f) as u8) as char),
                    Node::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                                .expect("class range stays in scalar values"),
                        );
                    }
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

// -------------------------------------------------------- collections

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: random-length vector of elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::hash_set`. Duplicate draws are retried a
    /// bounded number of times; if the element space is too small the
    /// set may come up short of `size.start`, which the in-repo tests
    /// tolerate (their element spaces are large).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while set.len() < n && attempts < n * 20 + 100 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

// ------------------------------------------------------------- sample

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

// --------------------------------------------------------------- bool

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`: a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------- arbitrary

pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical strategy (`any::<T>()`). Only the types
    /// the workspace asks for are implemented.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;

        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

// -------------------------------------------------------- test runner

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

// ------------------------------------------------------------- macros

/// Property-test harness: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
}

/// Without shrinking there is nothing to report beyond the assertion
/// itself, so the `prop_assert` family maps to `assert`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Equal-weight union of strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

// ------------------------------------------------------------ prelude

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_their_own_shape() {
        let mut rng = crate::TestRng::for_test("regex_shape");
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let phrase = Strategy::new_value(&"[a-z]{1,6}( [a-z]{1,6}){0,3}", &mut rng);
            for word in phrase.split(' ') {
                assert!((1..=6).contains(&word.len()), "{phrase:?}");
            }

            let dots = Strategy::new_value(&".{0,40}", &mut rng);
            assert!(dots.len() <= 40);
            assert!(dots.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_tuples_and_unions_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        let strat = (
            1u32..4,
            prop::sample::select(vec!["a", "b"]),
            prop_oneof![Just(0usize), Just(1usize)],
        );
        for _ in 0..200 {
            let (n, s, z) = Strategy::new_value(&strat, &mut rng);
            assert!((1..4).contains(&n));
            assert!(s == "a" || s == "b");
            assert!(z <= 1);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::TestRng::for_test("collections");
        let vecs = prop::collection::vec(0u32..10, 2..5);
        let sets = prop::collection::hash_set("[a-z]{3,10}", 5..60);
        for _ in 0..100 {
            let v = Strategy::new_value(&vecs, &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::new_value(&sets, &mut rng);
            assert!(s.len() < 60);
            assert!(s.len() >= 5, "huge element space should fill the set");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = crate::TestRng::for_test("recursive");
        let leaf = "[a-z]{1,4}".prop_map(|w| w);
        let tree = leaf.prop_recursive(3, 64, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(|kids| format!("({})", kids.join(" ")))
        });
        for _ in 0..100 {
            let v = Strategy::new_value(&tree, &mut rng);
            assert!(v.len() < 10_000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config, multiple args.
        #[test]
        fn macro_binds_arguments(a in 0u32..5, b in "[ab]{1,3}") {
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b.len()));
        }
    }
}
