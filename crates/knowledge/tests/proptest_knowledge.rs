//! Property-based tests for the knowledge substrate: the regex engine
//! is checked against a naive backtracking oracle on a restricted
//! pattern class; gazetteers and the scoring functions are checked for
//! their algebraic invariants.

use objectrunner_knowledge::gazetteer::{normalize, Gazetteer};
use objectrunner_knowledge::regex::Regex;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Regex vs oracle
// ---------------------------------------------------------------------

/// Restricted pattern AST that both the engine and the oracle support.
#[derive(Debug, Clone)]
enum Pat {
    Lit(char),
    Dot,
    Star(Box<Pat>),
    Plus(Box<Pat>),
    Opt(Box<Pat>),
    Seq(Vec<Pat>),
    Alt(Box<Pat>, Box<Pat>),
}

fn arb_pat(depth: u32) -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        prop::sample::select(vec!['a', 'b', 'c']).prop_map(Pat::Lit),
        Just(Pat::Dot),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| Pat::Star(Box::new(p))),
            inner.clone().prop_map(|p| Pat::Plus(Box::new(p))),
            inner.clone().prop_map(|p| Pat::Opt(Box::new(p))),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Pat::Seq),
            (inner.clone(), inner).prop_map(|(a, b)| Pat::Alt(Box::new(a), Box::new(b))),
        ]
    })
}

fn render(p: &Pat) -> String {
    match p {
        Pat::Lit(c) => c.to_string(),
        Pat::Dot => ".".to_owned(),
        Pat::Star(i) => format!("({})*", render(i)),
        Pat::Plus(i) => format!("({})+", render(i)),
        Pat::Opt(i) => format!("({})?", render(i)),
        Pat::Seq(items) => items.iter().map(render).collect(),
        Pat::Alt(a, b) => format!("(({})|({}))", render(a), render(b)),
    }
}

/// Naive backtracking oracle: does `p` match `s` entirely?
fn oracle_match(p: &Pat, s: &[char]) -> bool {
    fn go(p: &Pat, s: &[char], k: &mut dyn FnMut(&[char]) -> bool) -> bool {
        match p {
            Pat::Lit(c) => !s.is_empty() && s[0] == *c && k(&s[1..]),
            Pat::Dot => !s.is_empty() && k(&s[1..]),
            Pat::Opt(i) => go(i, s, k) || k(s),
            Pat::Star(i) => star(i, s, k, 0),
            Pat::Plus(i) => go(i, s, &mut |rest| star(i, rest, k, 0)),
            Pat::Seq(items) => seq(items, s, k),
            Pat::Alt(a, b) => go(a, s, k) || go(b, s, k),
        }
    }
    fn star(i: &Pat, s: &[char], k: &mut dyn FnMut(&[char]) -> bool, depth: usize) -> bool {
        if depth > 24 {
            return k(s);
        }
        // Try consuming one more instance (must make progress), else stop.
        let mut advanced = false;
        let result = go(i, s, &mut |rest| {
            if rest.len() < s.len() {
                advanced = true;
                star(i, rest, k, depth + 1)
            } else {
                false
            }
        });
        let _ = advanced;
        result || k(s)
    }
    fn seq(items: &[Pat], s: &[char], k: &mut dyn FnMut(&[char]) -> bool) -> bool {
        match items.split_first() {
            None => k(s),
            Some((first, rest)) => go(first, s, &mut |mid| seq(rest, mid, k)),
        }
    }
    go(p, s, &mut |rest| rest.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The NFA engine agrees with the backtracking oracle on full
    /// matches over the restricted pattern class.
    #[test]
    fn regex_agrees_with_oracle(pat in arb_pat(3), input in "[abc]{0,8}") {
        let pattern = render(&pat);
        let re = Regex::new(&pattern).expect("restricted patterns compile");
        let chars: Vec<char> = input.chars().collect();
        let expected = oracle_match(&pat, &chars);
        prop_assert_eq!(
            re.is_full_match(&input),
            expected,
            "pattern {} on {:?}",
            pattern,
            input
        );
    }

    /// find() returns a range that actually matches and lies in bounds.
    #[test]
    fn find_returns_valid_spans(pat in arb_pat(2), input in "[abc]{0,10}") {
        let pattern = render(&pat);
        let re = Regex::new(&pattern).expect("compiles");
        if let Some((s, e)) = re.find(&input) {
            prop_assert!(s <= e && e <= input.len());
            prop_assert!(input.is_char_boundary(s) && input.is_char_boundary(e));
            prop_assert!(re.is_full_match(&input[s..e]), "span {:?} of {:?}", (s, e), input);
        }
    }

    /// find_all spans are disjoint and ordered.
    #[test]
    fn find_all_spans_are_disjoint(input in "[abc ]{0,20}") {
        let re = Regex::new("[ab]+").expect("compiles");
        let spans = re.find_all(&input);
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "{spans:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Gazetteer invariants
// ---------------------------------------------------------------------

proptest! {
    /// normalize is idempotent.
    #[test]
    fn normalize_is_idempotent(s in ".{0,40}") {
        prop_assert_eq!(normalize(&normalize(&s)), normalize(&s));
    }

    /// Coverage subsetting is monotone: a higher fraction keeps a
    /// superset of entries.
    #[test]
    fn coverage_is_monotone(names in prop::collection::hash_set("[a-z]{3,10}", 5..60)) {
        let mut g = Gazetteer::new();
        for n in &names {
            g.insert(n, 0.9, 4.0);
        }
        let small = g.with_coverage(0.2);
        let large = g.with_coverage(0.6);
        for (name, _) in small.iter() {
            prop_assert!(large.contains(name), "{name} dropped at higher coverage");
        }
        prop_assert!(small.len() <= large.len());
        prop_assert!(large.len() <= g.len());
    }

    /// Merging never loses entries and keeps the max confidence.
    #[test]
    fn merge_keeps_best_confidence(
        names in prop::collection::vec("[a-z]{3,8}", 1..20),
        c1 in 0.1f64..1.0,
        c2 in 0.1f64..1.0,
    ) {
        let mut a = Gazetteer::new();
        let mut b = Gazetteer::new();
        for n in &names {
            a.insert(n, c1, 2.0);
            b.insert(n, c2, 2.0);
        }
        a.merge(&b);
        for n in &names {
            let got = a.get(n).expect("present").confidence;
            prop_assert!((got - c1.max(c2)).abs() < 1e-9);
        }
    }

    /// Selectivity is additive over disjoint inserts.
    #[test]
    fn selectivity_is_additive(names in prop::collection::hash_set("[a-z]{3,10}", 1..30)) {
        let mut g = Gazetteer::new();
        let mut expected = 0.0;
        for (i, n) in names.iter().enumerate() {
            let conf = 0.5 + (i % 5) as f64 * 0.1;
            let tf = 1.0 + (i % 7) as f64;
            g.insert(n, conf, tf);
            expected += conf / tf;
        }
        prop_assert!((g.selectivity() - expected).abs() < 1e-9);
    }
}
