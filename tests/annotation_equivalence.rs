//! Differential guard for the compiled annotation engine.
//!
//! The `CompiledRecognizerSet` + `Annotator` fast path (Aho–Corasick
//! dictionary automaton, Pike-VM regex sweep, per-Symbol memoization)
//! must be **observationally identical** to the retained naive
//! annotation path — same `AnnotationMap` for every page, same
//! `TypeMatch` (bit-identical confidence *and* coverage) for every
//! text, including the naive engine's tie-breaking quirks (longest
//! phrase wins, earliest window at equal length, first pattern wins
//! coverage ties, `coverage ≥ 0.2` dictionary floor).
//!
//! Three layers of evidence:
//! 1. webgen corpus: every domain × coverage level, every page, all
//!    three compiled entry points (per-type rounds, one-pass
//!    multi-type, precomputed page-matches) against the naive rounds;
//! 2. hand-picked word-boundary / overlap / phrase-cap edge cases;
//! 3. property tests over randomized gazetteers and texts.

use objectrunner::core::annotate::{
    annotate_type_into, propagate_upwards_into, AnnotationMap, Annotator,
};
use objectrunner::html::{parse, Document};
use objectrunner::knowledge::compiled::{CompiledRecognizerSet, MatchScratch};
use objectrunner::knowledge::gazetteer::Gazetteer;
use objectrunner::knowledge::recognizer::{Recognizer, RecognizerSet, MAX_PHRASE_WORDS};
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};
use proptest::prelude::*;
use std::collections::HashMap;

/// The reference: naive per-type annotation rounds + upward
/// propagation, exactly as the pre-compiled pipeline ran them.
fn naive_map(doc: &Document, set: &RecognizerSet) -> AnnotationMap {
    let mut map = HashMap::new();
    for type_name in set.annotation_order() {
        annotate_type_into(doc, &mut map, set, type_name);
    }
    propagate_upwards_into(doc, &mut map);
    map
}

/// Compiled path 1: memoized per-type rounds (the SOD-guided sampler's
/// shape).
fn compiled_rounds_map(
    doc: &Document,
    set: &RecognizerSet,
    annotator: &Annotator,
) -> AnnotationMap {
    let mut map = HashMap::new();
    for type_name in set.annotation_order() {
        annotator.annotate_type_into(doc, &mut map, type_name);
    }
    propagate_upwards_into(doc, &mut map);
    map
}

/// Compiled path 2: all types in one DOM traversal (the random
/// sampler's shape).
fn compiled_multi_map(doc: &Document, set: &RecognizerSet, annotator: &Annotator) -> AnnotationMap {
    let types = set.annotation_order();
    let mut map = HashMap::new();
    annotator.annotate_types_into(doc, &mut map, &types);
    propagate_upwards_into(doc, &mut map);
    map
}

/// Compiled path 3: precomputed page matches projected per round (the
/// pool-page cache's shape).
fn compiled_cached_map(
    doc: &Document,
    set: &RecognizerSet,
    annotator: &Annotator,
) -> AnnotationMap {
    let matches = annotator.page_matches(doc);
    let mut map = HashMap::new();
    for type_name in set.annotation_order() {
        annotator.annotate_from_matches(&matches, &mut map, type_name);
    }
    propagate_upwards_into(doc, &mut map);
    map
}

/// Assert all three compiled entry points reproduce the naive map on
/// `doc`. `AnnotationMap` equality covers node set, per-node annotation
/// *order*, type names, and bit-identical confidences.
fn assert_page_equivalent(doc: &Document, set: &RecognizerSet, annotator: &Annotator, ctx: &str) {
    let naive = naive_map(doc, set);
    assert_eq!(
        naive,
        compiled_rounds_map(doc, set, annotator),
        "{ctx}: per-type rounds diverged"
    );
    assert_eq!(
        naive,
        compiled_multi_map(doc, set, annotator),
        "{ctx}: one-pass multi diverged"
    );
    assert_eq!(
        naive,
        compiled_cached_map(doc, set, annotator),
        "{ctx}: cached projection diverged"
    );
}

/// Per-text differential: `match_all` vs `Recognizer::recognize` for
/// every type of `set`.
fn assert_text_equivalent(set: &RecognizerSet, text: &str) {
    let compiled = CompiledRecognizerSet::compile(set);
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    compiled.match_all(text, &mut scratch, &mut out);
    for name in set.annotation_order() {
        let naive = set.get(name).expect("type exists").recognize(text);
        let idx = compiled.type_index(name).expect("type compiled");
        let got = out.iter().find(|(t, _)| *t == idx).map(|(_, m)| m);
        match (&naive, &got) {
            (None, None) => {}
            (Some(n), Some(g)) => {
                assert_eq!(n.confidence, g.confidence, "{name} confidence on {text:?}");
                assert_eq!(n.coverage, g.coverage, "{name} coverage on {text:?}");
            }
            _ => panic!("{name} diverged on {text:?}: naive={naive:?} compiled={got:?}"),
        }
    }
}

// ------------------------------------------------------------------
// 1. Webgen corpus: every domain, both coverage levels, every page.
// ------------------------------------------------------------------

#[test]
fn corpus_pages_annotate_identically() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        for &coverage in &[0.2, 1.0] {
            let spec = SiteSpec::clean(
                &format!("annot-eq-{}", domain.name()),
                domain,
                PageKind::List,
                8,
                9_100 + i as u64,
            );
            let pages = generate_site(&spec).pages;
            let set = knowledge::recognizers_for(domain, coverage);
            // One shared annotator across all pages: the memo cache
            // serves repeated texts, which must never change results.
            let annotator = Annotator::new(&set);
            for (p, html) in pages.iter().enumerate() {
                let doc = parse(html);
                let ctx = format!("{} cov={} page {}", domain.name(), coverage, p);
                assert_page_equivalent(&doc, &set, &annotator, &ctx);
            }
        }
    }
}

#[test]
fn warm_cache_changes_nothing() {
    // Annotate the same page twice through one annotator — the second
    // pass is served from the memo and must be identical.
    let domain = Domain::Concerts;
    let spec = SiteSpec::clean("annot-eq-warm", domain, PageKind::List, 3, 77);
    let pages = generate_site(&spec).pages;
    let set = knowledge::recognizers_for(domain, 0.2);
    let annotator = Annotator::new(&set);
    let doc = parse(&pages[0]);
    let cold = compiled_multi_map(&doc, &set, &annotator);
    assert!(annotator.cache_misses() > 0);
    let hits_before = annotator.cache_hits();
    let warm = compiled_multi_map(&doc, &set, &annotator);
    assert_eq!(cold, warm);
    assert!(
        annotator.cache_hits() > hits_before,
        "second pass must hit the memo"
    );
}

// ------------------------------------------------------------------
// 2. Edge cases: word boundaries, cross-type overlap, phrase caps.
// ------------------------------------------------------------------

/// Bands + venues with a shared entry, plus predefined and user-regex
/// types — every engine active at once.
fn edge_set() -> RecognizerSet {
    let mut bands = Gazetteer::new();
    for (term, tf) in [
        ("Metallica", 5.0),
        ("Iron Maiden", 4.0),
        ("Judas Priest", 4.0),
        ("The Iron Maiden Tribute Band Of London", 1.0), // 7 words > MAX_PHRASE_WORDS
        ("One Two Three Four Five Six", 2.0),            // exactly MAX_PHRASE_WORDS
    ] {
        bands.insert(term, 0.9, tf);
    }
    let mut venues = Gazetteer::new();
    for (term, tf) in [("Iron Maiden", 2.0), ("Madison Square Garden", 3.0)] {
        venues.insert(term, 0.8, tf);
    }
    let mut set = RecognizerSet::new();
    set.insert("band", Recognizer::dictionary(bands));
    set.insert("venue", Recognizer::dictionary(venues));
    set.insert("date", Recognizer::predefined_date());
    set.insert(
        "code",
        Recognizer::user_regex(r"[A-Z]{2}-\d{4}", 0.7).expect("pattern compiles"),
    );
    set
}

#[test]
fn punctuation_and_overlap_edge_cases() {
    let set = edge_set();
    assert_eq!(
        MAX_PHRASE_WORDS, 6,
        "edge fixtures assume the paper's phrase cap"
    );
    let texts = [
        // Trailing punctuation: trimmed by the phrase rules.
        "Metallica!",
        "Metallica!!!",
        "(Metallica)",
        "see Metallica live",
        // Same entry in two gazetteers: both types must report.
        "Iron Maiden",
        "Iron Maiden at Madison Square Garden",
        "tonight: Iron Maiden !!",
        // Phrase exactly at MAX_PHRASE_WORDS inside a longer text…
        "One Two Three Four Five Six tonight",
        // …and an entry *over* the cap, which can only match exactly.
        "The Iron Maiden Tribute Band Of London",
        "see The Iron Maiden Tribute Band Of London play",
        // Coverage floor: a 1-word entry inside a 6-word text passes
        // (1/6 = 0.1667 < 0.2 fails), inside a 5-word text passes.
        "Metallica plays here tonight folks",
        "Metallica plays here again tonight, good folks",
        // Regex + date mixing with dictionary content.
        "Metallica on August 8, 2010 ref AB-1234",
        "AB-1234",
        "ab-1234",
        // Junk-only and empty-ish strings.
        "",
        "   ",
        "!!! --- !!!",
        "...Iron Maiden...",
    ];
    let annotator = Annotator::new(&set);
    for text in texts {
        assert_text_equivalent(&set, text);
        let doc = parse(&format!(
            "<body><div><p>{text}</p><p>filler</p></div></body>"
        ));
        assert_page_equivalent(&doc, &set, &annotator, &format!("edge text {text:?}"));
    }
}

// ------------------------------------------------------------------
// 3. Property tests: randomized gazetteers and texts.
// ------------------------------------------------------------------

/// A small closed vocabulary so generated entries overlap generated
/// texts (and each other) often.
const WORDS: &[&str] = &[
    "iron", "maiden", "steel", "panther", "night", "train", "ticket", "hall", "city", "live",
];
const JUNK: &[&str] = &["!", "-", "...", "&", "12", "(x)"];

fn word_seq(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(WORDS.to_vec()), len)
        .prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random two-type gazetteers (overlapping entries included) and
    /// random texts assembled from the same vocabulary plus junk: the
    /// compiled engine must agree with the naive recognizers on every
    /// text, and whole pages must annotate identically.
    #[test]
    fn random_gazetteers_and_texts_agree(
        a_entries in proptest::collection::vec(word_seq(1..4), 1..6),
        b_entries in proptest::collection::vec(word_seq(1..4), 1..6),
        texts in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    proptest::sample::select(WORDS.to_vec()).prop_map(str::to_owned),
                    proptest::sample::select(JUNK.to_vec()).prop_map(str::to_owned),
                    word_seq(1..4),
                ],
                0..8,
            ).prop_map(|parts| parts.join(" ")),
            1..10,
        ),
    ) {
        let mut a = Gazetteer::new();
        for (i, e) in a_entries.iter().enumerate() {
            a.insert(e, 0.9, 1.0 + i as f64);
        }
        let mut b = Gazetteer::new();
        for (i, e) in b_entries.iter().enumerate() {
            b.insert(e, 0.8, 2.0 + i as f64);
        }
        let mut set = RecognizerSet::new();
        set.insert("alpha", Recognizer::dictionary(a));
        set.insert("beta", Recognizer::dictionary(b));
        set.insert("year", Recognizer::predefined_year());
        for text in &texts {
            assert_text_equivalent(&set, text);
        }
        let body: String = texts
            .iter()
            .map(|t| format!("<li><span>{t}</span></li>"))
            .collect();
        let doc = parse(&format!("<body><ul>{body}</ul></body>"));
        let annotator = Annotator::new(&set);
        assert_page_equivalent(&doc, &set, &annotator, "random page");
    }
}
