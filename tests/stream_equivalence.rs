//! Differential guard for the streaming extraction path: on every
//! golden domain and every template-drift tier, `extract_stream` must
//! deliver — page by page, in page order — exactly the instances the
//! materialized `extract_only` path produces, at one worker and at
//! eight. A second test closes the loop through disk: pages written by
//! the streaming corpus writer and read back through `mmap` extract
//! identically to the in-memory strings they came from.

use objectrunner::core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner::core::sample::SampleConfig;
use objectrunner::core::wrapper::Wrapper;
use objectrunner::core::{extract_stream, StreamConfig};
use objectrunner::html::CleanOptions;
use objectrunner::segment::MainBlockChoice;
use objectrunner::webgen::{
    generate_drifted, generate_site, knowledge, write_corpus, CorpusDir, Domain, Drift, PageKind,
    SiteSpec,
};

/// Same corpus family as `golden_equivalence.rs`.
fn spec(domain: Domain, index: usize) -> SiteSpec {
    SiteSpec::clean(
        &format!("golden-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_000 + index as u64,
    )
}

fn induce(domain: Domain, index: usize) -> (Wrapper, Option<MainBlockChoice>, CleanOptions) {
    let cfg = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    };
    let clean = cfg.clean.clone();
    let pipeline =
        Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2)).with_config(cfg);
    let outcome = pipeline
        .run_on_html(&generate_site(&spec(domain, index)).pages)
        .unwrap_or_else(|e| panic!("{} failed to wrap: {e}", domain.name()));
    (outcome.wrapper, outcome.main_block, clean)
}

/// Per-page canonical renderings via the streaming path.
fn streamed(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: &[String],
    threads: usize,
) -> Vec<Vec<String>> {
    let mut got: Vec<(usize, Vec<String>)> = Vec::new();
    extract_stream(
        wrapper,
        main_block,
        clean,
        pages.iter().map(String::as_str),
        &StreamConfig {
            threads: Some(threads),
            ..StreamConfig::default()
        },
        |i, instances| got.push((i, instances.iter().map(|o| o.to_string()).collect())),
    );
    // Page order is part of the contract.
    assert_eq!(
        got.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        (0..pages.len()).collect::<Vec<_>>(),
        "sink saw pages out of order at threads={threads}"
    );
    got.into_iter().map(|(_, page)| page).collect()
}

/// Per-page canonical renderings via the materialized path.
fn materialized(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: &[String],
) -> Vec<Vec<String>> {
    extract_only(wrapper, main_block, clean, pages, None)
        .per_page
        .iter()
        .map(|page| page.iter().map(|o| o.to_string()).collect())
        .collect()
}

#[test]
fn streamed_extraction_matches_materialized_across_drift_tiers() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let (wrapper, main_block, clean) = induce(domain, i);
        for drift in [0.0, 0.3, 0.6, 0.9] {
            // Drifted pages render the same objects through a mutated
            // template — the serving path's hard case: partial matches,
            // dropped pages, shifted markup.
            let pages = generate_drifted(&spec(domain, i), drift).pages;
            let expect = materialized(&wrapper, main_block.as_ref(), &clean, &pages);
            for threads in [1, 8] {
                let got = streamed(&wrapper, main_block.as_ref(), &clean, &pages, threads);
                assert_eq!(
                    got,
                    expect,
                    "{} drift={drift} threads={threads} diverged from batch",
                    domain.name()
                );
            }
        }
    }
}

#[test]
fn streamed_extraction_from_mapped_corpus_matches_in_memory() {
    let domain = Domain::Books;
    let index = 2;
    let (wrapper, main_block, clean) = induce(domain, index);
    let pages = generate_site(&spec(domain, index)).pages;
    let expect = materialized(&wrapper, main_block.as_ref(), &clean, &pages);

    let dir = std::env::temp_dir().join(format!(
        "objectrunner-stream-equivalence-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus(&spec(domain, index), &Drift::NONE, &dir).expect("write corpus");
    let corpus = CorpusDir::open(&dir).expect("open corpus");
    assert_eq!(corpus.len(), pages.len());

    let mut got: Vec<Vec<String>> = Vec::new();
    extract_stream(
        &wrapper,
        main_block.as_ref(),
        &clean,
        corpus.pages().map(|r| r.expect("map page")),
        &StreamConfig {
            threads: Some(8),
            ..StreamConfig::default()
        },
        |_, instances| got.push(instances.iter().map(|o| o.to_string()).collect()),
    );
    assert_eq!(got, expect, "mmap-fed stream diverged from in-memory batch");

    let _ = std::fs::remove_dir_all(&dir);
}
