//! Append-only segment files.
//!
//! A segment is a text file: one header line, then record frames:
//!
//! ```text
//! ORSEG v1\n
//! REC <payload-bytes> <fnv64-hex>\n
//! <payload>\n
//! REC …
//! ```
//!
//! Each frame checksums its own payload (so a single record can be
//! read back and verified at its stored offset without touching the
//! rest of the file), and the manifest additionally checksums every
//! segment's whole committed prefix (so open detects corruption
//! anywhere, including inside frames that happen to still parse).
//! Bytes past the committed length are a torn append from a crash
//! between write and manifest commit; open truncates them away.

use crate::ObjStoreError;
use objectrunner_store::fnv64;

/// Header line every segment starts with.
pub const SEGMENT_HEADER: &str = "ORSEG v1\n";

/// File name of a segment: generation then index, both fixed-width so
/// lexicographic order is append order.
pub fn segment_file_name(generation: u64, index: u64) -> String {
    format!("seg-g{generation:05}-{index:05}.seg")
}

/// Does `name` look like a segment file of any generation? Used to
/// sweep stray files (crashed compactions) that the manifest does not
/// own.
pub fn is_segment_file_name(name: &str) -> bool {
    name.starts_with("seg-g") && (name.ends_with(".seg") || name.ends_with(".seg.tmp"))
}

/// One frame located inside a segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLoc {
    /// Byte offset of the payload within the file.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// FNV-1a/64 of the payload.
    pub checksum: u64,
}

/// Encode one record frame.
pub fn encode_frame(payload: &str) -> String {
    format!(
        "REC {} {:016x}\n{payload}\n",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

/// Verify a payload read back at a stored [`FrameLoc`].
pub fn verify_payload(payload: &str, loc: &FrameLoc, file: &str) -> Result<(), ObjStoreError> {
    let sum = fnv64(payload.as_bytes());
    if sum != loc.checksum {
        return Err(ObjStoreError::Corrupt {
            file: file.to_owned(),
            detail: format!(
                "record at offset {}: checksum {:016x}, expected {:016x}",
                loc.payload_offset, sum, loc.checksum
            ),
        });
    }
    Ok(())
}

/// Parse a segment's committed prefix: verify the header line, then
/// every frame in order, calling `visit(loc, payload)` per record. The
/// frames must exactly fill `data`; anything else — truncated frame,
/// trailing garbage inside the committed region, checksum mismatch —
/// is a typed error and no records are trusted.
pub fn scan(
    data: &str,
    file: &str,
    mut visit: impl FnMut(FrameLoc, &str) -> Result<(), ObjStoreError>,
) -> Result<(), ObjStoreError> {
    if !data.starts_with(SEGMENT_HEADER) {
        return Err(ObjStoreError::BadHeader {
            file: file.to_owned(),
            detail: format!("missing '{}' header", SEGMENT_HEADER.trim_end()),
        });
    }
    let corrupt = |detail: String| ObjStoreError::Corrupt {
        file: file.to_owned(),
        detail,
    };
    let mut pos = SEGMENT_HEADER.len();
    while pos < data.len() {
        let rest = &data[pos..];
        let line_end = rest
            .find('\n')
            .ok_or_else(|| corrupt(format!("truncated frame header at offset {pos}")))?;
        let header = &rest[..line_end];
        let mut parts = header.split(' ');
        if parts.next() != Some("REC") {
            return Err(corrupt(format!("expected REC frame at offset {pos}")));
        }
        let payload_len: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt(format!("bad frame length at offset {pos}")))?;
        let declared_sum = parts
            .next()
            .filter(|_| parts.next().is_none())
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| corrupt(format!("bad frame checksum at offset {pos}")))?;
        let payload_offset = pos + line_end + 1;
        let payload_end = payload_offset + payload_len;
        if payload_end + 1 > data.len() {
            return Err(corrupt(format!(
                "frame at offset {pos} declares {payload_len} payload bytes past committed end"
            )));
        }
        let payload = &data[payload_offset..payload_end];
        if data.as_bytes()[payload_end] != b'\n' {
            return Err(corrupt(format!(
                "frame at offset {pos} payload is not newline-terminated"
            )));
        }
        let actual = fnv64(payload.as_bytes());
        if actual != declared_sum {
            return Err(corrupt(format!(
                "record at offset {payload_offset}: checksum {actual:016x}, expected {declared_sum:016x}"
            )));
        }
        visit(
            FrameLoc {
                payload_offset: payload_offset as u64,
                payload_len: payload_len as u32,
                checksum: declared_sum,
            },
            payload,
        )?;
        pos = payload_end + 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(payloads: &[&str]) -> String {
        let mut s = SEGMENT_HEADER.to_owned();
        for p in payloads {
            s.push_str(&encode_frame(p));
        }
        s
    }

    fn collect(data: &str) -> Result<Vec<(FrameLoc, String)>, ObjStoreError> {
        let mut out = Vec::new();
        scan(data, "test.seg", |loc, payload| {
            out.push((loc, payload.to_owned()));
            Ok(())
        })?;
        Ok(out)
    }

    #[test]
    fn frames_round_trip_with_offsets() {
        let data = segment(&["{\"a\":1}", "", "{\"b\":2}"]);
        let frames = collect(&data).expect("scans");
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].1, "{\"a\":1}");
        assert_eq!(frames[1].1, "");
        for (loc, payload) in &frames {
            let read_back = &data[loc.payload_offset as usize..][..loc.payload_len as usize];
            assert_eq!(read_back, payload, "offsets locate the payload");
            verify_payload(read_back, loc, "test.seg").expect("verifies");
        }
    }

    #[test]
    fn corruption_is_typed_and_loud() {
        let data = segment(&["{\"a\":1}", "{\"b\":2}"]);
        assert!(matches!(
            collect("ORSEG v2\nREC 0\n"),
            Err(ObjStoreError::BadHeader { .. })
        ));
        // Truncation anywhere that is not a frame boundary fails; at a
        // frame boundary the scan sees fewer records (the manifest's
        // committed-prefix checksum catches that case at open).
        let boundary = SEGMENT_HEADER.len() + encode_frame("{\"a\":1}").len();
        for cut in (SEGMENT_HEADER.len() + 1)..data.len() {
            if cut == boundary {
                assert_eq!(collect(&data[..cut]).expect("boundary scans").len(), 1);
            } else {
                assert!(
                    collect(&data[..cut]).is_err(),
                    "truncation at {cut} must fail"
                );
            }
        }
        // A flipped payload byte fails the frame checksum.
        let mut flipped = data.clone().into_bytes();
        let p = data.find("{\"b\"").unwrap();
        flipped[p + 2] ^= 0x01;
        assert!(matches!(
            collect(&String::from_utf8(flipped).unwrap()),
            Err(ObjStoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn segment_names_sort_in_append_order() {
        let names = vec![
            segment_file_name(1, 0),
            segment_file_name(1, 1),
            segment_file_name(2, 0),
            segment_file_name(10, 0),
        ];
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
        assert!(names.iter().all(|n| is_segment_file_name(n)));
        assert!(is_segment_file_name("seg-g00002-00000.seg.tmp"));
        assert!(!is_segment_file_name("MANIFEST"));
    }
}
