//! The paper's running example, end to end: concert objects with a
//! nested location tuple, dictionary recognizers built from a
//! YAGO-like ontology via *semantic neighborhood* lookup (Metallica is
//! a Band, and Band is close to Artist), and extraction over a
//! synthetic concert site.
//!
//! Run with: `cargo run --example concerts`

use objectrunner::core::pipeline::Pipeline;
use objectrunner::knowledge::ontology::Ontology;
use objectrunner::knowledge::recognizer::{Recognizer, RecognizerSet};
use objectrunner::sod::{Multiplicity, SodBuilder};
use objectrunner::webgen::{generate_site, Domain, PageKind, SiteSpec};

fn main() {
    // ── The concert SOD of §IV-A ────────────────────────────────────
    // A two-level tree: artist and date at the top, and a location
    // tuple of theater name and an optional address.
    let sod = SodBuilder::tuple("concert")
        .entity("artist", Multiplicity::One)
        .entity("date", Multiplicity::One)
        .nested(
            SodBuilder::tuple("location")
                .entity("theater", Multiplicity::One)
                .entity("address", Multiplicity::Optional),
        )
        .build();
    println!("SOD: {sod}");
    println!("canonical: {}", objectrunner::sod::canonicalize(&sod));

    // ── An ontology with the paper's class structure ────────────────
    // Bands are instances of Band, not Artist; the neighborhood query
    // still finds them when the user asks for "Artist".
    let ontology = build_ontology();
    let artists = ontology.gazetteer_for("Artist", 1);
    println!(
        "ontology: {} classes, {} facts; Artist neighborhood dictionary: {} instances",
        ontology.class_count(),
        ontology.fact_count(),
        artists.len()
    );
    // Keep only ~20% of the dictionary — the paper's coverage floor.
    let artists = artists.with_coverage(0.2);

    let mut recognizers = RecognizerSet::new();
    recognizers.insert("artist", Recognizer::dictionary(artists));
    recognizers.insert(
        "theater",
        Recognizer::dictionary(
            objectrunner::webgen::knowledge::domain_ontology()
                .gazetteer_for("Venue", 1)
                .with_coverage(0.3),
        ),
    );
    recognizers.insert("date", Recognizer::predefined_date());
    recognizers.insert("address", Recognizer::predefined_address());

    // ── Generate a concert site (list pages) and extract ────────────
    let spec = SiteSpec::clean(
        "upcoming.example",
        Domain::Concerts,
        PageKind::List,
        20,
        2012,
    );
    let source = generate_site(&spec);
    println!(
        "source: {} pages, {} golden objects",
        source.pages.len(),
        source.object_count()
    );

    let outcome = Pipeline::new(sod, recognizers)
        .run_on_html(&source.pages)
        .expect("concert source wraps");
    println!(
        "wrapper: support {}, {} differentiation rounds, quality {:.2}",
        outcome.wrapper.support, outcome.wrapper.rounds, outcome.wrapper.quality
    );
    println!("extracted {} objects; first three:", outcome.objects.len());
    for object in outcome.objects.iter().take(3) {
        println!("  {object}");
    }

    // Compare against the golden standard.
    let extracted = outcome.objects.len();
    let golden = source.object_count();
    println!(
        "coverage: {extracted}/{golden} ({:.1}%)",
        extracted as f64 / golden as f64 * 100.0
    );
}

/// The paper's motivating ontology fragment.
fn build_ontology() -> Ontology {
    // Start from the full synthetic domain ontology and show that the
    // Artist class itself has no direct instances.
    let ontology = objectrunner::webgen::knowledge::domain_ontology();
    assert!(
        ontology.instances_of("Artist").is_empty(),
        "bands are not direct Artist instances — the neighborhood finds them"
    );
    ontology
}
