//! Arena-based DOM with JTidy-style error recovery.
//!
//! The tree builder consumes the tokenizer's stream and always produces
//! a well-formed tree: void elements never take children, implied end
//! tags are inserted (`<li>`, `<p>`, `<option>`, table parts), stray
//! end tags are dropped, and everything left open at EOF is closed.
//!
//! Tag and attribute identities are interned [`Symbol`]s, and every
//! node carries its interned tag-path ([`PathId`]) computed
//! incrementally at insertion — reading a node's path is O(1).

use crate::intern::{FxHashSet, PathId, Symbol};
use crate::stream::Event;
use crate::tokenizer::Token;
use std::fmt;
use std::sync::OnceLock;

/// Index of a node in its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root.
    Document,
    /// An element with its (lower-cased, interned) tag name and
    /// attributes.
    Element {
        name: Symbol,
        attrs: Vec<(Symbol, Symbol)>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment (dropped by cleaning).
    Comment(String),
}

/// One DOM node: payload plus tree links and its interned tag-path.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// Interned tag-path from the root (text/comment nodes contribute
    /// the `#text`/`#comment` pseudo-segments). Computed once at
    /// insertion; detaching a node does not rewrite it.
    pub path: PathId,
}

/// An HTML document as a node arena rooted at [`Document::root`].
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
}

/// Elements that never have content.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Symbol-level check for [`VOID_ELEMENTS`] (hot in tree building and
/// token-stream flattening).
pub fn is_void(tag: Symbol) -> bool {
    static SET: OnceLock<FxHashSet<Symbol>> = OnceLock::new();
    SET.get_or_init(|| VOID_ELEMENTS.iter().map(|t| Symbol::intern(t)).collect())
        .contains(&tag)
}

/// `(child, closes)`: opening `child` implies closing the nearest open
/// element in `closes`.
const IMPLIED_END: &[(&str, &[&str])] = &[
    ("li", &["li"]),
    ("option", &["option"]),
    ("tr", &["tr", "td", "th"]),
    ("td", &["td", "th"]),
    ("th", &["td", "th"]),
    ("p", &["p"]),
    ("dt", &["dt", "dd"]),
    ("dd", &["dt", "dd"]),
];

/// Pseudo-segment for text nodes in tag paths.
pub fn text_segment() -> Symbol {
    static SYM: OnceLock<Symbol> = OnceLock::new();
    *SYM.get_or_init(|| Symbol::intern("#text"))
}

/// Pseudo-segment for comment nodes in tag paths.
pub fn comment_segment() -> Symbol {
    static SYM: OnceLock<Symbol> = OnceLock::new();
    *SYM.get_or_init(|| Symbol::intern("#comment"))
}

fn path_segment(kind: &NodeKind) -> Option<Symbol> {
    match kind {
        NodeKind::Document => None,
        NodeKind::Element { name, .. } => Some(*name),
        NodeKind::Text(_) => Some(text_segment()),
        NodeKind::Comment(_) => Some(comment_segment()),
    }
}

impl Document {
    /// Create a document holding only a root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
                path: PathId::ROOT,
            }],
        }
    }

    /// The synthetic root.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the arena (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Append a new node under `parent` and return its id. The node's
    /// tag-path is derived from the parent's in O(1).
    pub fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let parent_path = self.nodes[parent.index()].path;
        let path = match path_segment(&kind) {
            Some(seg) => parent_path.child(seg),
            None => parent_path,
        };
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            path,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Element tag symbol, or `None` for non-elements.
    pub fn tag(&self, id: NodeId) -> Option<Symbol> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// Element tag name, or `None` for non-elements.
    pub fn tag_name(&self, id: NodeId) -> Option<&'static str> {
        self.tag(id).map(Symbol::as_str)
    }

    /// The node's interned tag-path (O(1); computed at insertion).
    pub fn path_id(&self, id: NodeId) -> PathId {
        self.node(id).path
    }

    /// Attribute lookup on an element node.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&'static str> {
        let name = Symbol::lookup(name)?;
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(a, _)| *a == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Iterate over all node ids in depth-first pre-order from `start`.
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![start],
        }
    }

    /// The concatenated, whitespace-normalized text beneath `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        self.collect_text(id, &mut parts);
        let joined = parts.join(" ");
        normalize_ws(&joined)
    }

    fn collect_text(&self, id: NodeId, out: &mut Vec<String>) {
        match &self.node(id).kind {
            NodeKind::Text(t) => {
                let t = normalize_ws(t);
                if !t.is_empty() {
                    out.push(t);
                }
            }
            NodeKind::Comment(_) => {}
            _ => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Direct children ids (slice, no allocation).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent id, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Detach `id` from its parent. The node stays in the arena but is
    /// no longer reachable from the root.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.node(id).parent {
            self.nodes[p.index()].children.retain(|&c| c != id);
            self.nodes[id.index()].parent = None;
        }
    }

    /// All element descendants with the given tag name.
    pub fn elements_by_tag(&self, start: NodeId, tag: &str) -> Vec<NodeId> {
        let Some(tag) = Symbol::lookup(tag) else {
            return Vec::new();
        };
        self.descendants(start)
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// Count of reachable nodes (excludes detached subtrees).
    pub fn reachable_count(&self) -> usize {
        self.descendants(self.root()).count()
    }
}

/// Depth-first pre-order iterator over node ids.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

/// Collapse runs of whitespace into single spaces and trim.
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Build a well-formed [`Document`] from a token stream.
pub fn build(tokens: Vec<Token>) -> Document {
    let mut builder = TreeBuilder::new();
    for tok in tokens {
        builder.token(tok);
    }
    builder.finish()
}

/// Incremental tree builder: the recovery logic of [`build`], exposed
/// one token (or one tokenizer [`Event`]) at a time so the streaming
/// parse path never materializes a token vector.
pub struct TreeBuilder {
    doc: Document,
    /// Stack of open elements; root is always at the bottom.
    open: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        TreeBuilder::new()
    }
}

impl TreeBuilder {
    /// A builder holding an empty document.
    pub fn new() -> TreeBuilder {
        let doc = Document::new();
        let open = vec![doc.root()];
        TreeBuilder { doc, open }
    }

    /// Feed one owned token.
    pub fn token(&mut self, tok: Token) {
        match tok {
            Token::Doctype(_) => {}
            Token::Comment(c) => self.comment(c),
            Token::Text(t) => self.text(t),
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => self.open_tag(name, attrs, self_closing),
            Token::EndTag { name } => self.close_tag(name),
        }
    }

    /// Feed one tokenizer event (borrowed text is copied here, at the
    /// single point where the tree takes ownership).
    pub fn event(&mut self, event: Event<'_>) {
        match event {
            Event::Doctype(_) => {}
            Event::Comment(c) => self.comment(c.into_owned()),
            Event::Text(t) => self.text(t.into_owned()),
            Event::Open {
                name,
                attrs,
                self_closing,
            } => self.open_tag(name, attrs, self_closing),
            Event::Close { name } => self.close_tag(name),
        }
    }

    /// Open an element (with implied-end recovery).
    pub fn open_tag(&mut self, name: Symbol, attrs: Vec<(Symbol, Symbol)>, self_closing: bool) {
        apply_implied_end(&self.doc, &mut self.open, name);
        let parent = *self.open.last().expect("root always open");
        let id = self
            .doc
            .push_node(parent, NodeKind::Element { name, attrs });
        if !is_void(name) && !self_closing {
            self.open.push(id);
        }
    }

    /// Close the nearest matching open element; stray closes are dropped.
    pub fn close_tag(&mut self, name: Symbol) {
        if let Some(pos) = self
            .open
            .iter()
            .rposition(|&id| self.doc.tag(id) == Some(name))
        {
            self.open.truncate(pos);
        }
    }

    /// Append a text node under the current open element.
    pub fn text(&mut self, t: String) {
        let parent = *self.open.last().expect("root always open");
        self.doc.push_node(parent, NodeKind::Text(t));
    }

    /// Append a comment node under the current open element.
    pub fn comment(&mut self, c: String) {
        let parent = *self.open.last().expect("root always open");
        self.doc.push_node(parent, NodeKind::Comment(c));
    }

    /// Close everything still open and hand back the document.
    pub fn finish(self) -> Document {
        self.doc
    }
}

struct ImpliedEndTable {
    /// `(incoming, closes)` with everything pre-interned.
    rules: Vec<(Symbol, Vec<Symbol>)>,
    boundaries: FxHashSet<Symbol>,
}

fn implied_end_table() -> &'static ImpliedEndTable {
    static TABLE: OnceLock<ImpliedEndTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        // Structural container boundaries implied-end never crosses.
        const BOUNDARIES: &[&str] = &[
            "ul", "ol", "table", "tbody", "thead", "tfoot", "select", "dl", "div", "body", "html",
        ];
        ImpliedEndTable {
            rules: IMPLIED_END
                .iter()
                .map(|(c, closes)| {
                    (
                        Symbol::intern(c),
                        closes.iter().map(|t| Symbol::intern(t)).collect(),
                    )
                })
                .collect(),
            boundaries: BOUNDARIES.iter().map(|t| Symbol::intern(t)).collect(),
        }
    })
}

fn apply_implied_end(doc: &Document, open: &mut Vec<NodeId>, incoming: Symbol) {
    let table = implied_end_table();
    let Some((_, closes)) = table.rules.iter().find(|(c, _)| *c == incoming) else {
        return;
    };
    // Close the nearest open element in `closes`, but never cross a
    // structural container boundary (ul/ol/table/tbody/select/dl/div).
    // Pop the maximal run of closeable elements at the top of the
    // stack (e.g. an incoming <tr> closes both the open <td> and the
    // previous <tr>), stopping at any container boundary.
    let mut cut = open.len();
    for i in (1..open.len()).rev() {
        let Some(tag) = doc.tag(open[i]) else { break };
        if closes.contains(&tag) {
            cut = i;
        } else {
            break;
        }
        if table.boundaries.contains(&tag) {
            break;
        }
    }
    open.truncate(cut);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn tags(doc: &Document) -> Vec<String> {
        doc.descendants(doc.root())
            .filter_map(|id| doc.tag_name(id).map(str::to_owned))
            .collect()
    }

    #[test]
    fn builds_simple_tree() {
        let doc = parse("<html><body><p>hi</p></body></html>");
        assert_eq!(tags(&doc), vec!["html", "body", "p"]);
        assert_eq!(doc.text_content(doc.root()), "hi");
    }

    #[test]
    fn auto_closes_li() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.elements_by_tag(doc.root(), "ul")[0];
        let lis = doc.elements_by_tag(ul, "li");
        assert_eq!(lis.len(), 3);
        // Each li is a direct child of ul, not nested.
        for li in lis {
            assert_eq!(doc.parent(li), Some(ul));
        }
    }

    #[test]
    fn auto_closes_p() {
        let doc = parse("<div><p>one<p>two</div>");
        let ps = doc.elements_by_tag(doc.root(), "p");
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "one");
        assert_eq!(doc.text_content(ps[1]), "two");
    }

    #[test]
    fn li_does_not_close_across_nested_ul() {
        let doc = parse("<ul><li>a<ul><li>a1</ul><li>b</ul>");
        let top_ul = doc.elements_by_tag(doc.root(), "ul")[0];
        let li = Symbol::intern("li");
        let direct_lis: Vec<_> = doc
            .children(top_ul)
            .iter()
            .filter(|&&c| doc.tag(c) == Some(li))
            .collect();
        assert_eq!(direct_lis.len(), 2);
    }

    #[test]
    fn table_cells_auto_close() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let trs = doc.elements_by_tag(doc.root(), "tr");
        assert_eq!(trs.len(), 2);
        assert_eq!(doc.elements_by_tag(trs[0], "td").len(), 2);
        assert_eq!(doc.elements_by_tag(trs[1], "td").len(), 1);
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<p>a<br>b</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.children(p).len(), 3);
        let br = doc.elements_by_tag(doc.root(), "br")[0];
        assert!(doc.children(br).is_empty());
        assert!(is_void(Symbol::intern("br")));
        assert!(!is_void(Symbol::intern("p")));
    }

    #[test]
    fn stray_end_tags_are_dropped() {
        let doc = parse("</div><p>x</p></span>");
        assert_eq!(tags(&doc), vec!["p"]);
        assert_eq!(doc.text_content(doc.root()), "x");
    }

    #[test]
    fn unclosed_tags_close_at_eof() {
        let doc = parse("<div><span>deep");
        assert_eq!(doc.text_content(doc.root()), "deep");
        assert_eq!(tags(&doc), vec!["div", "span"]);
    }

    #[test]
    fn mismatched_close_pops_to_match() {
        // </div> closes both span and div (span is implicitly closed).
        let doc = parse("<div><span>a</div><p>b</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.parent(p), Some(doc.root()));
    }

    #[test]
    fn text_content_normalizes_whitespace() {
        let doc = parse("<p>  a \n b\t</p><p>c</p>");
        assert_eq!(doc.text_content(doc.root()), "a b c");
    }

    #[test]
    fn detach_removes_subtree_from_reachable() {
        let mut doc = parse("<div><p>a</p><p>b</p></div>");
        let before = doc.reachable_count();
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        doc.detach(p);
        assert!(doc.reachable_count() < before);
        assert_eq!(doc.text_content(doc.root()), "b");
    }

    #[test]
    fn attrs_accessible() {
        let doc = parse("<div id=\"main\" class=\"content box\">x</div>");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.attr(div, "id"), Some("main"));
        assert_eq!(doc.attr(div, "class"), Some("content box"));
        assert_eq!(doc.attr(div, "missing"), None);
    }

    #[test]
    fn descendants_preorder() {
        let doc = parse("<a><b></b><c><d></d></c></a>");
        assert_eq!(tags(&doc), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn node_paths_are_incremental() {
        let doc = parse("<html><body><div><span>x</span></div></body></html>");
        let span = doc.elements_by_tag(doc.root(), "span")[0];
        assert_eq!(doc.path_id(span).render(), "html/body/div/span");
        let text = doc.children(span)[0];
        assert_eq!(doc.path_id(text).parent(), Some(doc.path_id(span)));
        assert_eq!(doc.path_id(doc.root()), PathId::ROOT);
        // Same structure on another page -> identical PathId.
        let doc2 = parse("<html><body><div><span>y</span></div></body></html>");
        let span2 = doc2.elements_by_tag(doc2.root(), "span")[0];
        assert_eq!(doc.path_id(span), doc2.path_id(span2));
    }
}
