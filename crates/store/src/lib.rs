//! Wrapper persistence for ObjectRunner.
//!
//! A wrapper learned by the induction pipeline is only usable inside
//! the process that learned it: its matchers reference process-local
//! interner handles. This crate gives wrappers a life beyond that
//! process — [`format`] defines a versioned, checksummed, fully
//! self-contained on-disk representation that externalizes every
//! interned identity and re-interns on load, and [`json`] is the
//! small dependency-free JSON engine underneath it (the workspace
//! vendors no serde).
//!
//! Guarantees the rest of the workspace builds on:
//!
//! * **fixed point** — `save(load(save(w)))` is byte-identical to
//!   `save(w)`: key order, float form and annotation sort are fixed;
//! * **cold-process fidelity** — a wrapper loaded in a fresh process
//!   (empty interners) extracts byte-identical objects to the one
//!   that induced it;
//! * **fail-loud** — a truncated or bit-flipped file is rejected by
//!   the header checksum before any field is trusted.

pub mod format;
pub mod frame;
pub mod json;

pub use format::{
    fnv64, load, load_file, save, save_file, Fnv64, RepairProvenance, StoreError, StoredWrapper,
    FORMAT_VERSION, MIN_SUPPORTED_VERSION,
};
pub use frame::FrameError;
pub use json::{Json, JsonError};
