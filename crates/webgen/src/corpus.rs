//! The evaluation corpus: 49 synthetic sources mirroring the structure
//! of the paper's Table I (5 domains; list and detail sources; quirks
//! assigned to reproduce the per-source phenomena the paper reports).

use crate::domain::Domain;
use crate::site::{generate_site, PageKind, Quirk, SiteSpec, Source};

/// A full corpus specification.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    pub sites: Vec<SiteSpec>,
}

impl CorpusSpec {
    /// Generate every source.
    pub fn generate(&self) -> Vec<Source> {
        self.sites.iter().map(generate_site).collect()
    }

    /// Sites of one domain.
    pub fn domain_sites(&self, domain: Domain) -> Vec<&SiteSpec> {
        self.sites.iter().filter(|s| s.domain == domain).collect()
    }
}

/// Pages generated per source (the paper samples ~50 per source).
pub const PAGES_PER_SOURCE: usize = 30;

fn site(
    name: &str,
    domain: Domain,
    kind: PageKind,
    optional_present: bool,
    quirks: &[Quirk],
    seed: u64,
) -> SiteSpec {
    let mut spec = SiteSpec::clean(name, domain, kind, PAGES_PER_SOURCE, seed);
    spec.optional_present = optional_present;
    spec.quirks = quirks.to_vec();
    spec
}

/// The 49-source corpus mirroring Table I.
///
/// Roughly half the sites use per-attribute *distinct markup* (the
/// attributes are separable by DOM path alone) and half use *uniform
/// cells* (structure-only systems cannot tell the columns apart) —
/// the mix is tuned per domain to the paper's reported ExAlg results.
///
/// Quirk assignment reflects the paper's reported per-source outcomes:
/// sources the paper lists as partially correct get `SharedTextNode`
/// or `VaryingAuthorMarkup`; sources reported incorrect get
/// `GroupedColumns`; `emusic` (row 19) is `Unstructured` (discarded);
/// book/publication list sources carry `FixedRecordCount` — the "too
/// regular" lists on which RoadRunner collapses; concert sources embed
/// the repeated-city decoy of the paper's running example.
pub fn paper_corpus() -> CorpusSpec {
    use Domain::*;
    use PageKind::*;
    use Quirk::*;
    let mut sites = Vec::new();
    let mut seed = 1000u64;
    let mut next = |name: &str,
                    domain: Domain,
                    kind: PageKind,
                    optional: bool,
                    quirks: &[Quirk]|
     -> SiteSpec {
        seed += 7;
        let spec = site(name, domain, kind, optional, quirks, seed);
        // List sources mix in record-free interstitial pages (the
        // reason sample selection matters — Table II).
        if kind == PageKind::List && !quirks.contains(&Quirk::Unstructured) {
            spec.with_interstitials(0.25)
        } else {
            spec
        }
    };

    // --- Concerts (9 sources; rows 1–9) ---
    sites.push(next(
        "zvents (detail)",
        Concerts,
        Detail,
        true,
        &[NoiseBlocks],
    ));
    sites.push(next(
        "zvents (list)",
        Concerts,
        List,
        true,
        &[DecoyRepeatedValue],
    ));
    sites.push(next("upcoming (detail)", Concerts, Detail, true, &[]));
    sites.push(next(
        "upcoming (list)",
        Concerts,
        List,
        true,
        &[GroupedColumns],
    ));
    sites.push(next(
        "eventful (detail)",
        Concerts,
        Detail,
        true,
        &[SharedTextNode],
    ));
    sites.push(
        next(
            "eventful (list)",
            Concerts,
            List,
            false,
            &[DecoyRepeatedValue],
        )
        .with_distinct_markup(),
    );
    sites.push(next(
        "eventorb (detail)",
        Concerts,
        Detail,
        true,
        &[NoiseBlocks],
    ));
    sites.push(next("eventorb (list)", Concerts, List, true, &[]).with_distinct_markup());
    sites.push(next("bandsintown (detail)", Concerts, Detail, true, &[]));

    // --- Albums (10 sources; rows 10–19) ---
    sites.push(next("amazon-albums", Albums, List, true, &[NoiseBlocks]).with_distinct_markup());
    sites.push(next("101cd", Albums, List, false, &[SharedTextNode]));
    sites.push(next("towerrecords", Albums, List, true, &[]).with_distinct_markup());
    sites.push(next(
        "walmart-albums",
        Albums,
        List,
        true,
        &[SharedTextNode],
    ));
    sites.push(next("cdunivers", Albums, List, true, &[]).with_distinct_markup());
    sites.push(next("hmv", Albums, List, true, &[NoiseBlocks]));
    sites.push(next("play", Albums, List, false, &[]).with_distinct_markup());
    sites.push(next("sanity", Albums, List, true, &[]).with_distinct_markup());
    sites.push(next("secondspin", Albums, List, true, &[]).with_distinct_markup());
    sites.push(next("emusic", Albums, List, true, &[Unstructured]));

    // --- Books (10 sources; rows 20–29) ---
    sites.push(next(
        "amazon-books",
        Books,
        List,
        true,
        &[VaryingAuthorMarkup, FixedRecordCount(8)],
    ));
    sites.push(next("bn", Books, List, true, &[FixedRecordCount(10)]));
    sites.push(next("buy", Books, List, false, &[FixedRecordCount(6)]).with_distinct_markup());
    sites.push(next("abebooks", Books, List, false, &[]).with_distinct_markup());
    sites.push(next("walmart-books", Books, List, true, &[GroupedColumns]));
    sites.push(next("abc", Books, List, true, &[FixedRecordCount(9)]).with_distinct_markup());
    sites.push(next("bookdepository", Books, List, true, &[]).with_distinct_markup());
    sites.push(
        next("booksamillion", Books, List, true, &[FixedRecordCount(10)]).with_distinct_markup(),
    );
    sites.push(next("bookstore", Books, List, false, &[GroupedColumns]));
    sites.push(next("powells", Books, List, false, &[FixedRecordCount(8)]));

    // --- Publications (10 sources; rows 30–39) ---
    sites.push(
        next("acm", Publications, List, false, &[FixedRecordCount(10)]).with_distinct_markup(),
    );
    sites.push(next("dblp", Publications, List, false, &[]).with_distinct_markup());
    sites.push(
        next(
            "cambridge",
            Publications,
            List,
            false,
            &[FixedRecordCount(8)],
        )
        .with_distinct_markup(),
    );
    sites.push(next("citebase", Publications, List, false, &[]));
    sites.push(next(
        "citeseer",
        Publications,
        List,
        false,
        &[SharedTextNode],
    ));
    sites.push(next(
        "DivaPortal",
        Publications,
        List,
        false,
        &[FixedRecordCount(10)],
    ));
    sites.push(next(
        "GoogleScholar",
        Publications,
        List,
        false,
        &[GroupedColumns],
    ));
    sites.push(next(
        "elsevier",
        Publications,
        List,
        false,
        &[FixedRecordCount(9)],
    ));
    sites.push(next(
        "IngentaConnect",
        Publications,
        List,
        false,
        &[GroupedColumns],
    ));
    sites.push(next(
        "IowaState",
        Publications,
        List,
        false,
        &[GroupedColumns],
    ));

    // --- Cars (10 sources; rows 40–49) ---
    sites.push(next("amazoncars", Cars, List, false, &[]).with_distinct_markup());
    sites.push(next("automotive", Cars, List, false, &[SharedTextNode]).with_distinct_markup());
    sites.push(next("cars", Cars, List, false, &[]).with_distinct_markup());
    sites.push(next("carmax", Cars, List, false, &[NoiseBlocks]).with_distinct_markup());
    sites.push(next("autonation", Cars, List, false, &[]).with_distinct_markup());
    sites.push(next("carsshop", Cars, List, false, &[]).with_distinct_markup());
    sites.push(next("carsdirect", Cars, List, false, &[SharedTextNode]).with_distinct_markup());
    sites.push(next("usedcars", Cars, List, false, &[]).with_distinct_markup());
    sites.push(next("autoweb", Cars, List, false, &[NoiseBlocks]).with_distinct_markup());
    sites.push(next("autotrader", Cars, List, false, &[]).with_distinct_markup());

    CorpusSpec { sites }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_49_sources() {
        let corpus = paper_corpus();
        assert_eq!(corpus.sites.len(), 49);
    }

    #[test]
    fn domain_counts_match_table1() {
        let corpus = paper_corpus();
        assert_eq!(corpus.domain_sites(Domain::Concerts).len(), 9);
        assert_eq!(corpus.domain_sites(Domain::Albums).len(), 10);
        assert_eq!(corpus.domain_sites(Domain::Books).len(), 10);
        assert_eq!(corpus.domain_sites(Domain::Publications).len(), 10);
        assert_eq!(corpus.domain_sites(Domain::Cars).len(), 10);
    }

    #[test]
    fn seeds_are_distinct() {
        let corpus = paper_corpus();
        let mut seeds: Vec<u64> = corpus.sites.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 49);
    }

    #[test]
    fn generation_of_one_source_works() {
        let corpus = paper_corpus();
        let source = generate_site(&corpus.sites[1]);
        assert_eq!(source.pages.len(), PAGES_PER_SOURCE);
        assert!(source.object_count() > PAGES_PER_SOURCE);
    }

    #[test]
    fn exactly_one_unstructured_source() {
        let corpus = paper_corpus();
        let n = corpus
            .sites
            .iter()
            .filter(|s| s.has(Quirk::Unstructured))
            .count();
        assert_eq!(n, 1);
    }
}
