//! Entity pools and value generators for the five domains.
//!
//! Pools are word-combinatorial so each domain has hundreds of
//! distinct, realistic-looking instances; all generation is seeded.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Band/artist name components (disjoint from the title vocabulary so
/// artists and titles never collide).
const ARTIST_FIRST: &[&str] = &[
    "Obsidian", "Electric", "Midnight", "Silver", "Velvet", "Iron", "Neon", "Golden", "Savage",
    "Lunar", "Atomic", "Royal", "Phantom", "Wild", "Static", "Cosmic", "Broken", "Hollow",
];
const ARTIST_SECOND: &[&str] = &[
    "Tigers", "Horizon", "Echoes", "Monarchs", "Serpents", "Parade", "Union", "Voltage", "Harvest",
    "Cascade", "Empire", "Comets", "Engines", "Wolves", "Lanterns", "Riders",
];

/// Venue name components.
const VENUE_FIRST: &[&str] = &[
    "Bowery",
    "Riverside",
    "Grand",
    "Apollo",
    "Majestic",
    "Orpheum",
    "Paramount",
    "Crescent",
    "Liberty",
    "Sunset",
    "Harbor",
    "Summit",
];
const VENUE_SECOND: &[&str] = &[
    "Ballroom",
    "Theater",
    "Hall",
    "Arena",
    "Pavilion",
    "Lounge",
    "Amphitheater",
    "Club",
];

/// Street name components for addresses.
const STREET_NAMES: &[&str] = &[
    "Delancey",
    "Penn",
    "Mercer",
    "Bleecker",
    "Spring",
    "Mulberry",
    "Orchard",
    "Stanton",
    "Rivington",
    "Greene",
    "Bowery",
    "Houston",
    "Prince",
    "Crosby",
];
const STREET_SUFFIX: &[&str] = &["St", "Street", "Ave", "Avenue", "Plaza", "Blvd"];

/// Cities (the decoy pool — repeated values that look like template).
pub const CITIES: &[&str] = &[
    "New York City",
    "Boston",
    "Chicago",
    "Austin",
    "Seattle",
    "Portland",
    "Denver",
    "Nashville",
    "San Diego",
    "Atlanta",
];

/// Title components for albums, books and publications.
const TITLE_ADJ: &[&str] = &[
    "Silent",
    "Endless",
    "Fading",
    "Radiant",
    "Forgotten",
    "Distant",
    "Burning",
    "Frozen",
    "Hidden",
    "Shattered",
    "Gentle",
    "Restless",
    "Crimson",
    "Weightless",
];
const TITLE_NOUN: &[&str] = &[
    "Rivers", "Horizons", "Gardens", "Letters", "Shadows", "Machines", "Tides", "Winters",
    "Voices", "Mirrors", "Orchards", "Signals", "Harbors", "Meadows",
];

/// Person name components (authors).
const PERSON_FIRST: &[&str] = &[
    "Jane", "Abraham", "Fiona", "Hamilton", "Mary", "Oliver", "Clara", "Edmund", "Nadia", "Victor",
    "Helena", "Marcus", "Ingrid", "Tobias", "Amara", "Felix",
];
const PERSON_LAST: &[&str] = &[
    "Austen",
    "Verghese",
    "Stafford",
    "Mabie",
    "Frey",
    "Calloway",
    "Brennan",
    "Okafor",
    "Lindqvist",
    "Moreau",
    "Takahashi",
    "Whitfield",
    "Arroyo",
    "Keller",
    "Novak",
    "Osei",
];

/// Car brands + models.
const CAR_BRANDS: &[&str] = &[
    "Toyota",
    "Honda",
    "Ford",
    "Chevrolet",
    "Nissan",
    "Subaru",
    "Mazda",
    "Volkswagen",
    "Hyundai",
    "Kia",
    "Volvo",
    "Audi",
];
const CAR_MODELS: &[&str] = &[
    "Meridian", "Vista", "Pulse", "Traverse", "Summit", "Cadence", "Orbit", "Drift", "Beacon",
    "Strata",
];

/// Publication venue names (for detail noise).
const PUB_VENUES: &[&str] = &[
    "ICDE", "VLDB", "SIGMOD", "WWW", "KDD", "EDBT", "CIKM", "WSDM",
];

const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];
const WEEKDAYS: &[&str] = &[
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// All artist names (the full pool, used to build gazetteers). Half
/// the names carry a "The" prefix and half don't — a uniform prefix
/// would be indistinguishable from template text.
pub fn all_artists() -> Vec<String> {
    let mut out = Vec::with_capacity(ARTIST_FIRST.len() * ARTIST_SECOND.len());
    for (i, x) in ARTIST_FIRST.iter().enumerate() {
        for (j, y) in ARTIST_SECOND.iter().enumerate() {
            if (i + j) % 2 == 0 {
                out.push(format!("The {x} {y}"));
            } else {
                out.push(format!("{x} {y}"));
            }
        }
    }
    out
}

/// All publication titles: a closed pattern space over the title
/// vocabulary (so dictionary recognizers can enumerate it). Several
/// surface patterns keep any single scaffold word from looking like
/// template text.
pub fn all_publication_titles() -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in TITLE_ADJ.iter().enumerate() {
        for (j, n) in TITLE_NOUN.iter().enumerate() {
            match (i + j) % 4 {
                0 => {
                    let n2 = TITLE_NOUN[(i + 2 * j + 1) % TITLE_NOUN.len()];
                    out.push(format!("On {a} {n} in Large-Scale {n2}"));
                }
                1 => {
                    let n2 = TITLE_NOUN[(2 * i + j + 3) % TITLE_NOUN.len()];
                    out.push(format!("{a} {n} for Scalable {n2}"));
                }
                2 => out.push(format!("Towards {a} {n}")),
                _ => out.push(format!("A Study of {a} {n}")),
            }
        }
    }
    out
}

/// All venue names.
pub fn all_venues() -> Vec<String> {
    cross(VENUE_FIRST, VENUE_SECOND, "", " ")
}

/// All album/book/publication titles.
pub fn all_titles() -> Vec<String> {
    cross(TITLE_ADJ, TITLE_NOUN, "", " ")
}

/// All person (author) names.
pub fn all_people() -> Vec<String> {
    cross(PERSON_FIRST, PERSON_LAST, "", " ")
}

/// All car brand names.
pub fn all_car_brands() -> Vec<String> {
    CAR_BRANDS.iter().map(|s| (*s).to_owned()).collect()
}

fn cross(a: &[&str], b: &[&str], prefix: &str, sep: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push(format!("{prefix}{x}{sep}{y}"));
        }
    }
    out
}

/// Seeded value factory for one site.
pub struct ValueGen<'a> {
    pub rng: &'a mut StdRng,
}

impl<'a> ValueGen<'a> {
    pub fn new(rng: &'a mut StdRng) -> Self {
        ValueGen { rng }
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        *pool.choose(self.rng).expect("non-empty pool")
    }

    fn pick_owned(&mut self, pool: &[String]) -> String {
        pool.choose(self.rng).expect("non-empty pool").clone()
    }

    /// An artist/band name.
    pub fn artist(&mut self) -> String {
        self.pick_owned(&all_artists())
    }

    /// A venue name.
    pub fn venue(&mut self) -> String {
        self.pick_owned(&all_venues())
    }

    /// A street address, e.g. "237 Mercer Street".
    pub fn street_address(&mut self) -> String {
        let num: u32 = self.rng.gen_range(1..999);
        let name = self.pick(STREET_NAMES);
        let suffix = self.pick(STREET_SUFFIX);
        format!("{num} {name} {suffix}")
    }

    /// A city (decoy pool).
    pub fn city(&mut self) -> String {
        self.pick(CITIES).to_owned()
    }

    /// A concert-style date, e.g. "Saturday May 29, 2010 7:00pm".
    pub fn concert_date(&mut self) -> String {
        let wd = self.pick(WEEKDAYS);
        let m = self.pick(MONTHS);
        let day: u32 = self.rng.gen_range(1..29);
        let year: u32 = self.rng.gen_range(2008..2013);
        let hour: u32 = self.rng.gen_range(1..12);
        let half = if self.rng.gen_bool(0.8) { "pm" } else { "am" };
        format!("{wd} {m} {day}, {year} {hour}:00{half}")
    }

    /// A short date, e.g. "May 29, 2010".
    pub fn short_date(&mut self) -> String {
        let m = self.pick(MONTHS);
        let day: u32 = self.rng.gen_range(1..29);
        let year: u32 = self.rng.gen_range(1995..2013);
        format!("{m} {day}, {year}")
    }

    /// A price, e.g. "$12.99".
    pub fn price(&mut self) -> String {
        let dollars: u32 = self.rng.gen_range(5..80);
        let cents: u32 = self.rng.gen_range(0..100);
        format!("${dollars}.{cents:02}")
    }

    /// A car price, e.g. "$18750.00".
    pub fn car_price(&mut self) -> String {
        let thousands: u32 = self.rng.gen_range(4..60);
        let rest: u32 = self.rng.gen_range(0..10) * 50;
        format!("${}{rest:03}.00", thousands)
    }

    /// A title (albums, books, publications).
    pub fn title(&mut self) -> String {
        self.pick_owned(&all_titles())
    }

    /// A publication title (drawn from the closed pattern space).
    pub fn publication_title(&mut self) -> String {
        self.pick_owned(&all_publication_titles())
    }

    /// A person name.
    pub fn person(&mut self) -> String {
        self.pick_owned(&all_people())
    }

    /// A set of 1..=max distinct authors.
    pub fn authors(&mut self, max: usize) -> Vec<String> {
        let n = self.rng.gen_range(1..=max.max(1));
        let mut pool = all_people();
        pool.shuffle(self.rng);
        pool.truncate(n);
        pool
    }

    /// A car description, e.g. "Toyota Meridian".
    pub fn car(&mut self) -> (String, String) {
        let brand = self.pick(CAR_BRANDS).to_owned();
        let model = self.pick(CAR_MODELS);
        (brand.clone(), format!("{brand} {model}"))
    }

    /// A publication venue string.
    pub fn pub_venue(&mut self) -> String {
        let v = self.pick(PUB_VENUES);
        let year: u32 = self.rng.gen_range(2001..2012);
        format!("{v} {year}")
    }

    /// Filler prose for noise blocks and unstructured pages.
    pub fn prose(&mut self, words: usize) -> String {
        const FILLER: &[&str] = &[
            "special",
            "offers",
            "browse",
            "catalog",
            "featured",
            "today",
            "popular",
            "staff",
            "picks",
            "weekly",
            "newsletter",
            "community",
            "reviews",
            "guide",
            "selection",
            "exclusive",
            "discover",
            "trending",
            "archive",
            "editorial",
        ];
        (0..words)
            .map(|_| self.pick(FILLER))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_are_large_and_distinct() {
        let artists = all_artists();
        assert!(artists.len() >= 200);
        let mut dedup = artists.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), artists.len());
        assert!(all_people().len() >= 200);
        assert!(all_titles().len() >= 150);
        assert!(all_venues().len() >= 80);
    }

    #[test]
    fn generation_is_deterministic() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut v = ValueGen::new(&mut rng);
            (v.artist(), v.concert_date(), v.price(), v.authors(3))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dates_match_the_predefined_recognizer() {
        use objectrunner_knowledge::recognizer::Recognizer;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = ValueGen::new(&mut rng);
        let rec = Recognizer::predefined_date();
        for _ in 0..50 {
            let d = v.concert_date();
            assert!(rec.recognize(&d).is_some(), "unrecognized date: {d}");
            let s = v.short_date();
            assert!(rec.recognize(&s).is_some(), "unrecognized date: {s}");
        }
    }

    #[test]
    fn prices_match_the_predefined_recognizer() {
        use objectrunner_knowledge::recognizer::Recognizer;
        let mut rng = StdRng::seed_from_u64(6);
        let mut v = ValueGen::new(&mut rng);
        let rec = Recognizer::predefined_price();
        for _ in 0..50 {
            let p = v.price();
            assert!(rec.recognize(&p).is_some(), "unrecognized price: {p}");
            let c = v.car_price();
            assert!(rec.recognize(&c).is_some(), "unrecognized price: {c}");
        }
    }

    #[test]
    fn addresses_match_the_predefined_recognizer() {
        use objectrunner_knowledge::recognizer::Recognizer;
        let mut rng = StdRng::seed_from_u64(7);
        let mut v = ValueGen::new(&mut rng);
        let rec = Recognizer::predefined_address();
        for _ in 0..50 {
            let a = v.street_address();
            assert!(rec.recognize(&a).is_some(), "unrecognized address: {a}");
        }
    }

    #[test]
    fn authors_are_distinct() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v = ValueGen::new(&mut rng);
        for _ in 0..20 {
            let auths = v.authors(4);
            let mut dedup = auths.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), auths.len());
        }
    }
}
