//! Drive the three systems over a generated source and normalize
//! their outputs for classification.

use crate::classify::{align_fields, classify_source, ExtractedObject, SourceReport};
use objectrunner_baselines::exalg::{self, ExalgConfig};
use objectrunner_baselines::roadrunner;
use objectrunner_core::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineStats};
use objectrunner_core::sample::SampleStrategy;
use objectrunner_html::{clean_document, parse, CleanOptions, Document};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_sod::Instance;
use objectrunner_webgen::{knowledge, Source};
use std::sync::atomic::{AtomicBool, Ordering};

/// The compared systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    ObjectRunner,
    ExAlg,
    RoadRunner,
}

impl SystemId {
    /// Table III abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            SystemId::ObjectRunner => "OR",
            SystemId::ExAlg => "EA",
            SystemId::RoadRunner => "RR",
        }
    }
}

/// One system's outcome on one source.
#[derive(Debug, Clone)]
pub struct SourceRun {
    pub system: SystemId,
    pub report: SourceReport,
    /// Wrapping wall-clock in microseconds (ObjectRunner only).
    pub wrapping_micros: Option<u128>,
    /// Full pipeline stats — stage timings included (ObjectRunner
    /// only; `None` when the source was discarded or a baseline ran).
    pub stats: Option<PipelineStats>,
}

/// When set, every ObjectRunner run prints one machine-readable line
/// per source to stdout: `{"source":..,"system":"OR","stats":{..}}`.
/// Toggled by the eval binaries' `--stats-json` flag.
static STATS_JSON: AtomicBool = AtomicBool::new(false);

/// Enable/disable per-source stats-JSON emission process-wide.
pub fn set_stats_json(on: bool) {
    STATS_JSON.store(on, Ordering::Relaxed);
}

/// Is `--stats-json` emission on?
pub fn stats_json_enabled() -> bool {
    STATS_JSON.load(Ordering::Relaxed)
}

fn emit_stats_json(source: &Source, system: SystemId, stats: &PipelineStats) {
    if stats_json_enabled() {
        println!(
            "{}",
            objectrunner_obs::export::stats_json_line(
                &source.spec.name,
                system.abbrev(),
                &stats.snapshot(),
            )
        );
    }
}

/// Default dictionary coverage (the paper's ≥20% condition).
pub const DEFAULT_COVERAGE: f64 = 0.2;

/// Sample size used everywhere (the paper's "approximately 20 pages").
pub const SAMPLE_SIZE: usize = 20;

/// Run ObjectRunner on a source.
pub fn run_objectrunner(source: &Source, strategy: SampleStrategy) -> SourceRun {
    run_objectrunner_with(source, strategy, DEFAULT_COVERAGE)
}

/// Run ObjectRunner with an explicit dictionary coverage (Appendix A).
pub fn run_objectrunner_with(
    source: &Source,
    strategy: SampleStrategy,
    coverage: f64,
) -> SourceRun {
    let recognizers = knowledge::recognizers_for(source.spec.domain, coverage);
    run_objectrunner_custom(source, strategy, recognizers, (3, 5), None)
}

/// Fully parameterized ObjectRunner run (used by the support sweep).
/// `threads` pins the worker-pool size; `None` defers to
/// `OBJECTRUNNER_THREADS` / available parallelism.
pub fn run_objectrunner_custom(
    source: &Source,
    strategy: SampleStrategy,
    recognizers: RecognizerSet,
    support_range: (usize, usize),
    threads: Option<usize>,
) -> SourceRun {
    let sod = source.spec.domain.sod();
    let config = PipelineConfig {
        strategy,
        support_range,
        threads,
        sample: objectrunner_core::sample::SampleConfig {
            sample_size: SAMPLE_SIZE,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(sod.clone(), recognizers).with_config(config);
    match pipeline.run_on_html(&source.pages) {
        Ok(outcome) => {
            // Re-run per page to keep page boundaries for pairing.
            let per_page: Vec<Vec<ExtractedObject>> = source
                .pages
                .iter()
                .map(|html| {
                    let mut doc = parse(html);
                    clean_document(&mut doc, &CleanOptions::default());
                    outcome
                        .wrapper
                        .extract_document(&doc)
                        .iter()
                        .map(|inst| instance_to_object(inst, &sod))
                        .collect()
                })
                .collect();
            emit_stats_json(source, SystemId::ObjectRunner, &outcome.stats);
            SourceRun {
                system: SystemId::ObjectRunner,
                report: classify_source(source, &per_page, false),
                wrapping_micros: Some(outcome.stats.wrapping_micros),
                stats: Some(outcome.stats),
            }
        }
        Err(PipelineError::Sample(_)) => SourceRun {
            system: SystemId::ObjectRunner,
            report: classify_source(source, &[], true),
            wrapping_micros: None,
            stats: None,
        },
        Err(PipelineError::Wrapper(_)) => SourceRun {
            system: SystemId::ObjectRunner,
            report: classify_source(source, &[], false),
            wrapping_micros: None,
            stats: None,
        },
    }
}

/// Convert an extracted [`Instance`] into the typed evaluation form.
pub fn instance_to_object(inst: &Instance, sod: &objectrunner_sod::Sod) -> ExtractedObject {
    let mut obj = ExtractedObject::default();
    for attr in sod.entity_types() {
        let mut values = Vec::new();
        inst.values_of_type(attr, &mut values);
        let owned: Vec<String> = values.into_iter().map(str::to_owned).collect();
        obj.push_all(attr, &owned);
    }
    obj
}

fn cleaned_docs(source: &Source) -> Vec<Document> {
    source
        .pages
        .iter()
        .map(|h| {
            let mut d = parse(h);
            clean_document(&mut d, &CleanOptions::default());
            d
        })
        .collect()
}

/// The induction sample handed to the baselines: the paper's authors
/// collected same-template *record* pages for the ExAlg/RoadRunner
/// prototypes ("the pages selected for each source are produced by the
/// same template", §IV-A), so the baselines receive the record-bearing
/// pages. ObjectRunner gets no such curation — its own Algorithm 1
/// filters the raw crawl.
fn curated_sample(source: &Source, docs: &[Document], k: usize) -> Vec<Document> {
    docs.iter()
        .zip(source.truth.iter())
        .filter(|(_, gold)| !gold.is_empty())
        .map(|(d, _)| d.clone())
        .take(k)
        .collect()
}

/// Run the ExAlg baseline on a source.
pub fn run_exalg(source: &Source) -> SourceRun {
    let docs = cleaned_docs(source);
    let sample = curated_sample(source, &docs, SAMPLE_SIZE);
    let flat_pages: Vec<Vec<objectrunner_baselines::FlatRecord>> =
        match exalg::induce(&sample, &ExalgConfig::default()) {
            Ok(wrapper) => docs.iter().map(|d| wrapper.extract(d)).collect(),
            Err(_) => docs.iter().map(|_| Vec::new()).collect(),
        };
    let typed = align_fields(source, &flat_pages);
    SourceRun {
        system: SystemId::ExAlg,
        report: classify_source(source, &typed, false),
        wrapping_micros: None,
        stats: None,
    }
}

/// Run the RoadRunner baseline on a source.
pub fn run_roadrunner(source: &Source) -> SourceRun {
    let docs = cleaned_docs(source);
    // RoadRunner generalizes pairwise; a moderate sample keeps the
    // alignment tractable, as in the original system.
    let sample = curated_sample(source, &docs, 10);
    let flat_pages: Vec<Vec<objectrunner_baselines::FlatRecord>> = match roadrunner::induce(&sample)
    {
        Ok(wrapper) => docs.iter().map(|d| wrapper.extract(d)).collect(),
        Err(_) => docs.iter().map(|_| Vec::new()).collect(),
    };
    let typed = align_fields(source, &flat_pages);
    SourceRun {
        system: SystemId::RoadRunner,
        report: classify_source(source, &typed, false),
        wrapping_micros: None,
        stats: None,
    }
}

/// Run one system by id.
pub fn run_system(system: SystemId, source: &Source) -> SourceRun {
    match system {
        SystemId::ObjectRunner => run_objectrunner(source, SampleStrategy::SodBased),
        SystemId::ExAlg => run_exalg(source),
        SystemId::RoadRunner => run_roadrunner(source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};

    fn quick_source(domain: Domain) -> Source {
        let mut spec = SiteSpec::clean("unit", domain, PageKind::List, 10, 77);
        spec.style = 0;
        generate_site(&spec)
    }

    #[test]
    fn objectrunner_runs_on_cars() {
        let source = quick_source(Domain::Cars);
        let run = run_objectrunner(&source, SampleStrategy::SodBased);
        assert!(!run.report.discarded);
        assert!(run.report.pc() > 0.5, "Pc = {}", run.report.pc());
    }

    #[test]
    fn exalg_runs_on_cars() {
        let source = quick_source(Domain::Cars);
        let run = run_exalg(&source);
        assert!(run.report.pp() > 0.3, "Pp = {}", run.report.pp());
    }

    #[test]
    fn roadrunner_runs_on_cars() {
        let source = quick_source(Domain::Cars);
        let run = run_roadrunner(&source);
        // Varying record counts: RR should find the iterator and do
        // reasonably well here.
        assert!(run.report.pp() > 0.3, "Pp = {}", run.report.pp());
    }

    #[test]
    fn objectrunner_discards_unstructured() {
        let spec = SiteSpec::clean("junk", Domain::Albums, PageKind::List, 8, 5)
            .with_quirk(objectrunner_webgen::Quirk::Unstructured);
        let source = generate_site(&spec);
        let run = run_objectrunner(&source, SampleStrategy::SodBased);
        assert!(run.report.discarded);
    }
}
