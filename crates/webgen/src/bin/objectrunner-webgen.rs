//! `objectrunner-webgen` — write a synthetic corpus to disk, streaming.
//!
//! ```text
//! objectrunner-webgen --domain cars --name lot --out-dir corpus/ \
//!                     --pages 1000000 [--seed N] [--style K] [--drift S] \
//!                     [--detail] [--interstitial F]
//! ```
//!
//! Pages are generated and written one at a time (`page-%06d.html`
//! plus `manifest.json`), so corpus size is bounded by disk, not
//! memory. The same arguments always produce byte-identical files.

use objectrunner_webgen::{write_corpus, Domain, Drift, PageKind, SiteSpec};
use std::path::PathBuf;

const HELP: &str = "\
objectrunner-webgen — deterministic streaming corpus generator

USAGE:
  objectrunner-webgen --domain D --name NAME --out-dir DIR --pages N
                      [--seed N] [--style 0..2] [--drift 0..1]
                      [--detail] [--interstitial F]

Writes page-%06d.html files plus manifest.json, one page in memory at
a time. Domains: concerts, albums, books, publications, cars.
";

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let domain = match flag(args, "--domain").as_deref().and_then(Domain::by_name) {
        Some(d) => d,
        None => {
            eprintln!("missing or unknown --domain (see --help)");
            return 2;
        }
    };
    let name = match flag(args, "--name") {
        Some(n) => n,
        None => {
            eprintln!("missing --name");
            return 2;
        }
    };
    let out_dir = match flag(args, "--out-dir") {
        Some(o) => PathBuf::from(o),
        None => {
            eprintln!("missing --out-dir");
            return 2;
        }
    };
    let pages: usize = match flag(args, "--pages").map(|s| s.parse()) {
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("bad --pages");
            return 2;
        }
        None => {
            eprintln!("missing --pages");
            return 2;
        }
    };
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(17_000);
    let drift = Drift::new(
        flag(args, "--drift")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0),
    );
    let kind = if args.iter().any(|a| a == "--detail") {
        PageKind::Detail
    } else {
        PageKind::List
    };

    let mut spec = SiteSpec::clean(&name, domain, kind, pages, seed);
    if let Some(style) = flag(args, "--style").and_then(|s| s.parse().ok()) {
        spec.style = style;
    }
    if let Some(f) = flag(args, "--interstitial").and_then(|s| s.parse().ok()) {
        spec = spec.with_interstitials(f);
    }

    match write_corpus(&spec, &drift, &out_dir) {
        Ok(stats) => {
            eprintln!(
                "wrote {} pages ({} objects, {} bytes) to {}",
                stats.pages,
                stats.objects,
                stats.bytes,
                out_dir.display()
            );
            0
        }
        Err(e) => {
            eprintln!("{}: {e}", out_dir.display());
            1
        }
    }
}
