//! De-duplication and cross-source object integration (the
//! "De-duplication" stage of the ObjectRunner architecture, Fig. 1).
//!
//! "As Web data tends to be very redundant, the concerts one can find
//! in the yellowpages.com site are precisely the ones from zvents.com"
//! (§IV-B2) — the system-level bet is that objects lost on one source
//! reappear on another, so integrating extractions across sources both
//! removes duplicates and fills gaps.

use objectrunner_sod::Instance;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Normalization used to compare attribute values across sources.
pub fn normalize_value(v: &str) -> String {
    v.split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// Why an object could not be given an identity key and was excluded
/// from de-duplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySkipReason {
    /// A named key attribute is absent from the instance: without it
    /// the key would silently describe a *different* identity (two
    /// concerts missing `date` are not thereby the same concert).
    MissingKeyAttr { attr: String },
}

impl fmt::Display for KeySkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeySkipReason::MissingKeyAttr { attr } => {
                write!(f, "missing key attribute '{attr}'")
            }
        }
    }
}

impl std::error::Error for KeySkipReason {}

/// The identity key of an object: its normalized `(type, value)` pairs
/// restricted to the given key attributes (or all attributes when the
/// list is empty), order-insensitive.
///
/// Requires every named key attribute to be present — an instance
/// missing one has no well-defined identity under that key and is
/// reported as a typed [`KeySkipReason`] instead of silently folding
/// the absence into the key string.
pub fn object_key_checked(
    instance: &Instance,
    key_attrs: &[&str],
) -> Result<String, KeySkipReason> {
    let flat = instance.flatten();
    for &attr in key_attrs {
        if !flat.iter().any(|(t, _)| *t == attr) {
            return Err(KeySkipReason::MissingKeyAttr {
                attr: attr.to_owned(),
            });
        }
    }
    let mut pairs: Vec<String> = flat
        .into_iter()
        .filter(|(t, _)| key_attrs.is_empty() || key_attrs.contains(t))
        .map(|(t, v)| format!("{t}={}", normalize_value(v)))
        .collect();
    pairs.sort();
    Ok(pairs.join("|"))
}

/// The unchecked identity key: like [`object_key_checked`] but an
/// instance missing a key attribute keys on whatever attributes it
/// does have. Kept for callers that key on the full attribute set
/// (`key_attrs = []`, where the two functions agree); integration
/// paths should prefer the checked form.
pub fn object_key(instance: &Instance, key_attrs: &[&str]) -> String {
    let mut pairs: Vec<String> = instance
        .flatten()
        .into_iter()
        .filter(|(t, _)| key_attrs.is_empty() || key_attrs.contains(t))
        .map(|(t, v)| format!("{t}={}", normalize_value(v)))
        .collect();
    pairs.sort();
    pairs.join("|")
}

/// Statistics of one integration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Objects seen across all inputs.
    pub input_objects: usize,
    /// Distinct objects after de-duplication (skipped objects, which
    /// pass through unmerged, included).
    pub distinct_objects: usize,
    /// Duplicates removed.
    pub duplicates: usize,
    /// Objects whose surviving representative gained attributes from a
    /// duplicate (gap filling).
    pub fused: usize,
    /// Objects excluded from de-duplication because no identity key
    /// could be formed (they pass through to the output unmerged).
    pub skipped: usize,
    /// Skip counts by missing key attribute name.
    pub skipped_missing_attr: BTreeMap<String, usize>,
}

/// De-duplicate objects across sources.
///
/// Objects sharing the same [`object_key_checked`] over `key_attrs`
/// are merged: the representative keeps the union of attribute fields
/// (preferring the more complete instance), so a source that misses an
/// optional attribute is completed by one that has it. Objects missing
/// a key attribute have no well-defined identity: they pass through to
/// the output unmerged and are counted under [`DedupReport::skipped`]
/// with the missing attribute recorded.
pub fn deduplicate(objects: Vec<Instance>, key_attrs: &[&str]) -> (Vec<Instance>, DedupReport) {
    let mut report = DedupReport {
        input_objects: objects.len(),
        ..DedupReport::default()
    };
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut out: Vec<Instance> = Vec::new();
    for object in objects {
        let key = match object_key_checked(&object, key_attrs) {
            Ok(k) => k,
            Err(KeySkipReason::MissingKeyAttr { attr }) => {
                report.skipped += 1;
                *report.skipped_missing_attr.entry(attr).or_insert(0) += 1;
                out.push(object);
                continue;
            }
        };
        match index.get(&key) {
            None => {
                index.insert(key, out.len());
                out.push(object);
            }
            Some(&i) => {
                report.duplicates += 1;
                if let Some(fusion) = fuse(&out[i], &object) {
                    out[i] = fusion.instance;
                    report.fused += 1;
                }
            }
        }
    }
    report.distinct_objects = out.len();
    (out, report)
}

/// A successful fusion of two instances of the same object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fusion {
    /// `a` extended with the attribute fields only `b` carried,
    /// appended in `b`'s field order.
    pub instance: Instance,
    /// Indices into `b`'s tuple fields that were appended — callers
    /// tracking per-attribute provenance use these to carry `b`'s
    /// provenance over for exactly the fields that moved.
    pub added_fields: Vec<usize>,
}

/// Merge `b` into `a` when `b` carries attribute fields `a` lacks.
/// Returns the fused instance (with the indices of `b`'s contributed
/// fields), or `None` when `a` already subsumes `b`.
pub fn fuse(a: &Instance, b: &Instance) -> Option<Fusion> {
    let (Instance::Tuple { name, fields: fa }, Instance::Tuple { fields: fb, .. }) = (a, b) else {
        return None;
    };
    let have: Vec<&str> = fa.iter().filter_map(field_type).collect();
    let added_fields: Vec<usize> = fb
        .iter()
        .enumerate()
        .filter(|(_, f)| field_type(f).map(|t| !have.contains(&t)).unwrap_or(false))
        .map(|(i, _)| i)
        .collect();
    if added_fields.is_empty() {
        return None;
    }
    let mut fields = fa.clone();
    fields.extend(added_fields.iter().map(|&i| fb[i].clone()));
    Some(Fusion {
        instance: Instance::Tuple {
            name: name.clone(),
            fields,
        },
        added_fields,
    })
}

/// The entity type a tuple field carries (first atomic type found).
fn field_type(field: &Instance) -> Option<&str> {
    match field {
        Instance::Atomic { type_name, .. } => Some(type_name),
        Instance::Set(items) => items.first().and_then(field_type),
        Instance::Tuple { fields, .. } => fields.first().and_then(field_type),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concert(artist: &str, date: &str, venue: Option<&str>) -> Instance {
        let mut fields = vec![
            Instance::atomic("artist", artist),
            Instance::atomic("date", date),
        ];
        if let Some(v) = venue {
            fields.push(Instance::atomic("venue", v));
        }
        Instance::Tuple {
            name: "concert".to_owned(),
            fields,
        }
    }

    #[test]
    fn exact_duplicates_collapse() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("Muse", "May 12, 2010", Some("MSG")),
        ];
        let (distinct, report) = deduplicate(objects, &[]);
        assert_eq!(distinct.len(), 2);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.fused, 0);
    }

    #[test]
    fn normalization_bridges_formatting_differences() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("METALLICA", "may 11 2010", None),
        ];
        let (distinct, report) = deduplicate(objects, &[]);
        assert_eq!(distinct.len(), 1);
        assert_eq!(report.duplicates, 1);
    }

    #[test]
    fn key_attributes_restrict_identity() {
        // Same artist+date from two sources, one with venue, one
        // without: keyed on (artist, date) they are the same concert.
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 11, 2010", Some("Madison Square Garden")),
        ];
        let (distinct, report) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(distinct.len(), 1);
        assert_eq!(report.fused, 1, "venue must be fused in");
        let mut venues = Vec::new();
        distinct[0].values_of_type("venue", &mut venues);
        assert_eq!(venues, vec!["Madison Square Garden"]);
    }

    #[test]
    fn different_objects_are_kept() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 12, 2010", None),
        ];
        let (distinct, _) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn report_counts_are_consistent() {
        let objects = vec![
            concert("A", "d1", None),
            concert("A", "d1", None),
            concert("A", "d1", Some("v")),
            concert("B", "d2", None),
        ];
        let (distinct, report) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(report.input_objects, 4);
        assert_eq!(report.distinct_objects, distinct.len());
        assert_eq!(
            report.input_objects,
            report.distinct_objects + report.duplicates
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let (distinct, report) = deduplicate(Vec::new(), &[]);
        assert!(distinct.is_empty());
        assert_eq!(report, DedupReport::default());
    }

    #[test]
    fn missing_key_attribute_is_a_typed_skip() {
        // `venue` is a key attribute but the instance has none: the
        // checked key must refuse rather than fold the absence in.
        let no_venue = concert("Metallica", "May 11, 2010", None);
        assert_eq!(
            object_key_checked(&no_venue, &["artist", "venue"]),
            Err(KeySkipReason::MissingKeyAttr {
                attr: "venue".to_owned()
            })
        );
        // The unchecked legacy key silently drops the missing attr —
        // the exact hazard the checked form exists to name.
        assert_eq!(
            object_key(&no_venue, &["artist", "venue"]),
            "artist=metallica"
        );
        // With every key attribute present the two forms agree.
        let full = concert("Metallica", "May 11, 2010", Some("MSG"));
        assert_eq!(
            object_key_checked(&full, &["artist", "venue"]).as_deref(),
            Ok(object_key(&full, &["artist", "venue"]).as_str())
        );
    }

    #[test]
    fn skipped_objects_pass_through_and_are_counted() {
        // Two identical venue-less concerts would have collapsed under
        // the old silent folding; keyed on (artist, date, venue) they
        // have no identity, so both pass through and both are counted.
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("Metallica", "May 11, 2010", Some("MSG")),
        ];
        let (distinct, report) = deduplicate(objects, &["artist", "date", "venue"]);
        assert_eq!(distinct.len(), 3, "skipped objects are not merged");
        assert_eq!(report.skipped, 2);
        assert_eq!(report.skipped_missing_attr.get("venue"), Some(&2));
        assert_eq!(report.duplicates, 1, "keyed pair still collapses");
        assert_eq!(
            report.input_objects,
            report.distinct_objects + report.duplicates,
            "count invariant holds with skips (skips are distinct)"
        );
    }

    #[test]
    fn fuse_reports_added_field_indices() {
        let a = concert("Metallica", "May 11, 2010", None);
        let b = concert("Metallica", "May 11, 2010", Some("MSG"));
        let fusion = fuse(&a, &b).expect("venue must fuse in");
        assert_eq!(fusion.added_fields, vec![2], "venue is b's third field");
        let mut venues = Vec::new();
        fusion.instance.values_of_type("venue", &mut venues);
        assert_eq!(venues, vec!["MSG"]);
        assert!(fuse(&b, &a).is_none(), "a adds nothing to b");
    }
}
