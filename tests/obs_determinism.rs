//! Determinism guard for the observability layer.
//!
//! Span parenthood is explicit and every span of a pipeline run is
//! allocated on the coordinator thread, so the JSONL event stream of a
//! `threads = 8` run must be **byte-identical** to a `threads = 1` run
//! once time-dependent values are normalized away: span timings
//! (`start_us`/`dur_us`/`cpu_us`), timing counters (`*_micros`), the
//! thread-count gauge, and the memo hit/miss split (total lookups stay
//! pinned — only the hit/miss partition is scheduling-dependent).
//!
//! The Chrome exporter's output is additionally validated against the
//! `trace_event` schema `obs_check chrome` enforces, and the metrics
//! registry is checked via snapshot *diffs*: a cached `extract_only`
//! run must not move any induction-stage metric.

use objectrunner::core::pipeline::{extract_only_with, Pipeline, PipelineConfig};
use objectrunner::core::sample::SampleConfig;
use objectrunner::obs::check::{validate_chrome_trace, validate_events_jsonl};
use objectrunner::obs::{export, Obs};
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};

/// The determinism suite's golden corpus (same specs as
/// `determinism.rs` / `golden_equivalence.rs`).
fn golden_corpus(domain: Domain, index: usize) -> Vec<String> {
    let spec = SiteSpec::clean(
        &format!("golden-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_000 + index as u64,
    );
    generate_site(&spec).pages
}

fn config(threads: usize, obs: &Obs) -> PipelineConfig {
    PipelineConfig {
        threads: Some(threads),
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        obs: obs.clone(),
        ..PipelineConfig::default()
    }
}

/// Run the first two golden domains through one fresh obs handle and
/// export the event stream.
fn events_at(threads: usize) -> String {
    let obs = Obs::enabled();
    for (i, domain) in [Domain::ALL[0], Domain::ALL[1]].into_iter().enumerate() {
        let pages = golden_corpus(domain, i);
        Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
            .with_config(config(threads, &obs))
            .run_on_html(&pages)
            .expect("golden corpus wraps");
    }
    export::events_jsonl(&obs.spans(), &obs.snapshot())
}

/// Replace `"key":<int>` with `"key":0` everywhere in a line.
fn zero_key(line: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(pos) = rest.find(&needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '-'))
            .unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Normalize the scheduling-dependent values out of an event stream.
fn normalize(events: &str) -> String {
    events
        .lines()
        .map(|line| {
            if line.contains("\"type\":\"span\"") {
                let mut l = line.to_owned();
                for key in ["start_us", "dur_us", "cpu_us"] {
                    l = zero_key(&l, key);
                }
                l
            } else if line.contains("micros")
                || line.contains("exec.threads")
                || line.contains("cache_hits")
                || line.contains("cache_misses")
            {
                zero_key(line, "value")
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn jsonl_event_stream_is_identical_across_thread_counts() {
    let sequential = events_at(1);
    let parallel = events_at(8);
    validate_events_jsonl(&sequential).expect("threads=1 stream is schema-valid");
    validate_events_jsonl(&parallel).expect("threads=8 stream is schema-valid");
    let (a, b) = (normalize(&sequential), normalize(&parallel));
    if a != b {
        for (la, lb) in a.lines().zip(b.lines()) {
            assert_eq!(la, lb, "first divergent event line");
        }
        panic!(
            "streams differ in length: {} vs {} lines",
            a.lines().count(),
            b.lines().count()
        );
    }
}

#[test]
fn chrome_trace_export_satisfies_the_trace_event_schema() {
    let obs = Obs::enabled();
    let pages = golden_corpus(Domain::ALL[0], 0);
    Pipeline::new(
        Domain::ALL[0].sod(),
        knowledge::recognizers_for(Domain::ALL[0], 0.2),
    )
    .with_config(config(2, &obs))
    .run_on_html(&pages)
    .expect("golden corpus wraps");
    let trace = export::chrome_trace(&obs.spans());
    let events = validate_chrome_trace(&trace).expect("Perfetto-loadable trace");
    // pipeline.induce + 7 stage spans + sample.rerun, at minimum.
    assert!(events >= 9, "only {events} trace events");
}

#[test]
fn snapshot_diff_shows_no_induction_stages_on_the_cached_path() {
    let obs = Obs::enabled();
    let domain = Domain::ALL[0];
    let pages = golden_corpus(domain, 0);
    let cfg = config(2, &obs);
    let clean = cfg.clean.clone();
    let outcome = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
        .with_config(cfg)
        .run_on_html(&pages)
        .expect("golden corpus wraps");

    let base = obs.snapshot();
    extract_only_with(
        &outcome.wrapper,
        outcome.main_block.as_ref(),
        &clean,
        &pages,
        Some(2),
        &obs,
        None,
        None,
    );
    let diff = obs.snapshot().diff(&base);

    assert_eq!(
        diff.counter("objectrunner.core.pipeline.extract_only_runs"),
        1
    );
    assert_eq!(diff.counter("objectrunner.core.pipeline.induce_runs"), 0);
    for stage in ["annotate", "sample", "sample.rerun", "wrap"] {
        assert_eq!(
            diff.counter(&format!("objectrunner.core.stage.{stage}.wall_micros")),
            0,
            "{stage} ran on the cached path"
        );
        assert_eq!(
            diff.counter(&format!("objectrunner.core.stage.{stage}.cpu_micros")),
            0,
            "{stage} burned CPU on the cached path"
        );
    }
    assert!(
        diff.counter("objectrunner.core.stage.extract.wall_micros") > 0
            || diff.counter("objectrunner.core.pipeline.extract_only_runs") == 1,
        "extract stage accounted"
    );
}
