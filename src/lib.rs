//! # ObjectRunner
//!
//! A Rust reproduction of *"Automatic Extraction of Structured Web Data
//! with Domain Knowledge"* (Derouiche, Cautis, Abdessalem — ICDE 2012).
//!
//! ObjectRunner performs **targeted** wrapper induction: the user
//! supplies a [Structured Object Description](sod) of the real-world
//! items to harvest; the system annotates template-generated HTML pages
//! with entity-type [recognizers](knowledge), infers an extraction
//! template by an annotation-guided equivalence-class analysis
//! ([core]), matches the SOD against the inferred template tree, and
//! extracts exactly the targeted objects.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`html`] — tolerant HTML tokenizer/DOM/cleaner substrate.
//! * [`segment`] — VIPS-style visual block segmentation.
//! * [`knowledge`] — ontology, Hearst-pattern corpus mining,
//!   gazetteers, and type recognizers.
//! * [`sod`] — the SOD typing formalism.
//! * [`core`] — annotation, page-sample selection, wrapper generation,
//!   SOD matching, extraction pipeline.
//! * [`baselines`] — clean-room ExAlg and RoadRunner reimplementations.
//! * [`webgen`] — deterministic synthetic structured-Web generator with
//!   golden-standard objects (including template-drift rendering).
//! * [`eval`] — the paper's precision metrics and the table/figure
//!   reproduction harness.
//! * [`store`] — versioned, checksummed on-disk wrapper persistence;
//!   externalizes interned identities so wrappers outlive the process
//!   that induced them.
//! * [`serve`] — the serving layer: cached (induction-free)
//!   extraction, template-drift detection, on-demand re-induction
//!   (the `objectrunner-serve` daemon).
//! * [`objstore`] — the durable object store: append-only checksummed
//!   segments holding de-duplicated, cross-source-fused objects with
//!   per-attribute provenance, plus the query surface the daemon
//!   exposes over them.
//! * [`obs`] — observability: hierarchical spans, a typed metrics
//!   registry, and canonical exporters (events JSONL, Chrome
//!   `trace_event`, human report).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use objectrunner::prelude::*;
//!
//! // 1. Describe what you want (a "phase-one query").
//! let sod = SodBuilder::tuple("concert")
//!     .entity("artist", Multiplicity::One)
//!     .entity("date", Multiplicity::One)
//!     .entity("venue", Multiplicity::One)
//!     .build();
//!
//! // 2. Set up recognizers (predefined + dictionary-based).
//! let mut recognizers = RecognizerSet::new();
//! recognizers.insert("date", Recognizer::predefined_date());
//! recognizers.insert("artist", Recognizer::dictionary(Gazetteer::default()));
//!
//! // 3. Run the pipeline over the pages of one source.
//! let pages: Vec<String> = vec![/* HTML strings */];
//! let outcome = Pipeline::new(sod, recognizers)
//!     .run_on_html(&pages)
//!     .expect("source should be wrappable");
//! for object in &outcome.objects {
//!     println!("{object}");
//! }
//! ```

pub use objectrunner_baselines as baselines;
pub use objectrunner_core as core;
pub use objectrunner_eval as eval;
pub use objectrunner_html as html;
pub use objectrunner_knowledge as knowledge;
pub use objectrunner_objstore as objstore;
pub use objectrunner_obs as obs;
pub use objectrunner_segment as segment;
pub use objectrunner_serve as serve;
pub use objectrunner_sod as sod;
pub use objectrunner_store as store;
pub use objectrunner_webgen as webgen;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
    pub use crate::html::{parse, parse_clean, Document};
    pub use crate::knowledge::gazetteer::Gazetteer;
    pub use crate::knowledge::recognizer::{Recognizer, RecognizerSet};
    pub use crate::sod::{Multiplicity, Sod, SodBuilder, SodNode};
}
