//! `obs_check` — schema checker and baseline differ for exported
//! observability artifacts. Exit status 0 means the artifact passed.
//!
//! Subcommands:
//!   obs_check jsonl <events.jsonl>
//!   obs_check chrome <trace.json>
//!   obs_check diff <baseline.json> <current.json> [--tolerance F]
//!             [--skip SUBSTR]... [--no-default-skips]
//!   obs_check report <events.jsonl>

use objectrunner_obs::check;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: obs_check <jsonl|chrome|diff|report> ...");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "jsonl" => run_jsonl(rest),
        "chrome" => run_chrome(rest),
        "diff" => run_diff(rest),
        "report" => run_report(rest),
        other => {
            eprintln!("obs_check: unknown subcommand `{other}`");
            ExitCode::FAILURE
        }
    }
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("obs_check: cannot read `{path}`: {e}");
        ExitCode::FAILURE
    })
}

fn run_jsonl(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: obs_check jsonl <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match check::validate_events_jsonl(&text) {
        Ok(summary) => {
            println!(
                "obs_check jsonl OK: {} spans, {} counters, {} gauges, {} histograms",
                summary.spans, summary.counters, summary.gauges, summary.histograms
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check jsonl FAIL ({path}): {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_chrome(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: obs_check chrome <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match check::validate_chrome_trace(&text) {
        Ok(n) => {
            println!("obs_check chrome OK: {n} trace events");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check chrome FAIL ({path}): {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut skips: Vec<String> = Vec::new();
    let mut tolerance = 0.0_f64;
    let mut default_skips = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("obs_check: --tolerance needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--skip" => match it.next() {
                Some(s) => skips.push(s.clone()),
                None => {
                    eprintln!("obs_check: --skip needs a substring");
                    return ExitCode::FAILURE;
                }
            },
            "--no-default-skips" => default_skips = false,
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        eprintln!("usage: obs_check diff <baseline.json> <current.json> [--tolerance F] [--skip SUBSTR]...");
        return ExitCode::FAILURE;
    };
    if default_skips {
        skips.extend(check::DEFAULT_SKIP_SUBSTRINGS.iter().map(|s| s.to_string()));
    }
    let (base_text, cur_text) = match (read(baseline), read(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match check::diff_snapshots(&base_text, &cur_text, &skips, tolerance) {
        Ok(mismatches) if mismatches.is_empty() => {
            println!("obs_check diff OK: snapshots agree (tolerance {tolerance})");
            ExitCode::SUCCESS
        }
        Ok(mismatches) => {
            eprintln!("obs_check diff FAIL: {} mismatch(es)", mismatches.len());
            for m in mismatches {
                eprintln!("  {m}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("obs_check diff FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: obs_check report <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match check::report_from_events(&text) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check report FAIL ({path}): {e}");
            ExitCode::FAILURE
        }
    }
}
