//! Canonical form of an SOD (paper §III-D, Fig. 4).
//!
//! "To put an SOD in its canonical form, any tuple node will receive
//! as direct children all the atomic-type nodes that are reachable
//! from it only via tuple nodes (no set nodes)."
//!
//! The transformation flattens chains of tuple nodes: in the concert
//! example, `concert(artist, date, location(theater, address))`
//! becomes `concert(artist, date, theater, address)`; set subtrees
//! (e.g. `{author}+`) survive as nested components, themselves
//! canonicalized.

use crate::types::{Sod, SodNode};

/// Canonicalize an SOD (Fig. 4).
pub fn canonicalize(sod: &Sod) -> Sod {
    Sod::new(canonicalize_node(sod.root()))
}

fn canonicalize_node(node: &SodNode) -> SodNode {
    match node {
        SodNode::Entity { .. } => node.clone(),
        SodNode::Set {
            child,
            multiplicity,
        } => SodNode::Set {
            child: Box::new(canonicalize_node(child)),
            multiplicity: *multiplicity,
        },
        SodNode::Disjunction(a, b) => SodNode::Disjunction(
            Box::new(canonicalize_node(a)),
            Box::new(canonicalize_node(b)),
        ),
        SodNode::Tuple { name, children } => {
            let mut flat = Vec::new();
            for child in children {
                flatten_into(child, &mut flat);
            }
            SodNode::Tuple {
                name: name.clone(),
                children: flat,
            }
        }
    }
}

/// Pull atomic types up through tuple nodes; stop at set and
/// disjunction boundaries (their subtrees are canonicalized in place).
fn flatten_into(node: &SodNode, out: &mut Vec<SodNode>) {
    match node {
        SodNode::Entity { .. } => out.push(node.clone()),
        SodNode::Tuple { children, .. } => {
            for c in children {
                flatten_into(c, out);
            }
        }
        SodNode::Set { .. } | SodNode::Disjunction(..) => out.push(canonicalize_node(node)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Multiplicity, SodBuilder};

    #[test]
    fn concert_example_flattens_location() {
        // Fig. 4: {t31, t32} combines with {t1, {}, t3} into one tuple.
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .nested(
                SodBuilder::tuple("location")
                    .entity("theater", Multiplicity::One)
                    .entity("address", Multiplicity::Optional),
            )
            .build();
        let canon = canonicalize(&sod);
        assert_eq!(
            canon.to_string(),
            "concert(artist, date, theater, address?)"
        );
    }

    #[test]
    fn set_boundaries_are_preserved() {
        let sod = SodBuilder::tuple("book")
            .entity("title", Multiplicity::One)
            .set_of_entity("author", Multiplicity::Plus)
            .entity("price", Multiplicity::One)
            .build();
        let canon = canonicalize(&sod);
        assert_eq!(canon.to_string(), "book(title, {author}+, price)");
    }

    #[test]
    fn figure4_shape_with_set_between_tuples() {
        // Input SOD of Fig. 4: tuple{t1, {t2}*, tuple{t31, t32}}.
        let sod = SodBuilder::tuple("s")
            .entity("t1", Multiplicity::One)
            .set_of_entity("t2", Multiplicity::Star)
            .nested(
                SodBuilder::tuple("inner")
                    .entity("t31", Multiplicity::One)
                    .entity("t32", Multiplicity::One),
            )
            .build();
        let canon = canonicalize(&sod);
        // Canonical SOD: tuple{t1, t31, t32, {t2}*} — atomics in one
        // tuple, the set kept nested.
        assert_eq!(canon.entity_types(), vec!["t1", "t2", "t31", "t32"]);
        match canon.root() {
            SodNode::Tuple { children, .. } => {
                let atomics = children
                    .iter()
                    .filter(|c| matches!(c, SodNode::Entity { .. }))
                    .count();
                let sets = children
                    .iter()
                    .filter(|c| matches!(c, SodNode::Set { .. }))
                    .count();
                assert_eq!(atomics, 3);
                assert_eq!(sets, 1);
            }
            other => panic!("expected tuple root, got {other:?}"),
        }
    }

    #[test]
    fn deep_tuple_chains_collapse() {
        let sod = SodBuilder::tuple("a")
            .nested(
                SodBuilder::tuple("b")
                    .nested(SodBuilder::tuple("c").entity("x", Multiplicity::One)),
            )
            .entity("y", Multiplicity::One)
            .build();
        let canon = canonicalize(&sod);
        assert_eq!(canon.to_string(), "a(x, y)");
    }

    #[test]
    fn tuples_inside_sets_are_canonicalized_too() {
        let sod = SodBuilder::tuple("pubs")
            .set_of(
                SodBuilder::tuple("rec")
                    .entity("title", Multiplicity::One)
                    .nested(SodBuilder::tuple("who").entity("author", Multiplicity::One)),
                Multiplicity::Plus,
            )
            .build();
        let canon = canonicalize(&sod);
        assert_eq!(canon.to_string(), "pubs({rec(title, author)}+)");
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .nested(
                SodBuilder::tuple("location")
                    .entity("theater", Multiplicity::One)
                    .entity("address", Multiplicity::Optional),
            )
            .set_of_entity("tag", Multiplicity::Star)
            .build();
        let once = canonicalize(&sod);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn flat_sod_is_unchanged() {
        let sod = SodBuilder::tuple("car")
            .entity("brand", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .build();
        assert_eq!(canonicalize(&sod), sod);
    }
}
