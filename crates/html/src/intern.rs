//! Workspace-wide string and path interning.
//!
//! Wrapper induction compares the *same* small set of tag, attribute,
//! word and path strings millions of times (occurrence vectors over
//! page tokens, §III-C). This module makes those comparisons integer
//! comparisons:
//!
//! * [`Symbol`] — a `u32` handle to an interned string (tag names,
//!   attribute names/values, token words, annotation type names).
//! * [`PathId`] — a `u32` handle to an interned DOM tag-path, built
//!   incrementally as `(parent PathId, Symbol)` pairs, so a node's
//!   path is an O(1) field read instead of an O(depth) ancestor walk
//!   with a fresh `String` per lookup.
//! * [`FxHasher`] — a from-scratch FxHash-style multiply-rotate hasher
//!   backing every interner table and the `(Symbol, PathId)`-keyed
//!   maps in the analysis crates.
//!
//! Both interners are process-wide (`RwLock`-guarded, append-only), so
//! symbols and paths are comparable across documents and across pages
//! of a source — exactly what cross-page role assignment and
//! main-block voting need. Interned strings are leaked (`Box::leak`)
//! to hand out `&'static str`; the tables are deduplicated and grow
//! with the distinct vocabulary of the corpus, which is the same
//! asymptote the pre-interning code paid *per occurrence*.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

// ------------------------------------------------------------ fxhash

/// From-scratch FxHash-style hasher: one multiply-rotate-xor round per
/// 8-byte chunk. Not DoS-resistant — fine for interner tables keyed by
/// trusted, bounded vocabularies.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`]; the default map type for interned
/// keys across the workspace.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

// ------------------------------------------------------------ symbols

/// Handle to an interned string. `Copy`, 4 bytes, and comparable
/// across documents (the interner is process-wide).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct SymbolTable {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn symbols() -> &'static RwLock<SymbolTable> {
    static SYMBOLS: OnceLock<RwLock<SymbolTable>> = OnceLock::new();
    SYMBOLS.get_or_init(|| {
        RwLock::new(SymbolTable {
            map: FxHashMap::default(),
            strings: Vec::new(),
        })
    })
}

thread_local! {
    /// Per-thread read cache in front of the `RwLock`-guarded symbol
    /// table: hot vocabularies (tag names, common words) resolve
    /// without ever touching the lock. Safe because the global table
    /// is append-only — a cached `(str → Symbol)` entry can never go
    /// stale — and bounded by the distinct vocabulary, like the table.
    static SYMBOL_CACHE: RefCell<FxHashMap<&'static str, Symbol>> =
        RefCell::new(FxHashMap::default());
}

impl Symbol {
    /// Intern `s`, returning its stable handle.
    pub fn intern(s: &str) -> Symbol {
        SYMBOL_CACHE.with(|cache| {
            if let Some(&sym) = cache.borrow().get(s) {
                return sym;
            }
            let (sym, leaked) = Symbol::intern_global(s);
            cache.borrow_mut().insert(leaked, sym);
            sym
        })
    }

    /// Intern against the shared table, returning the handle and the
    /// leaked key (for thread-local caching).
    fn intern_global(s: &str) -> (Symbol, &'static str) {
        {
            let table = symbols().read().expect("symbol table poisoned");
            if let Some((&leaked, &id)) = table.map.get_key_value(s) {
                return (Symbol(id), leaked);
            }
        }
        let mut table = symbols().write().expect("symbol table poisoned");
        if let Some((&leaked, &id)) = table.map.get_key_value(s) {
            return (Symbol(id), leaked);
        }
        let id = table.strings.len() as u32;
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        table.strings.push(leaked);
        table.map.insert(leaked, id);
        (Symbol(id), leaked)
    }

    /// Intern the ASCII-lowercased form of `s`, skipping the lowercase
    /// allocation when `s` is already lowercase (the common case for
    /// machine-generated markup).
    pub fn intern_lower(s: &str) -> Symbol {
        if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Symbol::intern(&s.to_ascii_lowercase())
        } else {
            Symbol::intern(s)
        }
    }

    /// Look up `s` without interning it; `None` if it was never seen.
    pub fn lookup(s: &str) -> Option<Symbol> {
        let table = symbols().read().expect("symbol table poisoned");
        table.map.get(s).map(|&id| Symbol(id))
    }

    /// The interned string. `'static` because interned strings live for
    /// the process.
    pub fn as_str(self) -> &'static str {
        let table = symbols().read().expect("symbol table poisoned");
        table.strings[self.0 as usize]
    }

    /// Raw index (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// -------------------------------------------------------------- paths

/// Handle to an interned DOM tag-path (e.g. `html/body/div/span`).
///
/// Paths form a tree: each non-root path is `(parent, last segment)`,
/// interned once. Extending a path ([`PathId::child`]) is a single
/// hash-map probe; reading a node's path is an O(1) field access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

struct PathNode {
    parent: PathId,
    segment: Symbol,
    depth: u32,
}

struct PathTable {
    map: FxHashMap<(PathId, Symbol), u32>,
    nodes: Vec<PathNode>,
}

fn paths() -> &'static RwLock<PathTable> {
    static PATHS: OnceLock<RwLock<PathTable>> = OnceLock::new();
    PATHS.get_or_init(|| {
        RwLock::new(PathTable {
            map: FxHashMap::default(),
            nodes: vec![PathNode {
                parent: PathId::ROOT,
                segment: Symbol(u32::MAX),
                depth: 0,
            }],
        })
    })
}

/// Counts [`PathId::child`] calls — i.e. path-interner probes. The
/// NodeSignature O(N) test snapshots this to prove signature
/// computation does no per-node path work after tree construction.
static PATH_PROBES: AtomicU64 = AtomicU64::new(0);

/// Total number of [`PathId::child`] probes so far (diagnostic).
pub fn path_probe_count() -> u64 {
    PATH_PROBES.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread read cache in front of the path table, mirroring
    /// [`SYMBOL_CACHE`]: parsing N pages with the same template walks
    /// the same `(parent, segment)` edges on every worker, and the
    /// cache keeps those off the lock. Append-only table ⇒ entries
    /// never go stale.
    static PATH_CACHE: RefCell<FxHashMap<(PathId, Symbol), PathId>> =
        RefCell::new(FxHashMap::default());
}

impl PathId {
    /// The empty path (the document root).
    pub const ROOT: PathId = PathId(0);

    /// The path `self/segment`, interned.
    pub fn child(self, segment: Symbol) -> PathId {
        PATH_PROBES.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = PATH_CACHE.with(|c| c.borrow().get(&(self, segment)).copied()) {
            return hit;
        }
        let id = self.child_global(segment);
        PATH_CACHE.with(|c| c.borrow_mut().insert((self, segment), id));
        id
    }

    /// Extend against the shared table (thread-local cache miss).
    fn child_global(self, segment: Symbol) -> PathId {
        {
            let table = paths().read().expect("path table poisoned");
            if let Some(&id) = table.map.get(&(self, segment)) {
                return PathId(id);
            }
        }
        let mut table = paths().write().expect("path table poisoned");
        if let Some(&id) = table.map.get(&(self, segment)) {
            return PathId(id);
        }
        let id = table.nodes.len() as u32;
        let depth = table.nodes[self.0 as usize].depth + 1;
        table.nodes.push(PathNode {
            parent: self,
            segment,
            depth,
        });
        table.map.insert((self, segment), id);
        PathId(id)
    }

    /// Re-intern a path from externalized segment strings — the inverse
    /// of [`PathId::segments`] + [`Symbol::as_str`]. `PathId`s are
    /// process-local handles, so persisted wrappers store paths as
    /// segment lists; loading rebuilds the same identity in the current
    /// process's table.
    pub fn from_segments<I, S>(segments: I) -> PathId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        segments.into_iter().fold(PathId::ROOT, |path, seg| {
            path.child(Symbol::intern(seg.as_ref()))
        })
    }

    /// Parent path; `None` at the root.
    pub fn parent(self) -> Option<PathId> {
        if self == PathId::ROOT {
            None
        } else {
            let table = paths().read().expect("path table poisoned");
            Some(table.nodes[self.0 as usize].parent)
        }
    }

    /// Last segment; `None` at the root.
    pub fn last(self) -> Option<Symbol> {
        if self == PathId::ROOT {
            None
        } else {
            let table = paths().read().expect("path table poisoned");
            Some(table.nodes[self.0 as usize].segment)
        }
    }

    /// Number of segments (root = 0).
    pub fn depth(self) -> usize {
        let table = paths().read().expect("path table poisoned");
        table.nodes[self.0 as usize].depth as usize
    }

    /// Segments from the root down.
    pub fn segments(self) -> Vec<Symbol> {
        let table = paths().read().expect("path table poisoned");
        let mut out = Vec::with_capacity(table.nodes[self.0 as usize].depth as usize);
        let mut cur = self;
        while cur != PathId::ROOT {
            let node = &table.nodes[cur.0 as usize];
            out.push(node.segment);
            cur = node.parent;
        }
        out.reverse();
        out
    }

    /// The `/`-joined display form (`html/body/div`). Allocates; for
    /// diagnostics and labels, not hot paths.
    pub fn render(self) -> String {
        let segments = self.segments();
        let mut out = String::new();
        for (i, seg) in segments.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(seg.as_str());
        }
        out
    }

    /// Raw index (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathId({:?})", self.render())
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let a = Symbol::intern("div");
        let b = Symbol::intern("div");
        assert_eq!(a, b, "same string, same symbol");
        assert_eq!(a.as_str(), "div");
        assert_ne!(Symbol::intern("span"), a);
        // Round trip: resolving and re-interning is the identity.
        assert_eq!(Symbol::intern(a.as_str()), a);
    }

    #[test]
    fn intern_lower_folds_case() {
        assert_eq!(Symbol::intern_lower("DIV"), Symbol::intern("div"));
        assert_eq!(Symbol::intern_lower("div"), Symbol::intern("div"));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Symbol::lookup("never-interned-sentinel-xyzzy").is_none());
        let s = Symbol::intern("interned-sentinel");
        assert_eq!(Symbol::lookup("interned-sentinel"), Some(s));
    }

    #[test]
    fn path_parent_chaining() {
        let html = Symbol::intern("html");
        let body = Symbol::intern("body");
        let div = Symbol::intern("div");
        let p1 = PathId::ROOT.child(html).child(body).child(div);
        let p2 = PathId::ROOT.child(html).child(body).child(div);
        assert_eq!(p1, p2, "same chain, same path id");
        assert_eq!(p1.render(), "html/body/div");
        assert_eq!(p1.depth(), 3);
        assert_eq!(p1.last(), Some(div));
        let parent = p1.parent().expect("non-root");
        assert_eq!(parent.render(), "html/body");
        assert_eq!(parent, PathId::ROOT.child(html).child(body));
        assert_eq!(p1.segments(), vec![html, body, div]);
        assert_eq!(PathId::ROOT.depth(), 0);
        assert_eq!(PathId::ROOT.render(), "");
        assert!(PathId::ROOT.parent().is_none());
        assert!(PathId::ROOT.last().is_none());
    }

    #[test]
    fn from_segments_round_trips() {
        let p = PathId::ROOT
            .child(Symbol::intern("html"))
            .child(Symbol::intern("body"))
            .child(Symbol::intern("ul"));
        let strings: Vec<&str> = p.segments().iter().map(|s| s.as_str()).collect();
        assert_eq!(PathId::from_segments(strings), p);
        assert_eq!(PathId::from_segments(Vec::<&str>::new()), PathId::ROOT);
    }

    #[test]
    fn sibling_paths_diverge() {
        let body = PathId::ROOT.child(Symbol::intern("body"));
        let a = body.child(Symbol::intern("div"));
        let b = body.child(Symbol::intern("span"));
        assert_ne!(a, b);
        assert_eq!(a.parent(), b.parent());
    }

    #[test]
    fn fxhasher_is_stable_and_spreads() {
        fn hash_of(s: &str) -> u64 {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        }
        assert_eq!(hash_of("div"), hash_of("div"));
        assert_ne!(hash_of("div"), hash_of("span"));
        assert_ne!(hash_of("a"), hash_of("aa"), "length must matter");
        // Byte-order sensitivity within a chunk.
        assert_ne!(hash_of("abcdefgh"), hash_of("hgfedcba"));
    }

    #[test]
    fn symbols_agree_across_threads() {
        // Every thread has its own read cache, but all caches front the
        // same append-only table: the same string must resolve to the
        // same Symbol everywhere, warm or cold.
        let words: Vec<String> = (0..64).map(|i| format!("xthread-sym-{i}")).collect();
        let home: Vec<Symbol> = words.iter().map(|w| Symbol::intern(w)).collect();
        let others: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| words.iter().map(|w| Symbol::intern(w)).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for theirs in others {
            assert_eq!(theirs, home);
        }
        // Second resolution on this thread is a cache hit — still equal.
        let again: Vec<Symbol> = words.iter().map(|w| Symbol::intern(w)).collect();
        assert_eq!(again, home);
    }

    #[test]
    fn paths_agree_across_threads() {
        let tags: Vec<Symbol> = (0..16)
            .map(|i| Symbol::intern(&format!("xthread-tag-{i}")))
            .collect();
        let chain = |tags: &[Symbol]| {
            tags.iter()
                .fold(PathId::ROOT, |path, &segment| path.child(segment))
        };
        let home = chain(&tags);
        let others: Vec<PathId> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| chain(&tags)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for theirs in others {
            assert_eq!(theirs, home);
        }
        assert_eq!(chain(&tags), home, "warm-cache rebuild is stable");
        assert_eq!(home.depth(), 16);
    }

    #[test]
    fn probe_counter_moves_only_on_child() {
        let before = path_probe_count();
        let p = PathId::ROOT.child(Symbol::intern("counted"));
        let after_child = path_probe_count();
        assert!(after_child > before);
        let _ = p.render();
        let _ = p.depth();
        let _ = p.parent();
        assert_eq!(path_probe_count(), after_child, "reads do not probe");
    }
}
