//! HTML character-reference (entity) decoding.
//!
//! Supports the named entities that occur in practice on data-centric
//! pages plus decimal/hexadecimal numeric references. Unknown entities
//! are left verbatim, which is the tolerant behaviour the extraction
//! pipeline wants: a bad entity must never destroy surrounding text.

/// Named entities recognized by [`decode`].
const NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", " "),
    ("copy", "\u{a9}"),
    ("reg", "\u{ae}"),
    ("trade", "\u{2122}"),
    ("hellip", "\u{2026}"),
    ("mdash", "\u{2014}"),
    ("ndash", "\u{2013}"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("bull", "\u{2022}"),
    ("middot", "\u{b7}"),
    ("laquo", "\u{ab}"),
    ("raquo", "\u{bb}"),
    ("times", "\u{d7}"),
    ("divide", "\u{f7}"),
    ("deg", "\u{b0}"),
    ("pound", "\u{a3}"),
    ("euro", "\u{20ac}"),
    ("yen", "\u{a5}"),
    ("cent", "\u{a2}"),
    ("sect", "\u{a7}"),
    ("para", "\u{b6}"),
    ("eacute", "\u{e9}"),
    ("egrave", "\u{e8}"),
    ("agrave", "\u{e0}"),
    ("ccedil", "\u{e7}"),
    ("uuml", "\u{fc}"),
    ("ouml", "\u{f6}"),
    ("auml", "\u{e4}"),
    ("szlig", "\u{df}"),
];

/// Decode HTML character references in `input`.
///
/// ```
/// use objectrunner_html::entities::decode;
/// assert_eq!(decode("Simon &amp; Garfunkel"), "Simon & Garfunkel");
/// assert_eq!(decode("&#65;&#x42;"), "AB");
/// assert_eq!(decode("a &undefined; b"), "a &undefined; b");
/// ```
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_owned();
    }
    let mut out = String::with_capacity(input.len());
    decode_into(input, &mut out);
    out
}

/// Decode HTML character references in `input`, appending the result to
/// a caller-provided buffer. The streaming parse path reuses one buffer
/// (or a page arena) across every text node instead of allocating a
/// fresh `String` per node; output is byte-identical to [`decode`].
pub fn decode_into(input: &str, out: &mut String) {
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Copy the run up to the next '&' in one append.
        let Some(amp) = bytes[i..].iter().position(|&b| b == b'&') else {
            out.push_str(&input[i..]);
            return;
        };
        out.push_str(&input[i..i + amp]);
        i += amp;
        // Find a terminating ';' within a reasonable window.
        let decoded = find_semicolon(bytes, i + 1).is_some_and(|end| {
            if decode_one_into(&input[i + 1..end], out) {
                i = end + 1;
                true
            } else {
                false
            }
        });
        if !decoded {
            out.push('&');
            i += 1;
        }
    }
}

/// Would [`decode`] change `input` at all? (Cheap pre-check: any '&'.)
pub fn may_have_entities(input: &str) -> bool {
    input.contains('&')
}

/// Entities longer than this are treated as plain text.
const MAX_ENTITY_LEN: usize = 12;

fn find_semicolon(bytes: &[u8], start: usize) -> Option<usize> {
    let limit = (start + MAX_ENTITY_LEN).min(bytes.len());
    (start..limit).find(|&j| bytes[j] == b';')
}

/// Decode one entity body (`amp`, `#65`, `#x42`) into `out`; returns
/// `false` (appending nothing) when the body is not a valid entity.
fn decode_one_into(body: &str, out: &mut String) -> bool {
    if let Some(num) = body.strip_prefix('#') {
        let cp = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()
        } else {
            num.parse::<u32>().ok()
        };
        if let Some(c) = cp.and_then(char::from_u32) {
            out.push(c);
            return true;
        }
        return false;
    }
    if let Some((_, v)) = NAMED.iter().find(|(name, _)| *name == body) {
        out.push_str(v);
        return true;
    }
    false
}

/// Encode the minimal set of characters needed to round-trip text
/// safely through HTML.
pub fn encode_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_named_entities() {
        assert_eq!(decode("&lt;b&gt;"), "<b>");
        assert_eq!(decode("&nbsp;"), " ");
        assert_eq!(decode("Caf&eacute;"), "Café");
    }

    #[test]
    fn decodes_numeric_entities() {
        assert_eq!(decode("&#8212;"), "\u{2014}");
        assert_eq!(decode("&#x20AC;"), "€");
        assert_eq!(decode("&#X20AC;"), "€");
    }

    #[test]
    fn leaves_unknown_entities_verbatim() {
        assert_eq!(decode("&bogus;"), "&bogus;");
        assert_eq!(decode("AT&T"), "AT&T");
        assert_eq!(decode("a & b"), "a & b");
    }

    #[test]
    fn ignores_overlong_candidate_entities() {
        let s = "&thisistoolongforanentity;";
        assert_eq!(decode(s), s);
    }

    #[test]
    fn rejects_invalid_codepoints() {
        assert_eq!(decode("&#1114112;"), "&#1114112;"); // > U+10FFFF
        assert_eq!(decode("&#xD800;"), "&#xD800;"); // surrogate
    }

    #[test]
    fn handles_trailing_ampersand() {
        assert_eq!(decode("fish &"), "fish &");
        assert_eq!(decode("&"), "&");
    }

    #[test]
    fn preserves_multibyte_text() {
        assert_eq!(decode("héllo &amp; wörld — ok"), "héllo & wörld — ok");
    }

    #[test]
    fn encode_round_trips() {
        let original = "a < b & c > d";
        assert_eq!(decode(&encode_text(original)), original);
    }

    #[test]
    fn decode_into_matches_decode() {
        let cases = [
            "",
            "plain text",
            "Simon &amp; Garfunkel",
            "&lt;b&gt;&nbsp;&bogus;",
            "&#65;&#x42;&#X20AC;",
            "héllo &amp; wörld — ok",
            "AT&T & fish &",
            "&thisistoolongforanentity;",
            "&#1114112;&#xD800;",
            "&amp",
            "tail&",
            "&;",
        ];
        for case in cases {
            let mut buf = String::from("prefix·");
            decode_into(case, &mut buf);
            assert_eq!(buf, format!("prefix·{}", decode(case)), "case {case:?}");
        }
    }

    #[test]
    fn decode_into_appends_without_clearing() {
        let mut buf = String::new();
        decode_into("a&amp;", &mut buf);
        decode_into("b&lt;", &mut buf);
        assert_eq!(buf, "a&b<");
    }
}
