//! The five evaluation domains and their SODs (paper §IV-A).

use objectrunner_sod::{Multiplicity, Sod, SodBuilder};

/// One of the paper's five domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Concerts,
    Albums,
    Books,
    Publications,
    Cars,
}

impl Domain {
    /// All domains, in the paper's order.
    pub const ALL: [Domain; 5] = [
        Domain::Concerts,
        Domain::Albums,
        Domain::Books,
        Domain::Publications,
        Domain::Cars,
    ];

    /// Resolve a case-insensitive name (`"concerts"`, `"Books"`, …)
    /// back to the domain; the inverse of [`Domain::name`]. Used by
    /// the serving layer, which receives domains as protocol strings.
    pub fn by_name(name: &str) -> Option<Domain> {
        Domain::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Concerts => "Concerts",
            Domain::Albums => "Albums",
            Domain::Books => "Books",
            Domain::Publications => "Publications",
            Domain::Cars => "Cars",
        }
    }

    /// The domain's SOD, exactly as specified in §IV-A:
    ///
    /// 1. *Concerts* — tuple(artist, date, location(theater, address?))
    /// 2. *Albums* — tuple(title, artist, price, date?)
    /// 3. *Books* — tuple(title, {author}+, price, date?)
    /// 4. *Publications* — tuple(title, {author}+, date?)
    /// 5. *Cars* — tuple(brand, price)
    pub fn sod(&self) -> Sod {
        match self {
            Domain::Concerts => SodBuilder::tuple("concert")
                .entity("artist", Multiplicity::One)
                .entity("date", Multiplicity::One)
                .nested(
                    SodBuilder::tuple("location")
                        .entity("theater", Multiplicity::One)
                        .entity("address", Multiplicity::Optional),
                )
                .build(),
            Domain::Albums => SodBuilder::tuple("album")
                .entity("title", Multiplicity::One)
                .entity("artist", Multiplicity::One)
                .entity("price", Multiplicity::One)
                .entity("date", Multiplicity::Optional)
                .build(),
            Domain::Books => SodBuilder::tuple("book")
                .entity("title", Multiplicity::One)
                .set_of_entity("author", Multiplicity::Plus)
                .entity("price", Multiplicity::One)
                .entity("date", Multiplicity::Optional)
                .build(),
            Domain::Publications => SodBuilder::tuple("publication")
                .entity("title", Multiplicity::One)
                .set_of_entity("author", Multiplicity::Plus)
                .entity("date", Multiplicity::Optional)
                .build(),
            Domain::Cars => SodBuilder::tuple("car")
                .entity("brand", Multiplicity::One)
                .entity("price", Multiplicity::One)
                .build(),
        }
    }

    /// The SOD's attribute names (entity types), set-valued ones
    /// included once.
    pub fn attributes(&self) -> Vec<&'static str> {
        match self {
            Domain::Concerts => vec!["artist", "date", "theater", "address"],
            Domain::Albums => vec!["title", "artist", "price", "date"],
            Domain::Books => vec!["title", "author", "price", "date"],
            Domain::Publications => vec!["title", "author", "date"],
            Domain::Cars => vec!["brand", "price"],
        }
    }

    /// The identity-key attributes for cross-source de-duplication:
    /// the SOD's *required scalar* entity types. Optional attributes
    /// (absent on some sources — fused in, not identity) and set
    /// attributes (cardinality varies per source) are excluded, so two
    /// sources listing the same real-world object agree on the key.
    pub fn key_attributes(&self) -> Vec<&'static str> {
        match self {
            Domain::Concerts => vec!["artist", "date", "theater"],
            Domain::Albums => vec!["title", "artist", "price"],
            Domain::Books => vec!["title", "price"],
            Domain::Publications => vec!["title"],
            Domain::Cars => vec!["brand", "price"],
        }
    }

    /// Set-valued attributes.
    pub fn set_attributes(&self) -> Vec<&'static str> {
        match self {
            Domain::Books | Domain::Publications => vec!["author"],
            _ => vec![],
        }
    }

    /// The optional attribute of the SOD (if any).
    pub fn optional_attribute(&self) -> Option<&'static str> {
        match self {
            Domain::Concerts => Some("address"),
            Domain::Albums | Domain::Books | Domain::Publications => Some("date"),
            Domain::Cars => None,
        }
    }
}

/// A golden-standard object: attribute → values (sets hold several).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GoldObject {
    pub attrs: Vec<(String, Vec<String>)>,
}

impl GoldObject {
    /// Add an attribute value.
    pub fn push(&mut self, attr: &str, value: &str) {
        match self.attrs.iter_mut().find(|(a, _)| a == attr) {
            Some((_, vs)) => vs.push(value.to_owned()),
            None => self.attrs.push((attr.to_owned(), vec![value.to_owned()])),
        }
    }

    /// Values of one attribute.
    pub fn values(&self, attr: &str) -> &[String] {
        self.attrs
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, vs)| vs.as_slice())
            .unwrap_or(&[])
    }

    /// Does the object carry this attribute?
    pub fn has(&self, attr: &str) -> bool {
        !self.values(attr).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sods_match_the_paper() {
        assert_eq!(
            Domain::Concerts.sod().to_string(),
            "concert(artist, date, location(theater, address?))"
        );
        assert_eq!(
            Domain::Books.sod().to_string(),
            "book(title, {author}+, price, date?)"
        );
        assert_eq!(Domain::Cars.sod().to_string(), "car(brand, price)");
        assert_eq!(
            Domain::Publications.sod().to_string(),
            "publication(title, {author}+, date?)"
        );
        assert_eq!(
            Domain::Albums.sod().to_string(),
            "album(title, artist, price, date?)"
        );
    }

    #[test]
    fn attributes_align_with_sod_entity_types() {
        for d in Domain::ALL {
            let sod = d.sod();
            let types = sod.entity_types();
            for attr in d.attributes() {
                assert!(types.contains(&attr), "{attr} missing in {} SOD", d.name());
            }
        }
    }

    #[test]
    fn by_name_inverts_name() {
        for d in Domain::ALL {
            assert_eq!(Domain::by_name(d.name()), Some(d));
            assert_eq!(Domain::by_name(&d.name().to_lowercase()), Some(d));
        }
        assert_eq!(Domain::by_name("nonsense"), None);
    }

    #[test]
    fn gold_object_accumulates_set_values() {
        let mut o = GoldObject::default();
        o.push("author", "A");
        o.push("author", "B");
        o.push("title", "T");
        assert_eq!(o.values("author"), &["A", "B"]);
        assert!(o.has("title"));
        assert!(!o.has("price"));
    }
}
