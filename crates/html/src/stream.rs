//! Incremental, pull-based HTML tokenization.
//!
//! [`EventTokenizer`] yields one [`Event`] at a time from a borrowed
//! byte slice — no token vector, no up-front pass. Text that needs no
//! entity decoding is handed out as a zero-copy slice of the input;
//! decoded text goes through a reusable scratch buffer and, when the
//! tokenizer is built with an [`Arena`], lives in that arena so a whole
//! page's decoded text is released by a single arena reset.
//!
//! The event grammar and error tolerance are byte-for-byte those of
//! [`crate::tokenizer::tokenize`] — which is now implemented on top of
//! this type, so the tokenizer test-suite pins both paths at once.

use crate::arena::Arena;
use crate::entities;
use crate::intern::Symbol;
use crate::tokenizer::{Token, RAW_TEXT_ELEMENTS};
use std::borrow::Cow;

/// One parse event. Borrowed variants point into the input (or the
/// arena) — nothing is copied until the caller decides to keep it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<name attr="v">`; `self_closing` records a trailing `/>`.
    Open {
        name: Symbol,
        attrs: Vec<(Symbol, Symbol)>,
        self_closing: bool,
    },
    /// `</name>`
    Close { name: Symbol },
    /// Character data, entity-decoded, whitespace preserved.
    Text(Cow<'a, str>),
    /// `<!-- ... -->` (and processing instructions).
    Comment(Cow<'a, str>),
    /// `<!DOCTYPE ...>` with the keyword stripped.
    Doctype(Cow<'a, str>),
}

impl Event<'_> {
    /// Convert to the owned [`Token`] representation.
    pub fn into_token(self) -> Token {
        match self {
            Event::Open {
                name,
                attrs,
                self_closing,
            } => Token::StartTag {
                name,
                attrs,
                self_closing,
            },
            Event::Close { name } => Token::EndTag { name },
            Event::Text(t) => Token::Text(t.into_owned()),
            Event::Comment(c) => Token::Comment(c.into_owned()),
            Event::Doctype(d) => Token::Doctype(d.into_owned()),
        }
    }
}

/// Resumable pull tokenizer (see module docs).
pub struct EventTokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Decoded text destination; `None` falls back to owned strings.
    arena: Option<&'a Arena>,
    /// Reusable entity-decode scratch.
    scratch: String,
    /// Raw-text element just opened: its content is the next event.
    pending_raw: Option<Symbol>,
}

impl<'a> EventTokenizer<'a> {
    /// Tokenize `input`, allocating decoded text as owned strings.
    pub fn new(input: &'a str) -> EventTokenizer<'a> {
        EventTokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            arena: None,
            scratch: String::new(),
            pending_raw: None,
        }
    }

    /// Tokenize `input`, placing decoded text in `arena` so every text
    /// event is a borrow and the page is freed by one arena reset.
    pub fn with_arena(input: &'a str, arena: &'a Arena) -> EventTokenizer<'a> {
        EventTokenizer {
            arena: Some(arena),
            ..EventTokenizer::new(input)
        }
    }

    /// Pull the next event; `None` at end of input.
    pub fn next_event(&mut self) -> Option<Event<'a>> {
        loop {
            if let Some(name) = self.pending_raw.take() {
                if let Some(ev) = self.consume_raw_text(name) {
                    return Some(ev);
                }
                continue; // close tag immediately follows the open
            }
            if self.pos >= self.bytes.len() {
                return None;
            }
            let ev = if self.bytes[self.pos] == b'<' {
                self.consume_markup()
            } else {
                Some(self.consume_text())
            };
            if ev.is_some() {
                return ev;
            }
        }
    }

    /// Decode `raw` into the cheapest representation available.
    fn decoded(&mut self, raw: &'a str) -> Cow<'a, str> {
        if !entities::may_have_entities(raw) {
            return Cow::Borrowed(raw);
        }
        match self.arena {
            Some(arena) => {
                self.scratch.clear();
                entities::decode_into(raw, &mut self.scratch);
                Cow::Borrowed(arena.alloc_str(&self.scratch))
            }
            None => Cow::Owned(entities::decode(raw)),
        }
    }

    fn consume_text(&mut self) -> Event<'a> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        debug_assert!(!raw.is_empty());
        let text = self.decoded(raw);
        Event::Text(text)
    }

    fn consume_markup(&mut self) -> Option<Event<'a>> {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        let rest = &self.bytes[self.pos..];
        if rest.len() < 2 {
            // Lone '<' at EOF: literal text.
            self.pos += 1;
            return Some(Event::Text(Cow::Borrowed("<")));
        }
        match rest[1] {
            b'!' => Some(self.consume_declaration()),
            b'/' => self.consume_end_tag(),
            b'?' => Some(self.consume_processing_instruction()),
            c if c.is_ascii_alphabetic() => Some(self.consume_start_tag()),
            _ => {
                // '<' followed by junk: literal text.
                self.pos += 1;
                Some(Event::Text(Cow::Borrowed("<")))
            }
        }
    }

    fn consume_declaration(&mut self) -> Event<'a> {
        if self.input[self.pos..].starts_with("<!--") {
            let body_start = self.pos + 4;
            return match self.input[body_start..].find("-->") {
                Some(off) => {
                    let body = &self.input[body_start..body_start + off];
                    self.pos = body_start + off + 3;
                    Event::Comment(Cow::Borrowed(body))
                }
                None => {
                    // Unterminated comment: swallow to EOF.
                    let body = &self.input[body_start..];
                    self.pos = self.bytes.len();
                    Event::Comment(Cow::Borrowed(body))
                }
            };
        }
        // <!DOCTYPE ...> or other declarations: up to next '>'.
        let body_start = self.pos + 2;
        let end = self.find_byte(body_start, b'>').unwrap_or(self.bytes.len());
        let mut body = self.input[body_start..end].trim();
        // Strip the leading DOCTYPE keyword, keeping only its subject.
        if body.len() >= 7 && body[..7].eq_ignore_ascii_case("doctype") {
            body = body[7..].trim_start();
        }
        self.pos = (end + 1).min(self.bytes.len());
        Event::Doctype(Cow::Borrowed(body))
    }

    fn consume_processing_instruction(&mut self) -> Event<'a> {
        // Treated as a comment-like construct; skipped by the DOM builder.
        let end = self
            .find_byte(self.pos + 2, b'>')
            .unwrap_or(self.bytes.len());
        let body = &self.input[self.pos + 2..end];
        self.pos = (end + 1).min(self.bytes.len());
        Event::Comment(Cow::Borrowed(body))
    }

    fn consume_end_tag(&mut self) -> Option<Event<'a>> {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        let raw = &self.input[name_start..i];
        let end = self.find_byte(i, b'>').unwrap_or(self.bytes.len());
        self.pos = (end + 1).min(self.bytes.len());
        if raw.is_empty() {
            return None;
        }
        Some(Event::Close {
            name: Symbol::intern_lower(raw),
        })
    }

    fn consume_start_tag(&mut self) -> Event<'a> {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        let name = Symbol::intern_lower(&self.input[name_start..i]);
        let (attrs, self_closing, after) = self.consume_attributes(i);
        self.pos = after;
        if !self_closing && RAW_TEXT_ELEMENTS.contains(&name.as_str()) {
            self.pending_raw = Some(name);
        }
        Event::Open {
            name,
            attrs,
            self_closing,
        }
    }

    /// Parse attributes starting at byte offset `i`; returns
    /// (attrs, self_closing, position after the closing '>').
    fn consume_attributes(&mut self, mut i: usize) -> (Vec<(Symbol, Symbol)>, bool, usize) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= self.bytes.len() {
                return (attrs, self_closing, i);
            }
            match self.bytes[i] {
                b'>' => return (attrs, self_closing, i + 1),
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    let name_start = i;
                    while i < self.bytes.len()
                        && !self.bytes[i].is_ascii_whitespace()
                        && !matches!(self.bytes[i], b'=' | b'>' | b'/')
                    {
                        i += 1;
                    }
                    let name = &self.input[name_start..i];
                    while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let value: &'a str = if i < self.bytes.len() && self.bytes[i] == b'=' {
                        i += 1;
                        while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        let (v, next) = self.consume_attr_value(i);
                        i = next;
                        v
                    } else {
                        ""
                    };
                    if !name.is_empty() {
                        // Attribute values are always plain input
                        // slices, so decoding can go through the
                        // scratch buffer — no per-attribute String.
                        let value_sym = if entities::may_have_entities(value) {
                            self.scratch.clear();
                            entities::decode_into(value, &mut self.scratch);
                            Symbol::intern(&self.scratch)
                        } else {
                            Symbol::intern(value)
                        };
                        attrs.push((Symbol::intern_lower(name), value_sym));
                    } else if i < self.bytes.len() && !matches!(self.bytes[i], b'>' | b'/') {
                        // Junk byte that is neither name nor terminator:
                        // skip it to guarantee progress.
                        i += 1;
                    }
                }
            }
        }
    }

    fn consume_attr_value(&self, i: usize) -> (&'a str, usize) {
        if i >= self.bytes.len() {
            return ("", i);
        }
        match self.bytes[i] {
            q @ (b'"' | b'\'') => {
                let start = i + 1;
                let end = self.find_byte(start, q).unwrap_or(self.bytes.len());
                (&self.input[start..end], (end + 1).min(self.bytes.len()))
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < self.bytes.len()
                    && !self.bytes[j].is_ascii_whitespace()
                    && self.bytes[j] != b'>'
                {
                    j += 1;
                }
                (&self.input[start..j], j)
            }
        }
    }

    /// Raw-text content runs to the matching case-insensitive close
    /// tag. Scanned in place — no lowercased copy of the tail.
    fn consume_raw_text(&mut self, name: Symbol) -> Option<Event<'a>> {
        let close = name.as_str().as_bytes(); // already lower-case
        let hay = &self.bytes[self.pos..];
        let mut i = 0;
        let mut found = None;
        while i + 2 + close.len() <= hay.len() {
            let Some(lt) = hay[i..].iter().position(|&b| b == b'<') else {
                break;
            };
            let at = i + lt;
            if at + 2 + close.len() > hay.len() {
                break;
            }
            if hay[at + 1] == b'/' && hay[at + 2..at + 2 + close.len()].eq_ignore_ascii_case(close)
            {
                found = Some(at);
                break;
            }
            i = at + 1;
        }
        match found {
            Some(off) => {
                let text = &self.input[self.pos..self.pos + off];
                // Let consume_end_tag handle the close tag itself.
                self.pos += off;
                // Raw text is never entity-decoded.
                (!text.is_empty()).then_some(Event::Text(Cow::Borrowed(text)))
            }
            None => {
                let text = &self.input[self.pos..];
                self.pos = self.bytes.len();
                (!text.is_empty()).then_some(Event::Text(Cow::Borrowed(text)))
            }
        }
    }

    fn find_byte(&self, from: usize, byte: u8) -> Option<usize> {
        self.bytes[from.min(self.bytes.len())..]
            .iter()
            .position(|&b| b == byte)
            .map(|off| from + off)
    }
}

pub(crate) fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    /// Collect events as owned tokens for comparison.
    fn events(input: &str) -> Vec<Token> {
        let mut t = EventTokenizer::new(input);
        let mut out = Vec::new();
        while let Some(ev) = t.next_event() {
            out.push(ev.into_token());
        }
        out
    }

    #[test]
    fn plain_text_is_borrowed() {
        let mut t = EventTokenizer::new("<p>no entities here</p>");
        t.next_event(); // open
        match t.next_event() {
            Some(Event::Text(Cow::Borrowed(s))) => assert_eq!(s, "no entities here"),
            other => panic!("expected borrowed text, got {other:?}"),
        }
    }

    #[test]
    fn decoded_text_is_owned_without_arena() {
        let mut t = EventTokenizer::new("<p>a &amp; b</p>");
        t.next_event();
        match t.next_event() {
            Some(Event::Text(Cow::Owned(s))) => assert_eq!(s, "a & b"),
            other => panic!("expected owned text, got {other:?}"),
        }
    }

    #[test]
    fn decoded_text_is_borrowed_with_arena() {
        let arena = Arena::new();
        let mut t = EventTokenizer::with_arena("<p>a &amp; b &lt;x&gt;</p>", &arena);
        t.next_event();
        match t.next_event() {
            Some(Event::Text(Cow::Borrowed(s))) => assert_eq!(s, "a & b <x>"),
            other => panic!("expected arena-borrowed text, got {other:?}"),
        }
        assert_eq!(arena.allocated_bytes(), "a & b <x>".len());
    }

    #[test]
    fn raw_text_close_found_without_lowercasing() {
        let toks = events("<script>var a = '</SCRIPTx' + 1<2;</SCRIPT>after");
        assert_eq!(toks[0], Token::start("script"));
        // "</SCRIPTx" matches the "</script" prefix search — same
        // substring semantics as the historical lowercased find().
        assert!(matches!(&toks[1], Token::Text(t) if t == "var a = '"));
    }

    #[test]
    fn resumable_pull_interleaves_with_caller_work() {
        let mut t = EventTokenizer::new("<ul><li>a</li><li>b</li></ul>");
        let mut texts = Vec::new();
        while let Some(ev) = t.next_event() {
            if let Event::Text(s) = ev {
                texts.push(s.into_owned());
            }
        }
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn event_stream_equals_token_stream() {
        let cases = [
            "<div><p>hello</p></div>",
            "<DIV CLASS=\"Main\">x</DIV>",
            "<input type=text checked value='a b' data-x=\"1&amp;2\">",
            "<br/><img src=x />",
            "<script>if (a<b) { x(); }</script><p>t</p>",
            "<style>.a{}</STYLE>after",
            "<script>var x = 1;",
            "<!DOCTYPE html><!-- note --><p>x</p>",
            "a<!-- no end",
            "<p>Simon &amp; Garfunkel</p>",
            "a < b",
            "x<",
            "</p class=\"x\">",
            "<?xml version=\"1.0\"?><p>x</p>",
            "<",
            "<<>><",
            "<a href=",
            "<a href='x",
            "</",
            "<!",
            "<!-",
            "<p <q>",
            "<textarea>&amp; raw</textarea>",
            "<title>café &eacute;</title>",
        ];
        for case in cases {
            assert_eq!(events(case), tokenize(case), "case {case:?}");
        }
    }

    #[test]
    fn arena_and_plain_agree() {
        let page = "<html><body><p>a &amp; b</p><div data-x=\"1&lt;2\">c</div></body></html>";
        let arena = Arena::new();
        let mut with = EventTokenizer::with_arena(page, &arena);
        let mut without = EventTokenizer::new(page);
        loop {
            match (with.next_event(), without.next_event()) {
                (None, None) => break,
                (a, b) => assert_eq!(a.map(Event::into_token), b.map(Event::into_token)),
            }
        }
    }
}
