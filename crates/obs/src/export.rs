//! Exporters: JSONL structured events, Chrome `trace_event` JSON, the
//! human `obs report` table, and the legacy `--stats-json` renderer.
//!
//! All output is canonical — fixed key order, sorted collections — so
//! equal inputs render byte-identically and golden tests can compare
//! files directly.

use crate::metrics::MetricsSnapshot;
use crate::span::{AttrValue, SpanRecord};
use std::fmt::Write as _;

/// One JSONL line per span, then one per metric, in canonical order.
///
/// Span lines (sorted `(trace, id)` by the caller — [`crate::Obs`]
/// export methods already do):
/// `{"type":"span","trace":T,"id":I,"parent":P,"name":"…","start_us":S,"dur_us":D,"cpu_us":C,"attrs":{…}}`
///
/// Metric lines (sorted by name within each kind):
/// `{"type":"counter","name":"…","value":N}`
/// `{"type":"gauge","name":"…","value":N}`
/// `{"type":"histogram","name":"…","bounds":[…],"counts":[…],"sum":S,"count":N}`
pub fn events_jsonl(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(spans.len() * 96 + 1024);
    for span in spans {
        push_span_line(&mut out, span);
    }
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            crate::metrics::escape(name),
            value
        );
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            crate::metrics::escape(name),
            value
        );
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
            crate::metrics::escape(name),
            join(&h.bounds),
            join(&h.counts),
            h.sum,
            h.count
        );
    }
    out
}

fn push_span_line(out: &mut String, span: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"type\":\"span\",\"trace\":{},\"id\":{},\"parent\":{},\"name\":\"{}\",\
         \"start_us\":{},\"dur_us\":{},\"cpu_us\":{},\"attrs\":{{",
        span.trace,
        span.id,
        span.parent,
        crate::metrics::escape(span.name),
        span.start_micros,
        span.dur_micros,
        span.cpu_micros,
    );
    // Attributes sorted by key for canonical rendering.
    let mut attrs: Vec<&(&'static str, AttrValue)> = span.attrs.iter().collect();
    attrs.sort_by_key(|(k, _)| *k);
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", crate::metrics::escape(k), v.render_json());
    }
    out.push_str("}}\n");
}

/// Chrome `trace_event` JSON (the object form with a `traceEvents`
/// array of `"ph":"X"` complete events), loadable in `chrome://tracing`
/// and Perfetto. One lane (`tid`) per trace, so concurrent requests /
/// inductions render side by side; span attributes become `args`.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.trace, s.start_micros, s.id));
    let mut out = String::with_capacity(spans.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"objectrunner\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{",
            crate::metrics::escape(span.name),
            span.start_micros,
            span.dur_micros,
            span.trace,
        );
        let mut attrs: Vec<&(&'static str, AttrValue)> = span.attrs.iter().collect();
        attrs.sort_by_key(|(k, _)| *k);
        let _ = write!(out, "\"span_id\":{},\"parent_id\":{}", span.id, span.parent);
        if span.cpu_micros > 0 {
            let _ = write!(out, ",\"cpu_us\":{}", span.cpu_micros);
        }
        for (k, v) in attrs {
            let _ = write!(
                out,
                ",\"{}\":{}",
                crate::metrics::escape(k),
                v.render_json()
            );
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The human `obs report` summary: spans aggregated by name (count,
/// total/mean/max wall, total CPU), then counters, gauges, and
/// histograms.
pub fn report(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== spans ==\n");
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>10} {:>10} {:>12}",
        "name", "count", "total_ms", "mean_us", "max_us", "cpu_ms"
    );
    let mut by_name: std::collections::BTreeMap<&str, (u64, u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for s in spans {
        let e = by_name.entry(s.name).or_insert((0, 0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_micros;
        e.2 = e.2.max(s.dur_micros);
        e.3 += s.cpu_micros;
    }
    for (name, (count, total, max, cpu)) in &by_name {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12.3} {:>10.1} {:>10} {:>12.3}",
            name,
            count,
            *total as f64 / 1_000.0,
            *total as f64 / *count as f64,
            max,
            *cpu as f64 / 1_000.0
        );
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n== counters ==\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "{name:<56} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n== gauges ==\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<56} {value:>12}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n== histograms ==\n");
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "{name:<56} n={} mean={:.1} buckets={:?}",
                h.count,
                h.mean(),
                h.counts
            );
        }
    }
    out
}

/// The canonical pipeline stage order; the legacy `stage_timings`
/// array renders in this order, which matches execution order for
/// every pipeline entry point (full induction and the extract-only
/// fast path alike).
pub const STAGE_ORDER: &[&str] = &[
    "parse",
    "clean",
    "segment",
    "annotate",
    "sample",
    "sample.rerun",
    "wrap",
    "extract",
];

/// Legacy-alias map: old `--stats-json` key → canonical metric name.
/// The old keys stay on the wire so `results/` tooling keeps parsing;
/// the canonical names are what the registry and baselines use.
pub const LEGACY_ALIASES: &[(&str, &str)] = &[
    ("pages", "objectrunner.core.pipeline.pages"),
    ("sample_pages", "objectrunner.core.pipeline.sample_pages"),
    ("support_used", "objectrunner.core.wrap.support_used"),
    ("conflict_splits", "objectrunner.core.wrap.conflict_splits"),
    ("rounds", "objectrunner.core.wrap.rounds"),
    ("reruns", "objectrunner.core.wrap.reruns"),
    (
        "wrapping_micros",
        "objectrunner.core.pipeline.wrapping_micros",
    ),
    (
        "extraction_micros",
        "objectrunner.core.pipeline.extraction_micros",
    ),
    ("threads", "objectrunner.core.exec.threads"),
    (
        "annotation_cache_hits",
        "objectrunner.core.annotate.cache_hits",
    ),
    (
        "annotation_cache_misses",
        "objectrunner.core.annotate.cache_misses",
    ),
];

/// Canonical metric name of one stage's wall-clock counter. A stage
/// *ran* iff this key is present in a snapshot (value may be 0).
pub fn stage_wall_metric(stage: &str) -> String {
    format!("objectrunner.core.stage.{stage}.wall_micros")
}

/// Canonical metric name of one stage's CPU counter.
pub fn stage_cpu_metric(stage: &str) -> String {
    format!("objectrunner.core.stage.{stage}.cpu_micros")
}

/// Render a per-run metrics snapshot as the legacy `--stats-json`
/// object — the exact byte format `PipelineStats::to_json` emitted
/// before the registry absorbed it, so `results/` tooling and the
/// serve protocol keep parsing unchanged. This is the one shared
/// emitter behind every eval binary's `--stats-json` flag.
pub fn legacy_stats_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    for (i, (alias, canonical)) in LEGACY_ALIASES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{alias}\":{}", snapshot.counter(canonical));
    }
    out.push_str(",\"stage_timings\":[");
    let mut first = true;
    for stage in STAGE_ORDER {
        let wall_key = stage_wall_metric(stage);
        // Key presence, not value, marks a stage as having run.
        if !snapshot.counters.contains_key(&wall_key) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"stage\":\"{stage}\",\"wall_micros\":{},\"cpu_micros\":{}}}",
            snapshot.counter(&wall_key),
            snapshot.counter(&stage_cpu_metric(stage))
        );
    }
    out.push_str("]}");
    out
}

/// One per-source stats line, as printed by the eval binaries under
/// `--stats-json`: `{"source":…,"system":…,"stats":{legacy object}}`.
pub fn stats_json_line(source: &str, system: &str, snapshot: &MetricsSnapshot) -> String {
    format!(
        "{{\"source\":\"{}\",\"system\":\"{}\",\"stats\":{}}}",
        crate::metrics::escape(source),
        crate::metrics::escape(system),
        legacy_stats_json(snapshot)
    )
}

/// Prometheus-style text exposition of a full snapshot: one `# TYPE`
/// line per metric, histograms expanded into cumulative `_bucket{le=…}`
/// series plus `_sum`/`_count`, terminated by a `# EOF` line (so a
/// protocol client streaming the block knows where it ends). Metric
/// names have non-`[a-zA-Z0-9_:]` characters mapped to `_` per the
/// exposition-format grammar; ordering is the snapshot's (sorted), so
/// equal snapshots render byte-identically.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.counts.iter().enumerate() {
            cumulative += count;
            match h.bounds.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out.push_str("# EOF\n");
    out
}

fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

fn join(xs: &[u64]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_spans() -> (Vec<SpanRecord>, MetricsSnapshot) {
        let obs = Obs::enabled();
        let mut root = obs.trace("pipeline.induce");
        root.attr_u64("pages", 2);
        let mut child = root.child("stage.parse");
        child.attr_str("mode", "batch");
        child.finish();
        root.finish();
        obs.counter_add("objectrunner.test.pages", 2);
        obs.histogram_record("objectrunner.test.lat", &[10, 100], 42);
        (obs.drain_spans(), obs.snapshot())
    }

    #[test]
    fn jsonl_lines_are_canonical_and_typed() {
        let (spans, snap) = sample_spans();
        let text = events_jsonl(&spans, &snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"type\":\"span\""));
        assert!(lines[0].contains("\"name\":\"pipeline.induce\""));
        assert!(lines[0].contains("\"attrs\":{\"pages\":2}"));
        assert!(lines[1].contains("\"attrs\":{\"mode\":\"batch\"}"));
        assert!(lines[2].starts_with("{\"type\":\"counter\""));
        assert!(lines[3].starts_with("{\"type\":\"histogram\""));
        // Byte-stable on re-render.
        assert_eq!(text, events_jsonl(&spans, &snap));
    }

    #[test]
    fn chrome_trace_has_complete_events() {
        let (spans, _) = sample_spans();
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"stage.parse\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn report_renders_aggregates() {
        let (spans, snap) = sample_spans();
        let text = report(&spans, &snap);
        assert!(text.contains("== spans =="));
        assert!(text.contains("pipeline.induce"));
        assert!(text.contains("== counters =="));
        assert!(text.contains("objectrunner.test.pages"));
    }

    #[test]
    fn legacy_stats_json_respects_stage_presence() {
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("objectrunner.core.pipeline.pages", 5);
        snap.set_counter(stage_wall_metric("parse"), 10);
        snap.set_counter(stage_cpu_metric("parse"), 9);
        snap.set_counter(stage_wall_metric("extract"), 0);
        let json = legacy_stats_json(&snap);
        assert!(json.starts_with("{\"pages\":5,"));
        assert!(json.contains("\"stage\":\"parse\",\"wall_micros\":10,\"cpu_micros\":9"));
        // extract ran (key present) even with 0 wall.
        assert!(json.contains("\"stage\":\"extract\",\"wall_micros\":0"));
        // wrap never ran: no key, no entry.
        assert!(!json.contains("\"stage\":\"wrap\""));
        assert!(json.contains("\"threads\":0"));
    }

    #[test]
    fn prometheus_text_expands_histograms_cumulatively() {
        let (_, snap) = sample_spans();
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE objectrunner_test_pages counter\n"));
        assert!(text.contains("objectrunner_test_pages 2\n"));
        assert!(text.contains("# TYPE objectrunner_test_lat histogram\n"));
        // 42 lands in the ≤100 bucket; cumulative counts: 0, 1, 1.
        assert!(text.contains("objectrunner_test_lat_bucket{le=\"10\"} 0\n"));
        assert!(text.contains("objectrunner_test_lat_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("objectrunner_test_lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("objectrunner_test_lat_sum 42\n"));
        assert!(text.contains("objectrunner_test_lat_count 1\n"));
        assert!(text.ends_with("# EOF\n"));
        assert_eq!(text, prometheus_text(&snap), "byte-stable");
    }

    #[test]
    fn stats_line_wraps_source_and_system() {
        let snap = MetricsSnapshot::default();
        let line = stats_json_line("golden-Books", "OR", &snap);
        assert!(line.starts_with("{\"source\":\"golden-Books\",\"system\":\"OR\",\"stats\":{"));
        assert!(line.ends_with("}}"));
    }
}
