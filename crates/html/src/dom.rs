//! Arena-based DOM with JTidy-style error recovery.
//!
//! The tree builder consumes the tokenizer's stream and always produces
//! a well-formed tree: void elements never take children, implied end
//! tags are inserted (`<li>`, `<p>`, `<option>`, table parts), stray
//! end tags are dropped, and everything left open at EOF is closed.

use crate::tokenizer::Token;
use std::fmt;

/// Index of a node in its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root.
    Document,
    /// An element with its (lower-cased) tag name and attributes.
    Element {
        name: String,
        attrs: Vec<(String, String)>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment (dropped by cleaning).
    Comment(String),
}

/// One DOM node: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

/// An HTML document as a node arena rooted at [`Document::root`].
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
}

/// Elements that never have content.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// `(child, closes)`: opening `child` implies closing the nearest open
/// element in `closes`.
const IMPLIED_END: &[(&str, &[&str])] = &[
    ("li", &["li"]),
    ("option", &["option"]),
    ("tr", &["tr", "td", "th"]),
    ("td", &["td", "th"]),
    ("th", &["td", "th"]),
    ("p", &["p"]),
    ("dt", &["dt", "dd"]),
    ("dd", &["dt", "dd"]),
];

impl Document {
    /// Create a document holding only a root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The synthetic root.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the arena (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Append a new node under `parent` and return its id.
    pub fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Element tag name, or `None` for non-elements.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute lookup on an element node.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(a, _)| a == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Iterate over all node ids in depth-first pre-order from `start`.
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![start],
        }
    }

    /// The concatenated, whitespace-normalized text beneath `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        self.collect_text(id, &mut parts);
        let joined = parts.join(" ");
        normalize_ws(&joined)
    }

    fn collect_text(&self, id: NodeId, out: &mut Vec<String>) {
        match &self.node(id).kind {
            NodeKind::Text(t) => {
                let t = normalize_ws(t);
                if !t.is_empty() {
                    out.push(t);
                }
            }
            NodeKind::Comment(_) => {}
            _ => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Direct children ids (slice, no allocation).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent id, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Detach `id` from its parent. The node stays in the arena but is
    /// no longer reachable from the root.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.node(id).parent {
            self.nodes[p.index()].children.retain(|&c| c != id);
            self.nodes[id.index()].parent = None;
        }
    }

    /// All element descendants with the given tag name.
    pub fn elements_by_tag(&self, start: NodeId, tag: &str) -> Vec<NodeId> {
        self.descendants(start)
            .filter(|&id| self.tag_name(id) == Some(tag))
            .collect()
    }

    /// Count of reachable nodes (excludes detached subtrees).
    pub fn reachable_count(&self) -> usize {
        self.descendants(self.root()).count()
    }
}

/// Depth-first pre-order iterator over node ids.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

/// Collapse runs of whitespace into single spaces and trim.
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Build a well-formed [`Document`] from a token stream.
pub fn build(tokens: Vec<Token>) -> Document {
    let mut doc = Document::new();
    // Stack of open elements; root is always at the bottom.
    let mut open: Vec<NodeId> = vec![doc.root()];

    for tok in tokens {
        match tok {
            Token::Doctype(_) => {}
            Token::Comment(c) => {
                let parent = *open.last().expect("root always open");
                doc.push_node(parent, NodeKind::Comment(c));
            }
            Token::Text(t) => {
                let parent = *open.last().expect("root always open");
                doc.push_node(parent, NodeKind::Text(t));
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                apply_implied_end(&doc, &mut open, &name);
                let parent = *open.last().expect("root always open");
                let id = doc.push_node(parent, NodeKind::Element { name: name.clone(), attrs });
                let void = VOID_ELEMENTS.contains(&name.as_str());
                if !void && !self_closing {
                    open.push(id);
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element; drop the end tag if none.
                if let Some(pos) = open
                    .iter()
                    .rposition(|&id| doc.tag_name(id) == Some(name.as_str()))
                {
                    open.truncate(pos);
                }
            }
        }
    }
    doc
}

fn apply_implied_end(doc: &Document, open: &mut Vec<NodeId>, incoming: &str) {
    let Some((_, closes)) = IMPLIED_END.iter().find(|(c, _)| *c == incoming) else {
        return;
    };
    // Close the nearest open element in `closes`, but never cross a
    // structural container boundary (ul/ol/table/tbody/select/dl/div).
    const BOUNDARIES: &[&str] = &[
        "ul", "ol", "table", "tbody", "thead", "tfoot", "select", "dl", "div", "body", "html",
    ];
    // Pop the maximal run of closeable elements at the top of the
    // stack (e.g. an incoming <tr> closes both the open <td> and the
    // previous <tr>), stopping at any container boundary.
    let mut cut = open.len();
    for i in (1..open.len()).rev() {
        let Some(tag) = doc.tag_name(open[i]) else { break };
        if closes.contains(&tag) {
            cut = i;
        } else {
            break;
        }
        if BOUNDARIES.contains(&tag) {
            break;
        }
    }
    open.truncate(cut);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn tags(doc: &Document) -> Vec<String> {
        doc.descendants(doc.root())
            .filter_map(|id| doc.tag_name(id).map(str::to_owned))
            .collect()
    }

    #[test]
    fn builds_simple_tree() {
        let doc = parse("<html><body><p>hi</p></body></html>");
        assert_eq!(tags(&doc), vec!["html", "body", "p"]);
        assert_eq!(doc.text_content(doc.root()), "hi");
    }

    #[test]
    fn auto_closes_li() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.elements_by_tag(doc.root(), "ul")[0];
        let lis = doc.elements_by_tag(ul, "li");
        assert_eq!(lis.len(), 3);
        // Each li is a direct child of ul, not nested.
        for li in lis {
            assert_eq!(doc.parent(li), Some(ul));
        }
    }

    #[test]
    fn auto_closes_p() {
        let doc = parse("<div><p>one<p>two</div>");
        let ps = doc.elements_by_tag(doc.root(), "p");
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "one");
        assert_eq!(doc.text_content(ps[1]), "two");
    }

    #[test]
    fn li_does_not_close_across_nested_ul() {
        let doc = parse("<ul><li>a<ul><li>a1</ul><li>b</ul>");
        let top_ul = doc.elements_by_tag(doc.root(), "ul")[0];
        let direct_lis: Vec<_> = doc
            .children(top_ul)
            .iter()
            .filter(|&&c| doc.tag_name(c) == Some("li"))
            .collect();
        assert_eq!(direct_lis.len(), 2);
    }

    #[test]
    fn table_cells_auto_close() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let trs = doc.elements_by_tag(doc.root(), "tr");
        assert_eq!(trs.len(), 2);
        assert_eq!(doc.elements_by_tag(trs[0], "td").len(), 2);
        assert_eq!(doc.elements_by_tag(trs[1], "td").len(), 1);
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<p>a<br>b</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.children(p).len(), 3);
        let br = doc.elements_by_tag(doc.root(), "br")[0];
        assert!(doc.children(br).is_empty());
    }

    #[test]
    fn stray_end_tags_are_dropped() {
        let doc = parse("</div><p>x</p></span>");
        assert_eq!(tags(&doc), vec!["p"]);
        assert_eq!(doc.text_content(doc.root()), "x");
    }

    #[test]
    fn unclosed_tags_close_at_eof() {
        let doc = parse("<div><span>deep");
        assert_eq!(doc.text_content(doc.root()), "deep");
        assert_eq!(tags(&doc), vec!["div", "span"]);
    }

    #[test]
    fn mismatched_close_pops_to_match() {
        // </div> closes both span and div (span is implicitly closed).
        let doc = parse("<div><span>a</div><p>b</p>");
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        assert_eq!(doc.parent(p), Some(doc.root()));
    }

    #[test]
    fn text_content_normalizes_whitespace() {
        let doc = parse("<p>  a \n b\t</p><p>c</p>");
        assert_eq!(doc.text_content(doc.root()), "a b c");
    }

    #[test]
    fn detach_removes_subtree_from_reachable() {
        let mut doc = parse("<div><p>a</p><p>b</p></div>");
        let before = doc.reachable_count();
        let p = doc.elements_by_tag(doc.root(), "p")[0];
        doc.detach(p);
        assert!(doc.reachable_count() < before);
        assert_eq!(doc.text_content(doc.root()), "b");
    }

    #[test]
    fn attrs_accessible() {
        let doc = parse("<div id=\"main\" class=\"content box\">x</div>");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.attr(div, "id"), Some("main"));
        assert_eq!(doc.attr(div, "class"), Some("content box"));
        assert_eq!(doc.attr(div, "missing"), None);
    }

    #[test]
    fn descendants_preorder() {
        let doc = parse("<a><b></b><c><d></d></c></a>");
        assert_eq!(tags(&doc), vec!["a", "b", "c", "d"]);
    }
}
