//! Regenerate Table I: per-source extraction results for ObjectRunner
//! over the 49-source corpus.

use objectrunner_eval::tables::{corpus_sources, render_table1, table1};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating 49-source corpus…");
    let sources = corpus_sources();
    eprintln!("running ObjectRunner on every source…");
    let rows = table1(&sources);
    print!("{}", render_table1(&rows));
    // Domain subtotals for quick comparison with the paper.
    let total_no: usize = rows.iter().map(|r| r.no).sum();
    let total_oc: usize = rows.iter().map(|r| r.oc).sum();
    println!("\nTotal objects: {total_no}; correct: {total_oc}");
}
