//! Property-based tests for the synthetic source generator: whatever
//! the specification, generation is deterministic and the golden
//! standard is faithful to the pages.

use objectrunner_webgen::{generate_site, Domain, PageKind, Quirk, SiteSpec};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop::sample::select(Domain::ALL.to_vec())
}

fn arb_quirks() -> impl Strategy<Value = Vec<Quirk>> {
    prop::collection::vec(
        prop_oneof![
            Just(Quirk::SharedTextNode),
            (4usize..10).prop_map(Quirk::FixedRecordCount),
            Just(Quirk::VaryingAuthorMarkup),
            Just(Quirk::DecoyRepeatedValue),
            Just(Quirk::NoiseBlocks),
        ],
        0..3,
    )
}

fn arb_spec() -> impl Strategy<Value = SiteSpec> {
    (
        arb_domain(),
        prop::bool::ANY,
        arb_quirks(),
        2usize..10,
        0u64..10_000,
        0usize..3,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(
            |(domain, list, quirks, pages, seed, style, optional, distinct)| {
                let kind = if list {
                    PageKind::List
                } else {
                    PageKind::Detail
                };
                let mut spec = SiteSpec::clean("prop-site", domain, kind, pages, seed);
                spec.quirks = quirks;
                spec.style = style;
                spec.optional_present = optional;
                spec.distinct_markup = distinct;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate_site(&spec);
        let b = generate_site(&spec);
        prop_assert_eq!(a.pages, b.pages);
        prop_assert_eq!(a.truth, b.truth);
    }

    /// Every golden value appears verbatim on its page, for every
    /// domain, style and quirk combination.
    #[test]
    fn golden_values_appear_on_their_pages(spec in arb_spec()) {
        let source = generate_site(&spec);
        prop_assert_eq!(source.pages.len(), spec.pages);
        for (page, objects) in source.pages.iter().zip(source.truth.iter()) {
            for object in objects {
                for (_, values) in &object.attrs {
                    for value in values {
                        prop_assert!(
                            page.contains(value.as_str()),
                            "missing golden value {value:?}"
                        );
                    }
                }
            }
        }
    }

    /// Golden objects always carry every required attribute of the
    /// domain's SOD.
    #[test]
    fn golden_objects_carry_required_attributes(spec in arb_spec()) {
        let source = generate_site(&spec);
        let optional = spec.domain.optional_attribute();
        for object in source.truth.iter().flatten() {
            for attr in spec.domain.attributes() {
                if Some(attr) == optional {
                    continue;
                }
                prop_assert!(object.has(attr), "missing required {attr}");
            }
        }
    }

    /// Pages parse into non-trivial DOMs with the substrate parser.
    #[test]
    fn pages_parse_cleanly(spec in arb_spec()) {
        let source = generate_site(&spec);
        for page in &source.pages {
            let doc = objectrunner_html::parse(page);
            prop_assert!(doc.reachable_count() > 5);
            // The cleaner never panics on generated markup.
            let mut doc = doc;
            objectrunner_html::clean_document(
                &mut doc,
                &objectrunner_html::CleanOptions::default(),
            );
        }
    }

    /// Detail sources have exactly one object per page.
    #[test]
    fn detail_pages_have_one_object(
        domain in arb_domain(),
        seed in 0u64..5_000,
        pages in 2usize..8,
    ) {
        let spec = SiteSpec::clean("prop-detail", domain, PageKind::Detail, pages, seed);
        let source = generate_site(&spec);
        for objects in &source.truth {
            prop_assert_eq!(objects.len(), 1);
        }
    }
}
