//! The serving core: wrapper cache, drift detection, re-induction.
//!
//! A [`Service`] owns a set of sources, each with a persisted wrapper
//! (see `objectrunner-store`). The protocol is line-delimited JSON —
//! one request object in, one response object out:
//!
//! * `{"cmd":"induce","source":S,"domain":D,"pages":[..]}` — run the
//!   full Parse→Wrap pipeline, persist the wrapper, respond with the
//!   extracted objects and stage timings (Wrap included);
//! * `{"cmd":"extract","source":S,"pages":[..]}` — the cached fast
//!   path: load the stored wrapper, skip induction entirely
//!   (Parse/Clean/Segment/Extract only), score template drift per
//!   page, and — past the threshold — flag the wrapper stale and
//!   re-induce from the buffered drifted pages;
//! * `{"cmd":"status"}` — daemon uptime, per-source counters,
//!   lifecycle state, last-activity timestamps, the transition log,
//!   a `serving` section (worker pool, in-flight requests, queue
//!   depth, shed and connection counters), and a `metrics` section
//!   (per-domain extract-latency and drift-score histograms, revision
//!   counts, annotation-memo hit rate);
//! * `{"cmd":"trace","limit":N}` — the span trees of the last `N`
//!   requests, from the observability buffer.
//!
//! Every response carries a `"trace"` field: the span-tree id of the
//! request that produced it, joinable against the `trace` command and
//! the JSONL/Chrome exporters.
//!
//! Page input is either inline (`"pages": [html, ..]`) or a directory
//! of `*.html` files (`"dir": "path"`, lexicographic order).
//!
//! ## Concurrency shape
//!
//! The service is `&self` end to end and shared across the daemon's
//! worker pool behind one `Arc`. Sources live in per-source
//! [`SourceShard`](crate::shard::SourceShard)s reached through
//! version-stamped [`Slot`](crate::slot::Slot)s: a cached `extract`
//! reads the registry and its wrapper snapshot with two atomic loads
//! (through a per-worker [`ReaderCache`]) and takes no lock until —
//! and unless — drift bookkeeping needs the shard's mutation lane.
//! Two sources never contend; two requests against the *same* source
//! serialize only their bookkeeping tails. [`Service::handle_batch`]
//! is the pooled entry point: consecutive `extract` requests against
//! one source amortize a single staged pipeline run (see
//! `shard::extract_batch`), while every other command handles
//! line-at-a-time exactly as [`Service::handle_line`] does.
//!
//! ## The drift lifecycle
//!
//! Every cached extraction computes the fraction of wrapper slots
//! (the separator matchers the SOD mapping reads) that fail to align
//! on each page (`core::matching::drift_score`). Pages at or above
//! [`ServeConfig::drift_threshold`] enter a bounded buffer. A wrapper
//! goes **stale** on either of two signals:
//!
//! * the batch's mean drift crosses the threshold, or
//! * the *silent miss*: at least
//!   [`ServeConfig::empty_page_threshold`] of the batch's pages
//!   extract zero objects while drift stays low — record-level markup
//!   changed without touching the separator slots the score watches.
//!
//! Once the buffer holds [`ServeConfig::min_reinduce_pages`] suspect
//! pages, the service tries the cheap path first: **tree-diff repair**
//! (`core::repair_wrapper`) patches the stored wrapper's matcher
//! paths, gap roles and annotation histograms through a GumTree-style
//! node mapping against the drifted template — no induction stages
//! run. A successful repair bumps the revision, records its
//! [`objectrunner_store::RepairProvenance`], persists, and flips the
//! state to **repaired**. When the repair is declined (container
//! redesign, lost gap, extraction coverage under
//! [`ServeConfig::repair_floor`]) the service falls back loudly to
//! full re-induction *from the buffered pages only* — mixing clean
//! and drifted pages would hand the sampler two templates at once —
//! and flips to **reinduced**. Either way the current batch is
//! replayed through the new wrapper.

use crate::shard::{self, ReaderCache, SourceMap};
use crate::slot::Slot;
use objectrunner_core::annotate::Annotator;
use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_objstore::{record_json, ObjectStore, Query, StoreStatus};
use objectrunner_obs::{Clock, HistogramSnapshot, Obs, Span, SpanRecord, DEFAULT_SPAN_CAPACITY};
use objectrunner_sod::Instance;
use objectrunner_store::{save_file, Json, StoredWrapper};
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::Domain;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

pub use crate::shard::WrapperState;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the persisted `<source>.orw` wrapper files.
    pub store_dir: PathBuf,
    /// Mean per-page drift at or above which a wrapper is stale.
    pub drift_threshold: f64,
    /// Capacity of the per-source drifted-page buffer.
    pub buffer_pages: usize,
    /// Drifted pages required before re-induction fires.
    pub min_reinduce_pages: usize,
    /// Minimum fraction of the buffered pages a *repaired* wrapper
    /// must extract on; below it the repair is rejected and the
    /// service falls back to full re-induction.
    pub repair_floor: f64,
    /// Fraction of a batch's pages extracting *zero* objects at or
    /// above which the wrapper is flagged stale even though drift
    /// stayed under the threshold (the silent-miss trigger: record
    /// markup can change without touching the separator slots the
    /// drift score watches).
    pub empty_page_threshold: f64,
    /// Recognizer coverage for (re-)induction.
    pub coverage: f64,
    /// Sample size k for (re-)induction.
    pub sample_size: usize,
    /// Worker threads (None = `OBJECTRUNNER_THREADS` / machine).
    pub threads: Option<usize>,
    /// Directory of the durable object store (`--object-store`).
    /// `None` disables the sink and the query commands.
    pub object_store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            store_dir: PathBuf::from("wrappers"),
            drift_threshold: 0.5,
            buffer_pages: 32,
            min_reinduce_pages: 6,
            repair_floor: 0.5,
            empty_page_threshold: 0.8,
            coverage: 0.2,
            sample_size: 12,
            threads: None,
            object_store: None,
        }
    }
}

/// Static shape of the daemon's connection pool, published into the
/// `status` response's `serving` section by `conn::serve_tcp`. The
/// *live* numbers (in-flight, queue depth, sheds) come from the
/// metrics registry.
#[derive(Debug, Clone)]
pub struct PoolInfo {
    pub workers: usize,
    pub max_conns: usize,
    pub inflight_budget: usize,
    pub batch_max: usize,
}

pub(crate) fn err(msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
}

/// Canonical JSON form of an extracted instance; fixed key order, so
/// equal instances render byte-identically (the round-trip tests and
/// the `extract-file` cold-process check compare these strings). The
/// codec lives in `objectrunner-objstore` now — the object store
/// persists the very same shape — and is re-exported here for the
/// protocol's historical import path.
pub use objectrunner_objstore::instance_json;

/// Everything the serving core shares across workers: configuration,
/// the source registry, the annotation-engine cache, the durable
/// sink, and the observability handle. `&self` throughout — the
/// per-source locking discipline lives in `shard.rs`.
pub(crate) struct ServiceShared {
    pub(crate) config: ServeConfig,
    /// Request spans and the serving metrics registry. Enabled by
    /// default in the daemon; [`Service::with_observability`] lets
    /// tests inject a fake-clock handle or a disabled one.
    pub(crate) obs: Obs,
    /// Time source shared with `obs` — uptime, request latency and
    /// last-activity all read through it so tests can advance time by
    /// hand.
    pub(crate) clock: Clock,
    /// `clock.monotonic_micros()` at construction; uptime base.
    pub(crate) start_mono: u64,
    /// Source name → shard, behind a version-stamped slot: readers
    /// snapshot the whole map lock-free; registrations publish a new
    /// map.
    pub(crate) registry: Slot<SourceMap>,
    /// Serializes registry *writers* (warm-from-disk, induction) so
    /// two racing registrations of one source insert once. Readers
    /// never take it.
    pub(crate) registry_write: Mutex<()>,
    /// Compiled annotation engines, one per domain, shared across
    /// inductions and drift-repair re-inductions: the recognizer set of
    /// a domain is fixed (per coverage setting), so the automatons are
    /// compiled once and the text memo cache stays warm between
    /// requests.
    pub(crate) annotators: Mutex<BTreeMap<String, Arc<Annotator>>>,
    /// The durable object sink, attached when
    /// [`ServeConfig::object_store`] names a directory. Extractions
    /// flow in (deduplicated, provenance-tagged) under the write half;
    /// `query` / `get` / `store-status` read concurrently.
    pub(crate) objstore: Option<RwLock<ObjectStore>>,
    /// Pool shape, set once by `conn::serve_tcp`; `None` for the
    /// stdin loop and in-process tests.
    pub(crate) pool: Mutex<Option<PoolInfo>>,
}

/// The serving core. Owns the wrapper cache; one instance per daemon,
/// shared by reference across the connection pool.
pub struct Service {
    shared: Arc<ServiceShared>,
    /// Reader cache backing the cacheless convenience entry point
    /// [`Service::handle_line`] (stdin loop, tests). Pool workers own
    /// their caches and go through [`Service::handle_batch`] instead.
    fallback_cache: Mutex<ReaderCache>,
}

impl Service {
    /// A daemon-grade service: observability on, real clock.
    pub fn new(config: ServeConfig) -> Service {
        let clock = Clock::system();
        let obs = Obs::with_clock_and_capacity(clock.clone(), DEFAULT_SPAN_CAPACITY);
        Service::with_observability(config, obs, clock)
    }

    /// Construct with an explicit observability handle and clock —
    /// the test seam for fake-clock uptime/idle assertions and for
    /// running with observability disabled.
    ///
    /// When the config names an object-store directory that fails to
    /// open (corrupt store), this panics — a daemon must not come up
    /// silently dropping its sink. Callers wanting a softer failure
    /// open the store themselves first.
    pub fn with_observability(config: ServeConfig, obs: Obs, clock: Clock) -> Service {
        let start_mono = clock.monotonic_micros();
        let objstore = config.object_store.as_ref().map(|dir| {
            RwLock::new(
                ObjectStore::open(dir, obs.clone())
                    .unwrap_or_else(|e| panic!("object store {}: {e}", dir.display())),
            )
        });
        Service {
            shared: Arc::new(ServiceShared {
                config,
                obs,
                clock,
                start_mono,
                registry: Slot::new(Arc::new(SourceMap::new())),
                registry_write: Mutex::new(()),
                annotators: Mutex::new(BTreeMap::new()),
                objstore,
                pool: Mutex::new(None),
            }),
            fallback_cache: Mutex::new(ReaderCache::new()),
        }
    }

    /// The service's observability handle (spans + metrics registry).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// A fresh per-worker reader cache. Each pool worker (and any
    /// other long-lived caller of [`Service::handle_batch`]) should
    /// own one so steady-state reads share no mutable state.
    pub fn reader_cache(&self) -> ReaderCache {
        ReaderCache::new()
    }

    /// Publish the connection pool's shape into `status` responses.
    pub fn set_pool_info(&self, info: PoolInfo) {
        *self.shared.pool.lock().expect("pool info poisoned") = Some(info);
    }

    /// Handle one protocol line, producing one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let mut cache = self.fallback_cache.lock().expect("fallback cache poisoned");
        self.handle_line_with(line, &mut cache)
    }

    /// [`Service::handle_line`] against a caller-owned reader cache —
    /// the single-request path pool workers use for non-batchable
    /// commands.
    pub fn handle_line_with(&self, line: &str, cache: &mut ReaderCache) -> String {
        let response = match Json::parse(line) {
            Ok(req) => self.handle(&req, cache),
            Err(e) => err(&format!("bad request: {e}")),
        };
        response.render()
    }

    /// Handle a pipelined burst of protocol lines, one response per
    /// line in order. Consecutive `extract` requests against the same
    /// source run as **one** staged pipeline (one parse/clean/extract
    /// pass over the union of their pages — see `shard::extract_batch`)
    /// with byte-identical per-request responses; every other line is
    /// handled exactly as [`Service::handle_line`] would.
    pub fn handle_batch<S: AsRef<str>>(&self, lines: &[S], cache: &mut ReaderCache) -> Vec<String> {
        let parsed: Vec<Result<Json, String>> = lines
            .iter()
            .map(|l| Json::parse(l.as_ref()).map_err(|e| format!("bad request: {e}")))
            .collect();
        let mut responses: Vec<String> = Vec::with_capacity(parsed.len());
        let mut i = 0;
        while i < parsed.len() {
            let req = match &parsed[i] {
                Err(e) => {
                    responses.push(err(e).render());
                    i += 1;
                    continue;
                }
                Ok(req) => req,
            };
            // Extend a batchable run: same source, all `extract`.
            if let Some(source) = batchable_source(req) {
                let mut j = i + 1;
                while j < parsed.len()
                    && parsed[j]
                        .as_ref()
                        .is_ok_and(|r| batchable_source(r) == Some(source))
                {
                    j += 1;
                }
                if j - i > 1 {
                    let group: Vec<&Json> = parsed[i..j]
                        .iter()
                        .map(|r| r.as_ref().expect("batch run parsed"))
                        .collect();
                    let spans: Vec<Span> = group
                        .iter()
                        .map(|_| {
                            self.shared
                                .obs
                                .counter_add("objectrunner.serve.requests.extract", 1);
                            self.shared.obs.trace("serve.extract")
                        })
                        .collect();
                    self.shared
                        .obs
                        .counter_add("objectrunner.serve.serving.batches", 1);
                    self.shared.obs.counter_add(
                        "objectrunner.serve.serving.batched_requests",
                        (j - i) as u64,
                    );
                    let results = shard::extract_batch(&self.shared, cache, &group, &spans);
                    for (response, span) in results.into_iter().zip(spans) {
                        responses.push(finalize(span, response).render());
                    }
                    i = j;
                    continue;
                }
            }
            responses.push(self.handle(req, cache).render());
            i += 1;
        }
        responses
    }

    fn handle(&self, req: &Json, cache: &mut ReaderCache) -> Json {
        let shared = &self.shared;
        let cmd = req.get("cmd").and_then(Json::as_str).map(str::to_owned);
        let span_name: &'static str = match cmd.as_deref() {
            Some("induce") => "serve.induce",
            Some("extract") => "serve.extract",
            Some("status") => "serve.status",
            Some("trace") => "serve.trace",
            Some("query") => "serve.query",
            Some("get") => "serve.get",
            Some("store-status") => "serve.store_status",
            Some("compact") => "serve.compact",
            _ => "serve.error",
        };
        let span = shared.obs.trace(span_name);
        shared.obs.counter_add(
            &format!(
                "objectrunner.serve.requests.{}",
                cmd.as_deref().unwrap_or("unknown")
            ),
            1,
        );
        let response = match cmd.as_deref() {
            Some("induce") => shared.induce(req, &span),
            Some("extract") => {
                shard::extract_batch(shared, cache, &[req], std::slice::from_ref(&span))
                    .pop()
                    .expect("one response per request")
            }
            Some("status") => shared.status(),
            Some("trace") => shared.trace_dump(req),
            Some("query") => shared.query_cmd(req, &span),
            Some("get") => shared.get_cmd(req),
            Some("store-status") => shared.store_status_cmd(),
            Some("compact") => shared.compact_cmd(&span),
            Some(other) => err(&format!("unknown cmd '{other}'")),
            None => err("missing 'cmd'"),
        };
        finalize(span, response)
    }
}

/// The source of a request that can join an extract batch.
fn batchable_source(req: &Json) -> Option<&str> {
    match req.get("cmd").and_then(Json::as_str) {
        Some("extract") => req.get("source").and_then(Json::as_str),
        _ => None,
    }
}

/// Stamp the request span's outcome, finish it, and echo its trace id
/// in the response — joinable against the `trace` command and the
/// exporters.
fn finalize(mut span: Span, response: Json) -> Json {
    let trace_id = span.trace_id();
    let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
    span.attr_str("outcome", if ok { "ok" } else { "error" });
    span.finish();
    match response {
        Json::Obj(mut pairs) => {
            pairs.push(("trace".into(), Json::int(trace_id)));
            Json::Obj(pairs)
        }
        other => other,
    }
}

impl ServiceShared {
    /// The wrapper file for a source.
    pub(crate) fn wrapper_path(&self, source: &str) -> PathBuf {
        self.config.store_dir.join(format!("{source}.orw"))
    }

    /// The shared annotation engine for a domain (compiled on first
    /// use, then reused by every induction of that domain).
    fn annotator_for(&self, domain: Domain) -> Arc<Annotator> {
        let key = domain.name().to_lowercase();
        let mut cache = self.annotators.lock().expect("annotator cache poisoned");
        Arc::clone(cache.entry(key).or_insert_with(|| {
            Arc::new(Annotator::new(&recognizers_for(
                domain,
                self.config.coverage,
            )))
        }))
    }

    /// Pipeline configuration for (re-)induction. When a request span
    /// is supplied, the pipeline's own spans nest under it, so one
    /// trace id covers the request end-to-end.
    fn pipeline_config(&self, parent: Option<&Span>) -> PipelineConfig {
        PipelineConfig {
            sample: SampleConfig {
                sample_size: self.config.sample_size,
                ..SampleConfig::default()
            },
            threads: self.config.threads,
            obs: self.obs.clone(),
            trace_context: parent.filter(|s| s.is_enabled()).map(Span::context),
            ..PipelineConfig::default()
        }
    }

    /// Induce (or re-induce) a wrapper from scratch on the given pages.
    pub(crate) fn induce_wrapper(
        &self,
        source: &str,
        domain: Domain,
        revision: u64,
        pages: &[String],
        parent: &Span,
    ) -> Result<(StoredWrapper, Vec<Instance>, String), String> {
        let sod = domain.sod();
        let recognizers = recognizers_for(domain, self.config.coverage);
        let config = self.pipeline_config(Some(parent));
        let clean = config.clean.clone();
        let pipeline =
            Pipeline::with_annotator(sod.clone(), recognizers, self.annotator_for(domain))
                .with_config(config);
        let outcome = pipeline
            .run_on_html(pages)
            .map_err(|e| format!("induction failed: {e}"))?;
        let stored = StoredWrapper {
            source: source.to_owned(),
            domain: domain.name().to_lowercase(),
            revision,
            sod,
            wrapper: outcome.wrapper,
            main_block: outcome.main_block,
            clean,
            repair: None,
        };
        Ok((stored, outcome.objects, outcome.stats.to_json()))
    }

    fn induce(&self, req: &Json, span: &Span) -> Json {
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let domain = match req.get("domain").and_then(Json::as_str) {
            Some(name) => match Domain::by_name(name) {
                Some(d) => d,
                None => return err(&format!("unknown domain '{name}'")),
            },
            None => return err("missing 'domain'"),
        };
        let pages = match request_pages(req) {
            Ok(p) => p,
            Err(e) => return err(&e),
        };
        let revision = self
            .registry
            .load()
            .1
            .get(&source)
            .map(|shard| shard.snapshot().revision + 1)
            .unwrap_or(1);
        let (stored, objects, stats) =
            match self.induce_wrapper(&source, domain, revision, &pages, span) {
                Ok(r) => r,
                Err(e) => return err(&e),
            };
        if let Err(e) = self.persist(&stored) {
            return err(&e);
        }
        self.obs.counter_add("objectrunner.serve.inductions", 1);
        self.obs.gauge_set(
            &format!("objectrunner.serve.revision.{source}"),
            revision as i64,
        );
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("induce")),
            ("source".into(), Json::str(&source)),
            ("revision".into(), Json::int(revision as i64)),
            ("quality".into(), Json::Float(stored.wrapper.quality)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(instance_json).collect()),
            ),
            ("stats".into(), Json::Raw(stats)),
        ]);
        shard::install_induced(
            self,
            &source,
            stored,
            format!("induced: revision {revision}, {} pages", pages.len()),
        );
        response
    }

    pub(crate) fn persist(&self, stored: &StoredWrapper) -> Result<(), String> {
        std::fs::create_dir_all(&self.config.store_dir).map_err(|e| format!("store dir: {e}"))?;
        save_file(&self.wrapper_path(&stored.source), stored).map_err(|e| format!("persist: {e}"))
    }

    fn status(&self) -> Json {
        let now_mono = self.clock.monotonic_micros();
        let registry = self.registry.load().1;
        let sources = registry
            .iter()
            .map(|(name, s)| {
                let stored = s.snapshot();
                let lane = s.lane();
                let idle = if lane.last_activity_mono == 0 {
                    0
                } else {
                    now_mono.saturating_sub(lane.last_activity_mono)
                };
                Json::Obj(vec![
                    ("source".into(), Json::str(name)),
                    ("domain".into(), Json::str(&stored.domain)),
                    ("revision".into(), Json::int(stored.revision as i64)),
                    ("state".into(), Json::str(lane.state.as_str())),
                    ("quality".into(), Json::Float(stored.wrapper.quality)),
                    ("extracts".into(), Json::int(lane.extracts as i64)),
                    ("cache_hits".into(), Json::int(lane.cache_hits as i64)),
                    ("drift_events".into(), Json::int(lane.drift_events as i64)),
                    ("buffered".into(), Json::int(lane.buffer.len())),
                    (
                        "repair".into(),
                        match &stored.repair {
                            Some(p) => Json::Obj(vec![
                                ("repaired_from".into(), Json::int(p.repaired_from as i64)),
                                ("matched_exact".into(), Json::int(p.matched_exact)),
                                ("matched_container".into(), Json::int(p.matched_container)),
                                ("unmatched_old".into(), Json::int(p.unmatched_old)),
                                ("unmatched_new".into(), Json::int(p.unmatched_new)),
                            ]),
                            None => Json::Null,
                        },
                    ),
                    (
                        "last_activity_unix_micros".into(),
                        Json::int(lane.last_activity_wall),
                    ),
                    ("idle_micros".into(), Json::int(idle)),
                    (
                        "log".into(),
                        Json::Arr(lane.log.iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("status")),
            (
                "uptime_micros".into(),
                Json::int(now_mono.saturating_sub(self.start_mono)),
            ),
            (
                // Echo of the tunable lifecycle knobs (CLI flags), so
                // an operator can read a daemon's effective thresholds
                // off a status probe.
                "config".into(),
                Json::Obj(vec![
                    (
                        "drift_threshold".into(),
                        Json::Float(self.config.drift_threshold),
                    ),
                    ("buffer_pages".into(), Json::int(self.config.buffer_pages)),
                    (
                        "min_reinduce_pages".into(),
                        Json::int(self.config.min_reinduce_pages),
                    ),
                    ("repair_floor".into(), Json::Float(self.config.repair_floor)),
                    (
                        "empty_page_threshold".into(),
                        Json::Float(self.config.empty_page_threshold),
                    ),
                ]),
            ),
            ("serving".into(), self.serving_section()),
            ("sources".into(), Json::Arr(sources)),
            ("metrics".into(), self.metrics_section()),
            (
                // Durable-sink summary (per-domain live objects, dedup
                // fusion rate, last compaction); null when the daemon
                // runs without `--object-store`.
                "object_store".into(),
                match &self.objstore {
                    Some(store) => {
                        store_status_json(&store.read().expect("object store poisoned").status())
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The status response's `serving` section: the pool shape (null
    /// for the stdin loop), live load gauges, batching and shedding
    /// counters, and the per-connection I/O counters — everything an
    /// operator needs to see back-pressure building before it sheds.
    fn serving_section(&self) -> Json {
        let snap = self.obs.snapshot();
        let pool = self.pool.lock().expect("pool info poisoned").clone();
        let serving = |name: &str| format!("objectrunner.serve.serving.{name}");
        let conn = |name: &str| format!("objectrunner.serve.conn.{name}");
        Json::Obj(vec![
            (
                "pool".into(),
                match pool {
                    Some(p) => Json::Obj(vec![
                        ("workers".into(), Json::int(p.workers)),
                        ("max_conns".into(), Json::int(p.max_conns)),
                        ("inflight_budget".into(), Json::int(p.inflight_budget)),
                        ("batch_max".into(), Json::int(p.batch_max)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "inflight".into(),
                Json::int(snap.gauge(&serving("inflight"))),
            ),
            (
                "queue_depth".into(),
                Json::int(snap.gauge(&serving("queue_depth"))),
            ),
            (
                "active_conns".into(),
                Json::int(snap.gauge(&serving("active_conns"))),
            ),
            (
                "requests".into(),
                Json::int(snap.counter(&serving("requests"))),
            ),
            (
                "batches".into(),
                Json::int(snap.counter(&serving("batches"))),
            ),
            (
                "batched_requests".into(),
                Json::int(snap.counter(&serving("batched_requests"))),
            ),
            (
                "shed_requests".into(),
                Json::int(snap.counter(&serving("shed_requests"))),
            ),
            (
                "shed_conns".into(),
                Json::int(snap.counter(&serving("shed_conns"))),
            ),
            (
                "conn".into(),
                Json::Obj(vec![
                    (
                        "accepted".into(),
                        Json::int(snap.counter(&conn("accepted"))),
                    ),
                    ("closed".into(), Json::int(snap.counter(&conn("closed")))),
                    (
                        "accept_errors".into(),
                        Json::int(snap.counter(&conn("accept_errors"))),
                    ),
                    (
                        "read_errors".into(),
                        Json::int(snap.counter(&conn("read_errors"))),
                    ),
                    (
                        "write_errors".into(),
                        Json::int(snap.counter(&conn("write_errors"))),
                    ),
                ]),
            ),
        ])
    }

    /// The status response's `metrics` section: per-domain extract
    /// latency and drift-score histograms (read back out of the obs
    /// registry), wrapper revisions, annotation-memo hit rate, and
    /// request counters.
    fn metrics_section(&self) -> Json {
        let snap = self.obs.snapshot();
        let mut latency: Vec<(String, Json)> = Vec::new();
        let mut drift: Vec<(String, Json)> = Vec::new();
        for (name, h) in &snap.histograms {
            if let Some(domain) = name.strip_prefix("objectrunner.serve.extract.latency_micros.") {
                latency.push((domain.to_owned(), histogram_json(h)));
            } else if let Some(domain) = name.strip_prefix("objectrunner.serve.drift.score_milli.")
            {
                drift.push((domain.to_owned(), histogram_json(h)));
            }
        }
        let revisions = self
            .registry
            .load()
            .1
            .iter()
            .map(|(name, s)| (name.clone(), Json::int(s.snapshot().revision as i64)))
            .collect();
        let (hits, misses) = {
            let cache = self.annotators.lock().expect("annotator cache poisoned");
            cache.values().fold((0u64, 0u64), |(h, m), a| {
                (h + a.cache_hits(), m + a.cache_misses())
            })
        };
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let requests = ["induce", "extract", "status", "trace"]
            .iter()
            .map(|&c| {
                (
                    c.to_owned(),
                    Json::int(snap.counter(&format!("objectrunner.serve.requests.{c}"))),
                )
            })
            .collect();
        Json::Obj(vec![
            ("extract_latency_micros".into(), Json::Obj(latency)),
            ("drift_score_milli".into(), Json::Obj(drift)),
            ("revisions".into(), Json::Obj(revisions)),
            (
                "annotation_memo".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::int(hits)),
                    ("misses".into(), Json::int(misses)),
                    ("hit_rate".into(), Json::Float(hit_rate)),
                ]),
            ),
            ("requests".into(), Json::Obj(requests)),
            (
                "reinductions".into(),
                Json::int(snap.counter("objectrunner.serve.reinductions")),
            ),
            (
                "repair".into(),
                Json::Obj(vec![
                    (
                        "attempts".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.attempts")),
                    ),
                    (
                        "successes".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.successes")),
                    ),
                    (
                        "fallbacks".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.fallbacks")),
                    ),
                ]),
            ),
        ])
    }

    /// `{"cmd":"trace","limit":N}` — the span trees of the last `N`
    /// requests (default 3) still in the observability buffer. Spans
    /// are rendered in `(trace, id)` order, parents before children.
    fn trace_dump(&self, req: &Json) -> Json {
        let limit = req
            .get("limit")
            .and_then(Json::as_usize)
            .unwrap_or(3)
            .max(1);
        let spans = self.obs.spans();
        // `spans` is sorted by (trace, id) and trace ids are allocated
        // in request order, so the last distinct ids are the most
        // recent requests.
        let mut traces: Vec<u64> = Vec::new();
        for s in &spans {
            if traces.last() != Some(&s.trace) {
                traces.push(s.trace);
            }
        }
        let keep = &traces[traces.len().saturating_sub(limit)..];
        let rendered: Vec<Json> = spans
            .iter()
            .filter(|s| keep.contains(&s.trace))
            .map(span_json)
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("trace")),
            ("enabled".into(), Json::Bool(self.obs.is_enabled())),
            ("traces".into(), Json::int(keep.len())),
            ("spans".into(), Json::Arr(rendered)),
            ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
        ])
    }

    /// `{"cmd":"query", …}` — run a [`Query`] against the object
    /// store; see `objstore::query` for the filter grammar. Hits are
    /// rendered with per-attribute provenance; `next_cursor` (when
    /// present) feeds the next page's `"cursor"`.
    fn query_cmd(&self, req: &Json, span: &Span) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let q = match Query::from_json(req) {
            Ok(q) => q,
            Err(e) => return err(&format!("bad query: {e}")),
        };
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let result = store
            .read()
            .expect("object store poisoned")
            .query(&q, trace_context);
        match result {
            Ok(result) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("query")),
                ("count".into(), Json::int(result.hits.len())),
                (
                    "hits".into(),
                    Json::Arr(
                        result
                            .hits
                            .iter()
                            .map(|h| record_json(h, &q.select))
                            .collect(),
                    ),
                ),
                (
                    "next_cursor".into(),
                    match result.next_cursor {
                        Some(c) => Json::str(c),
                        None => Json::Null,
                    },
                ),
                ("scanned".into(), Json::int(result.scanned)),
            ]),
            Err(e) => err(&format!("query: {e}")),
        }
    }

    /// `{"cmd":"get","key":K}` — fetch one object (with provenance)
    /// by its identity key.
    fn get_cmd(&self, req: &Json) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let Some(key) = req.get("key").and_then(Json::as_str) else {
            return err("missing 'key'");
        };
        match store.read().expect("object store poisoned").get(key) {
            Ok(hit) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("get")),
                ("found".into(), Json::Bool(hit.is_some())),
                (
                    "hit".into(),
                    match &hit {
                        Some(record) => record_json(record, &[]),
                        None => Json::Null,
                    },
                ),
            ]),
            Err(e) => err(&format!("get: {e}")),
        }
    }

    /// `{"cmd":"store-status"}` — segment/object/byte counts and the
    /// cumulative dedup counters of the object store.
    fn store_status_cmd(&self) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let mut pairs = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("store-status")),
        ];
        if let Json::Obj(section) =
            store_status_json(&store.read().expect("object store poisoned").status())
        {
            pairs.extend(section);
        }
        Json::Obj(pairs)
    }

    /// `{"cmd":"compact"}` — rewrite live records into a fresh
    /// generation and drop superseded versions.
    fn compact_cmd(&self, span: &Span) -> Json {
        let now = self.clock.wall_unix_micros();
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let result = store
            .write()
            .expect("object store poisoned")
            .compact(now, trace_context);
        match result {
            Ok(r) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("compact")),
                ("live_records".into(), Json::int(r.live_records)),
                ("dropped_records".into(), Json::int(r.dropped_records)),
                ("segments_before".into(), Json::int(r.segments_before)),
                ("segments_after".into(), Json::int(r.segments_after)),
                ("bytes_before".into(), Json::int(r.bytes_before)),
                ("bytes_after".into(), Json::int(r.bytes_after)),
            ]),
            Err(e) => err(&format!("compact: {e}")),
        }
    }
}

/// Histogram snapshot as JSON (fixed key order).
fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::int(h.count)),
        ("sum".into(), Json::int(h.sum)),
        ("mean".into(), Json::Float(h.mean())),
        (
            "bounds".into(),
            Json::Arr(h.bounds.iter().map(|&b| Json::int(b)).collect()),
        ),
        (
            "counts".into(),
            Json::Arr(h.counts.iter().map(|&c| Json::int(c)).collect()),
        ),
    ])
}

/// One finished span as JSON, matching the JSONL exporter's field
/// names so `trace` output joins against `obs_check` tooling.
fn span_json(s: &SpanRecord) -> Json {
    let attrs = s
        .attrs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), Json::Raw(v.render_json())))
        .collect();
    Json::Obj(vec![
        ("trace".into(), Json::int(s.trace)),
        ("id".into(), Json::int(s.id)),
        ("parent".into(), Json::int(s.parent)),
        ("name".into(), Json::str(s.name)),
        ("start_us".into(), Json::int(s.start_micros)),
        ("dur_us".into(), Json::int(s.dur_micros)),
        ("cpu_us".into(), Json::int(s.cpu_micros)),
        ("attrs".into(), Json::Obj(attrs)),
    ])
}

/// A [`StoreStatus`] as JSON (fixed key order) — shared by the
/// `store-status` command and the `status` response's `object_store`
/// section.
fn store_status_json(s: &StoreStatus) -> Json {
    let per_domain = s
        .per_domain
        .iter()
        .map(|(d, &n)| (d.clone(), Json::int(n)))
        .collect();
    // Of the sightings that collided with a stored object, the
    // fraction that contributed new attributes (cross-source gap
    // filling actually paying off).
    let fusion_rate = if s.duplicates == 0 {
        0.0
    } else {
        s.fused as f64 / s.duplicates as f64
    };
    Json::Obj(vec![
        ("generation".into(), Json::int(s.generation)),
        ("segments".into(), Json::int(s.segments)),
        ("live_objects".into(), Json::int(s.live_objects)),
        ("dead_records".into(), Json::int(s.dead_records)),
        ("bytes".into(), Json::int(s.bytes)),
        ("per_domain".into(), Json::Obj(per_domain)),
        ("ingested".into(), Json::int(s.ingested)),
        ("new_objects".into(), Json::int(s.new_objects)),
        ("fused".into(), Json::int(s.fused)),
        ("duplicates".into(), Json::int(s.duplicates)),
        ("skipped".into(), Json::int(s.skipped)),
        ("fusion_rate".into(), Json::Float(fusion_rate)),
        ("compactions".into(), Json::int(s.compactions)),
        (
            "last_compaction_unix_micros".into(),
            match s.last_compaction_unix_micros {
                Some(t) => Json::int(t),
                None => Json::Null,
            },
        ),
    ])
}

/// Resolve a request's page input: inline `"pages"` array or a
/// `"dir"` of `*.html` files in lexicographic order.
fn request_pages(req: &Json) -> Result<Vec<String>, String> {
    Ok(request_named_pages(req)?
        .into_iter()
        .map(|(_, html)| html)
        .collect())
}

/// Like [`request_pages`], but each page comes with a stable id the
/// object store uses as provenance: the file stem for `"dir"` input,
/// `page-<index>` for inline pages.
pub(crate) fn request_named_pages(req: &Json) -> Result<Vec<(String, String)>, String> {
    if let Some(arr) = req.get("pages").and_then(Json::as_arr) {
        return arr
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.as_str()
                    .map(|html| (format!("page-{i:04}"), html.to_owned()))
                    .ok_or_else(|| "'pages' holds a non-string".to_owned())
            })
            .collect();
    }
    if let Some(dir) = req.get("dir").and_then(Json::as_str) {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("dir '{dir}': {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("dir '{dir}' holds no *.html files"));
        }
        return files
            .iter()
            .map(|p| {
                let name = p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string());
                std::fs::read_to_string(p)
                    .map(|html| (name, html))
                    .map_err(|e| format!("{}: {e}", p.display()))
            })
            .collect();
    }
    Err("missing 'pages' (inline array) or 'dir' (of *.html files)".to_owned())
}
