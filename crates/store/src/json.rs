//! A small, dependency-free JSON value type with a deterministic
//! writer and a strict parser.
//!
//! The wrapper store needs byte-stable output (`save ∘ load ∘ save`
//! must be the identity on files), so objects preserve **insertion
//! order** — no map type is involved — and floats always render with a
//! decimal point so their parsed type round-trips. The same codec
//! backs the serving layer's line-delimited protocol.

use std::fmt;

/// A JSON value. Objects are ordered key/value lists.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers without fraction/exponent parse to `Int`.
    Int(i64),
    /// Always rendered with a decimal point or exponent, so a `Float`
    /// re-parses as a `Float`.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
    /// Pre-serialized JSON embedded verbatim (writer-only; the parser
    /// never produces it). Lets callers splice an externally rendered
    /// fragment — e.g. `PipelineStats::to_json()` — into a response.
    Raw(String),
}

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer value.
    pub fn int(n: impl TryInto<i64>) -> Json {
        Json::Int(n.try_into().unwrap_or(i64::MAX))
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|n| usize::try_from(n).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize (compact, no whitespace). Deterministic: object keys
    /// keep their insertion order and floats render via Rust's shortest
    /// round-trip form with a forced decimal point.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    let fractional = s.contains('.') || s.contains('e') || s.contains('E');
                    out.push_str(&s);
                    if !fractional {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("wrapper")),
            ("n".into(), Json::Int(-42)),
            ("q".into(), Json::Float(0.25)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Int(1), Json::str("two")]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.render(), text, "second render is byte-identical");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = "{\"z\":1,\"a\":2}";
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.render(), text);
    }

    #[test]
    fn floats_render_with_decimal_point() {
        assert_eq!(Json::Float(1.0).render(), "1.0");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        // Round trip keeps the Float type, hence the byte form.
        let back = Json::parse("1.0").expect("parses");
        assert_eq!(back, Json::Float(1.0));
        assert_eq!(back.render(), "1.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert_eq!(Json::parse(&text).expect("parses"), v);
        // Unicode escapes and surrogate pairs.
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").expect("parses"),
            Json::str("é😀")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn raw_embeds_verbatim() {
        let v = Json::Obj(vec![("stats".into(), Json::Raw("{\"pages\":3}".into()))]);
        assert_eq!(v.render(), "{\"stats\":{\"pages\":3}}");
        let back = Json::parse(&v.render()).expect("parses");
        assert_eq!(
            back.get("stats").and_then(|s| s.get("pages")),
            Some(&Json::Int(3))
        );
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"a\":1,\"b\":\"x\",\"c\":[true],\"d\":2.5}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("missing"), None);
    }
}
