//! A hand-rolled bump arena for per-page scratch strings.
//!
//! The streaming parse path decodes entities into an [`Arena`] instead
//! of allocating a fresh `String` per text node: all decoded text of a
//! page lives in a few large chunks, handed out as `&str` slices, and
//! the whole page's worth is released with one [`Arena::reset`] call
//! that keeps the chunk capacity for the next page. This is what keeps
//! peak RSS flat across a million-page crawl — per-page allocations
//! never accumulate and never fragment the heap.
//!
//! ## Lifetime rules
//!
//! * [`Arena::alloc_str`] borrows the arena *shared* (`&self`) and
//!   returns a slice that lives as long as that borrow. Allocating more
//!   never invalidates earlier slices (chunks are boxed and never move,
//!   only the bump cursor advances).
//! * [`Arena::reset`] takes `&mut self`, so the borrow checker proves
//!   no slice from the previous page survives into the next one.
//! * The arena is intentionally `!Sync`: one arena per worker thread.

use std::cell::UnsafeCell;

/// First chunk size; chunks double up to [`MAX_CHUNK`].
const FIRST_CHUNK: usize = 16 * 1024;
/// Chunk growth cap — beyond this, more chunks of the same size.
const MAX_CHUNK: usize = 1024 * 1024;

struct Chunk {
    buf: Box<[u8]>,
    used: usize,
}

#[derive(Default)]
struct Inner {
    chunks: Vec<Chunk>,
    /// Bytes handed out since the last reset.
    allocated: usize,
    /// High-water mark of `allocated` across the arena's lifetime.
    peak: usize,
}

/// Bump allocator for string scratch (see module docs).
#[derive(Default)]
pub struct Arena {
    inner: UnsafeCell<Inner>,
}

impl Arena {
    /// An empty arena; the first allocation claims its first chunk.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Copy `s` into the arena and return the stable copy.
    pub fn alloc_str<'a>(&'a self, s: &str) -> &'a str {
        // SAFETY: the only other &mut access to `inner` is `reset`,
        // which requires `&mut self` and therefore cannot overlap this
        // shared borrow. Within this call the exclusive access is not
        // reentrant (no callbacks). Returned slices point into boxed
        // chunk buffers whose heap addresses never move: growing
        // `chunks` relocates the `Chunk` headers, not the buffers, and
        // later allocations only advance `used` past handed-out bytes.
        let inner = unsafe { &mut *self.inner.get() };
        let bytes = s.as_bytes();
        inner.allocated += bytes.len();
        inner.peak = inner.peak.max(inner.allocated);
        let chunk = inner.chunk_with_room(bytes.len());
        let start = chunk.used;
        chunk.buf[start..start + bytes.len()].copy_from_slice(bytes);
        chunk.used += bytes.len();
        let ptr = chunk.buf[start..start + bytes.len()].as_ptr();
        // SAFETY: just copied from a valid &str; length is exact.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, bytes.len())) }
    }

    /// Release everything allocated since the last reset, keeping the
    /// largest chunk so the next page reuses its capacity. Requires
    /// `&mut self`: no slice handed out before the reset can survive it.
    pub fn reset(&mut self) {
        let inner = self.inner.get_mut();
        if inner.chunks.len() > 1 {
            // Keep only the largest chunk (always the newest).
            let largest = inner
                .chunks
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.buf.len())
                .map(|(i, _)| i)
                .expect("non-empty");
            inner.chunks.swap(0, largest);
            inner.chunks.truncate(1);
        }
        for chunk in &mut inner.chunks {
            chunk.used = 0;
        }
        inner.allocated = 0;
    }

    /// Bytes handed out since the last [`Arena::reset`].
    pub fn allocated_bytes(&self) -> usize {
        // SAFETY: read-only peek; same non-overlap argument as alloc_str.
        unsafe { (*self.inner.get()).allocated }
    }

    /// High-water mark of allocated bytes across the arena's lifetime
    /// (not cleared by reset) — the number the obs histogram records.
    pub fn peak_bytes(&self) -> usize {
        // SAFETY: read-only peek; same non-overlap argument as alloc_str.
        unsafe { (*self.inner.get()).peak }
    }

    /// Total chunk capacity currently held.
    pub fn capacity(&self) -> usize {
        // SAFETY: read-only peek; same non-overlap argument as alloc_str.
        unsafe { (*self.inner.get()).chunks.iter().map(|c| c.buf.len()).sum() }
    }
}

impl Inner {
    fn chunk_with_room(&mut self, n: usize) -> &mut Chunk {
        let fits = self
            .chunks
            .last()
            .is_some_and(|c| c.used + n <= c.buf.len());
        if !fits {
            let cap = self
                .chunks
                .last()
                .map(|c| (c.buf.len() * 2).min(MAX_CHUNK))
                .unwrap_or(FIRST_CHUNK)
                .max(n);
            self.chunks.push(Chunk {
                buf: vec![0u8; cap].into_boxed_slice(),
                used: 0,
            });
        }
        self.chunks.last_mut().expect("chunk just ensured")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_strings() {
        let arena = Arena::new();
        let a = arena.alloc_str("hello");
        let b = arena.alloc_str("wörld — ✓");
        assert_eq!(a, "hello");
        assert_eq!(b, "wörld — ✓");
        assert_eq!(arena.allocated_bytes(), "hello".len() + "wörld — ✓".len());
    }

    #[test]
    fn earlier_slices_survive_growth() {
        let arena = Arena::new();
        let first = arena.alloc_str("stable");
        // Force several chunk allocations.
        let big = "x".repeat(FIRST_CHUNK);
        for _ in 0..8 {
            let s = arena.alloc_str(&big);
            assert_eq!(s.len(), FIRST_CHUNK);
        }
        assert_eq!(first, "stable");
    }

    #[test]
    fn reset_keeps_capacity_and_peak() {
        let mut arena = Arena::new();
        let big = "y".repeat(3 * FIRST_CHUNK);
        arena.alloc_str(&big);
        let peak = arena.peak_bytes();
        assert_eq!(peak, big.len());
        arena.reset();
        assert_eq!(arena.allocated_bytes(), 0);
        assert!(arena.capacity() >= big.len(), "largest chunk retained");
        assert_eq!(arena.peak_bytes(), peak, "peak survives reset");
        let again = arena.alloc_str("fresh");
        assert_eq!(again, "fresh");
    }

    #[test]
    fn oversized_allocations_get_their_own_chunk() {
        let arena = Arena::new();
        let huge = "z".repeat(2 * MAX_CHUNK);
        let s = arena.alloc_str(&huge);
        assert_eq!(s.len(), huge.len());
    }

    #[test]
    fn peak_tracks_the_largest_page() {
        let mut arena = Arena::new();
        arena.alloc_str(&"a".repeat(100));
        arena.reset();
        arena.alloc_str(&"b".repeat(500));
        arena.reset();
        arena.alloc_str(&"c".repeat(50));
        assert_eq!(arena.peak_bytes(), 500);
    }
}
