//! Annotation-driven page-sample selection (paper Algorithm 1 and
//! §III-E's annotation-phase early stop).
//!
//! "Our approach here starts from the observation that only a subset
//! of these pages have to be annotated, and from the annotated ones
//! only a further subset (approximately 20 pages) are used as sample
//! in the next stage … We use selectivity estimates, both at the level
//! of types and at the one of type instances, and look for entity
//! matches in a greedy manner, starting from types with likely few
//! witness pages and instances."
//!
//! Pages are **borrowed** throughout: the pool is a list of
//! `(page index, annotation map)` pairs over `&[Document]`, and only
//! the final k sample pages are cloned into owned [`AnnotatedPage`]s
//! for wrapper induction. Annotation rounds and the block-threshold
//! check fan out per page on the caller's [`Executor`]; every
//! cross-page reduction runs in page-index order, so the result is
//! identical at any thread count.

use crate::annotate::{
    propagate_upwards_into, AnnotatedPage, AnnotationMap, Annotator, PageMatches,
};
use crate::exec::Executor;
use objectrunner_html::{Document, NodeKind};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_segment::{block_tree, layout_document, LayoutOptions};
use objectrunner_sod::Sod;
use std::collections::HashMap;
use std::time::Duration;

/// Sampling parameters.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Final sample size k (the paper uses ~20 pages).
    pub sample_size: usize,
    /// Block-annotation threshold α of §III-E (0.5 in the paper).
    pub alpha: f64,
    /// After each annotation round, keep this fraction of pages
    /// (never below `sample_size`).
    pub shrink_factor: f64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            sample_size: 20,
            alpha: 0.5,
            shrink_factor: 0.5,
        }
    }
}

/// How the sample is chosen — the comparison of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Algorithm 1: greedy, SOD/selectivity-guided.
    SodBased,
    /// Baseline: uniform random pages (seeded, deterministic).
    Random(u64),
}

/// Why a source was discarded during sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// No input pages.
    EmptySource,
    /// §III-E: no visual block reached the α annotation threshold.
    AnnotationThreshold {
        /// The best average annotation count per block observed.
        best_block_avg_milli: u64,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::EmptySource => write!(f, "source has no pages"),
            SampleError::AnnotationThreshold {
                best_block_avg_milli,
            } => write!(
                f,
                "no block reached the annotation threshold (best avg {:.3} per page)",
                *best_block_avg_milli as f64 / 1000.0
            ),
        }
    }
}

impl std::error::Error for SampleError {}

/// A selected, fully annotated sample plus the annotation-stage CPU
/// accounting the pipeline surfaces in its per-stage timings.
#[derive(Debug)]
pub struct SampleOutcome {
    /// The k sample pages, annotated (the only pages cloned out of the
    /// borrowed source).
    pub sample: Vec<AnnotatedPage>,
    /// Summed worker busy time of the annotation rounds.
    pub annotate_busy: Duration,
    /// Summed worker busy time of selection proper — page scoring,
    /// shrinking, and the §III-E block-threshold check. Disjoint from
    /// `annotate_busy`, so the pipeline can attribute annotation CPU
    /// and selection CPU to their own stages without double-counting.
    pub select_busy: Duration,
}

/// Select and annotate the wrapper-induction sample from a source.
///
/// Both strategies return fully annotated pages; they differ only in
/// *which* pages form the sample (the Table II comparison keeps
/// everything else equal). Documents are borrowed — only the selected
/// sample pages are cloned.
pub fn select_sample(
    docs: &[Document],
    recognizers: &RecognizerSet,
    sod: &Sod,
    config: &SampleConfig,
    strategy: SampleStrategy,
    exec: &Executor,
) -> Result<Vec<AnnotatedPage>, SampleError> {
    select_sample_timed(docs, recognizers, sod, config, strategy, exec).map(|o| o.sample)
}

/// [`select_sample`] with annotation-CPU accounting (pipeline use).
pub fn select_sample_timed(
    docs: &[Document],
    recognizers: &RecognizerSet,
    sod: &Sod,
    config: &SampleConfig,
    strategy: SampleStrategy,
    exec: &Executor,
) -> Result<SampleOutcome, SampleError> {
    // Transient compiled engine; callers that sample repeatedly should
    // use [`select_sample_timed_with`] to keep the memo cache warm.
    let annotator = Annotator::new(recognizers);
    select_sample_timed_with(docs, recognizers, &annotator, sod, config, strategy, exec)
}

/// [`select_sample`] over a caller-owned [`Annotator`], so the compiled
/// recognizers and the text memo cache survive across calls (pipeline
/// re-runs, serving re-inductions).
pub fn select_sample_with(
    docs: &[Document],
    recognizers: &RecognizerSet,
    annotator: &Annotator,
    sod: &Sod,
    config: &SampleConfig,
    strategy: SampleStrategy,
    exec: &Executor,
) -> Result<Vec<AnnotatedPage>, SampleError> {
    select_sample_timed_with(docs, recognizers, annotator, sod, config, strategy, exec)
        .map(|o| o.sample)
}

/// [`select_sample_timed`] over a caller-owned [`Annotator`].
#[allow(clippy::too_many_arguments)]
pub fn select_sample_timed_with(
    docs: &[Document],
    recognizers: &RecognizerSet,
    annotator: &Annotator,
    sod: &Sod,
    config: &SampleConfig,
    strategy: SampleStrategy,
    exec: &Executor,
) -> Result<SampleOutcome, SampleError> {
    if docs.is_empty() {
        return Err(SampleError::EmptySource);
    }
    match strategy {
        SampleStrategy::SodBased => {
            sod_based_sample(docs, recognizers, annotator, sod, config, exec)
        }
        SampleStrategy::Random(seed) => {
            random_sample(docs, recognizers, annotator, sod, config, seed, exec)
        }
    }
}

fn sod_types<'a>(sod: &'a Sod, recognizers: &RecognizerSet) -> Vec<&'a str> {
    // Annotation order: dictionary types by decreasing selectivity,
    // then pattern types — restricted to the SOD's entity types.
    let order = recognizers.annotation_order();
    let wanted: Vec<&str> = sod.entity_types();
    order
        .into_iter()
        .filter(|t| wanted.contains(t))
        .map(|t| {
            // Re-borrow from the SOD so lifetimes tie to `sod`.
            *wanted.iter().find(|w| **w == t).expect("filtered")
        })
        .collect()
}

/// One pool entry: a page (by index into the borrowed docs) and its
/// annotations so far.
struct PoolPage {
    index: usize,
    annotations: AnnotationMap,
    /// All-type matches of the page's text nodes, computed by the
    /// first annotation round; later rounds project from this instead
    /// of re-walking the DOM and re-querying the memo cache.
    matches: Option<PageMatches>,
}

fn sod_based_sample(
    docs: &[Document],
    recognizers: &RecognizerSet,
    annotator: &Annotator,
    sod: &Sod,
    config: &SampleConfig,
    exec: &Executor,
) -> Result<SampleOutcome, SampleError> {
    let types = sod_types(sod, recognizers);
    let mut annotate_busy = Duration::ZERO;
    let mut select_busy = Duration::ZERO;
    // S := Si
    let mut pool: Vec<PoolPage> = (0..docs.len())
        .map(|index| PoolPage {
            index,
            annotations: HashMap::new(),
            matches: None,
        })
        .collect();
    // Scores per page per processed type.
    let mut min_scores: Vec<f64> = vec![f64::INFINITY; pool.len()];

    for type_name in &types {
        // Annotation round for this type, fanned out per page.
        annotate_busy += exec.for_each_mut(&mut pool, |_, page| {
            let matches = page
                .matches
                .get_or_insert_with(|| annotator.page_matches(&docs[page.index]));
            annotator.annotate_from_matches(matches, &mut page.annotations, type_name);
        });
        // Page score for this type (Eq. 3), fold into running minimum.
        let (scores, score_busy) = exec.map_timed(&pool, |_, page| {
            page_type_score(&docs[page.index], &page.annotations, recognizers, type_name)
        });
        select_busy += score_busy;
        for (s, min_score) in scores.into_iter().zip(min_scores.iter_mut()) {
            *min_score = min_score.min(s);
        }
        // Keep the richest pages only (shrink, floor at sample_size).
        let keep = ((pool.len() as f64 * config.shrink_factor).ceil() as usize)
            .max(config.sample_size)
            .min(pool.len());
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            min_scores[b]
                .partial_cmp(&min_scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(keep);
        order.sort_unstable(); // preserve original page order
        pool = extract_indices(pool, &order);
        // Re-index the running minima to the kept pages.
        min_scores = order.iter().map(|&i| min_scores[i]).collect();
    }

    annotate_busy += exec.for_each_mut(&mut pool, |_, page| {
        propagate_upwards_into(&docs[page.index], &mut page.annotations);
    });

    select_busy += check_block_threshold(docs, &pool, config, exec)?;

    // Final sample: the k most annotated pages. Pages with no
    // annotations at all (interstitials, category browses) never
    // qualify — a short sample beats a polluted one.
    let mut order: Vec<usize> = (0..pool.len())
        .filter(|&i| !pool[i].annotations.is_empty())
        .collect();
    if order.is_empty() {
        return Err(SampleError::AnnotationThreshold {
            best_block_avg_milli: 0,
        });
    }
    order.sort_by_key(|&i| std::cmp::Reverse(pool[i].annotations.len()));
    order.truncate(config.sample_size);
    order.sort_unstable();
    let sample = extract_indices(pool, &order)
        .into_iter()
        .map(|page| AnnotatedPage {
            doc: docs[page.index].clone(),
            annotations: page.annotations,
        })
        .collect();
    Ok(SampleOutcome {
        sample,
        annotate_busy,
        select_busy,
    })
}

fn random_sample(
    docs: &[Document],
    recognizers: &RecognizerSet,
    annotator: &Annotator,
    sod: &Sod,
    config: &SampleConfig,
    seed: u64,
    exec: &Executor,
) -> Result<SampleOutcome, SampleError> {
    let types = sod_types(sod, recognizers);
    let k = config.sample_size.min(docs.len());
    let picks = random_indices(docs.len(), k, seed);
    let mut pages: Vec<AnnotatedPage> = docs
        .iter()
        .enumerate()
        .filter(|(i, _)| picks.contains(i))
        .map(|(_, doc)| AnnotatedPage {
            doc: doc.clone(),
            annotations: HashMap::new(),
        })
        .collect();
    let annotate_busy = exec.for_each_mut(&mut pages, |_, page| {
        // One DOM traversal annotates every type at once.
        annotator.annotate_types_into(&page.doc, &mut page.annotations, &types);
        propagate_upwards_into(&page.doc, &mut page.annotations);
    });
    Ok(SampleOutcome {
        sample: pages,
        annotate_busy,
        select_busy: Duration::ZERO,
    })
}

/// Deterministic k-of-n sampling via an xorshift generator (keeps the
/// core crate dependency-free; the seed makes Table II reproducible).
fn random_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Partial Fisher–Yates.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = i + (next() as usize) % (n - i);
        idx.swap(i, j);
    }
    idx.truncate(k.min(n));
    idx
}

fn extract_indices(pool: Vec<PoolPage>, keep: &[usize]) -> Vec<PoolPage> {
    pool.into_iter()
        .enumerate()
        .filter(|(i, _)| keep.contains(i))
        .map(|(_, p)| p)
        .collect()
}

/// Eq. 3: `score(page/tj) = Σ_{i' ∈ tj in page} score(i, tj) / tf(i)`.
///
/// For dictionary types the gazetteer supplies `score(i,t)` and
/// `tf(i)`; for pattern types each match contributes its confidence
/// (tf 1), which only matters for the running-minimum ordering.
fn page_type_score(
    doc: &Document,
    annotations: &AnnotationMap,
    recognizers: &RecognizerSet,
    type_name: &str,
) -> f64 {
    let gaz = recognizers.get(type_name).and_then(|r| r.gazetteer());
    let mut total = 0.0;
    for (&node, anns) in annotations {
        if !anns.iter().any(|a| a.type_name == type_name) {
            continue;
        }
        let NodeKind::Text(text) = &doc.node(node).kind else {
            continue;
        };
        match gaz.and_then(|g| g.get(text)) {
            Some(entry) => total += entry.confidence / entry.term_frequency,
            None => {
                let conf = anns
                    .iter()
                    .find(|a| a.type_name == type_name)
                    .map(|a| a.confidence)
                    .unwrap_or(0.0);
                total += conf;
            }
        }
    }
    total
}

/// §III-E annotation-phase stop: "For each block, we check if the
/// following condition holds: Σ_{i=1..k} (no. of annotations in
/// block)/k > α … if we obtain at least one block that satisfies the
/// given condition, we continue … Otherwise the process is stopped."
///
/// Per-page layout and block counting fan out on the executor; the
/// per-signature sums are reduced in page order (f64 addition is not
/// associative, so the fold order is pinned for determinism).
///
/// Returns the summed worker busy time of the per-page counting pass.
fn check_block_threshold(
    docs: &[Document],
    pool: &[PoolPage],
    config: &SampleConfig,
    exec: &Executor,
) -> Result<Duration, SampleError> {
    if pool.is_empty() {
        return Err(SampleError::EmptySource);
    }
    let opts = LayoutOptions::default();
    // Per-page block annotation counts, computed concurrently.
    let (per_page, busy): (Vec<Vec<(objectrunner_html::PathId, usize)>>, Duration) = exec
        .map_timed(pool, |_, page| {
            let doc = &docs[page.index];
            let layout = layout_document(doc, &opts);
            let tree = block_tree(doc, &layout, &opts);
            tree.blocks
                .iter()
                .map(|block| {
                    let sig = objectrunner_html::node_path_id(doc, block.node);
                    let count = doc
                        .descendants(block.node)
                        .filter(|id| page.annotations.contains_key(id))
                        .count();
                    (sig, count)
                })
                .collect()
        });
    // Average annotation count per block *signature* across pages,
    // folded in page-index order.
    let mut per_block: objectrunner_html::FxHashMap<objectrunner_html::PathId, f64> =
        objectrunner_html::FxHashMap::default();
    for blocks in &per_page {
        for &(sig, count) in blocks {
            *per_block.entry(sig).or_insert(0.0) += count as f64;
        }
    }
    let k = pool.len() as f64;
    let best = per_block.values().fold(0.0f64, |m, &v| m.max(v / k));
    if best > config.alpha {
        Ok(busy)
    } else {
        Err(SampleError::AnnotationThreshold {
            best_block_avg_milli: (best * 1000.0) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;
    use objectrunner_sod::{Multiplicity, SodBuilder};

    fn recognizers() -> RecognizerSet {
        let mut artists = Gazetteer::new();
        for (a, tf) in [("Metallica", 5.0), ("Madonna", 8.0), ("Muse", 4.0)] {
            artists.insert(a, 0.9, tf);
        }
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(artists));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    fn sod() -> objectrunner_sod::Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    fn concert_page(artist: &str) -> Document {
        parse(&format!(
            "<body><div class=\"m\"><li><div>{artist}</div>\
             <div>Monday May 11, 8:00pm</div></li></div></body>"
        ))
    }

    fn junk_page() -> Document {
        parse("<body><div class=\"m\"><p>nothing relevant here at all</p></div></body>")
    }

    fn seq() -> Executor {
        Executor::sequential()
    }

    #[test]
    fn selects_annotated_pages_over_junk() {
        let mut docs = vec![junk_page(), junk_page()];
        docs.push(concert_page("Metallica"));
        docs.push(concert_page("Madonna"));
        docs.push(concert_page("Muse"));
        let cfg = SampleConfig {
            sample_size: 3,
            ..SampleConfig::default()
        };
        let sample = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::SodBased,
            &seq(),
        )
        .expect("sample");
        assert_eq!(sample.len(), 3);
        for page in &sample {
            assert!(page.annotated_node_count() > 0, "junk page selected");
        }
    }

    #[test]
    fn discards_unannotatable_source() {
        let docs: Vec<Document> = (0..10).map(|_| junk_page()).collect();
        let cfg = SampleConfig {
            sample_size: 5,
            ..SampleConfig::default()
        };
        let err = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::SodBased,
            &seq(),
        )
        .expect_err("must be discarded");
        assert!(matches!(err, SampleError::AnnotationThreshold { .. }));
    }

    #[test]
    fn empty_source_is_an_error() {
        let err = select_sample(
            &[],
            &recognizers(),
            &sod(),
            &SampleConfig::default(),
            SampleStrategy::SodBased,
            &seq(),
        )
        .expect_err("empty");
        assert_eq!(err, SampleError::EmptySource);
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        let docs: Vec<Document> = (0..30)
            .map(|i| {
                if i % 3 == 0 {
                    concert_page("Metallica")
                } else {
                    junk_page()
                }
            })
            .collect();
        let cfg = SampleConfig {
            sample_size: 5,
            ..SampleConfig::default()
        };
        let s1 = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::Random(42),
            &seq(),
        )
        .expect("sample");
        let s2 = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::Random(42),
            &seq(),
        )
        .expect("sample");
        let texts = |s: &[AnnotatedPage]| -> Vec<String> {
            s.iter().map(|p| p.doc.text_content(p.doc.root())).collect()
        };
        assert_eq!(texts(&s1), texts(&s2));
    }

    #[test]
    fn random_indices_are_distinct_and_in_range() {
        let picks = random_indices(50, 20, 7);
        assert_eq!(picks.len(), 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_respects_requested_size() {
        let docs: Vec<Document> = (0..40).map(|_| concert_page("Metallica")).collect();
        let cfg = SampleConfig {
            sample_size: 7,
            ..SampleConfig::default()
        };
        let sample = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::SodBased,
            &seq(),
        )
        .expect("sample");
        assert_eq!(sample.len(), 7);
    }

    #[test]
    fn parallel_selection_matches_sequential() {
        let docs: Vec<Document> = (0..24)
            .map(|i| {
                if i % 4 == 0 {
                    junk_page()
                } else {
                    concert_page(["Metallica", "Madonna", "Muse"][i % 3])
                }
            })
            .collect();
        let cfg = SampleConfig {
            sample_size: 6,
            ..SampleConfig::default()
        };
        let render = |s: Vec<AnnotatedPage>| -> Vec<(String, usize)> {
            s.into_iter()
                .map(|p| (p.doc.text_content(p.doc.root()), p.annotated_node_count()))
                .collect()
        };
        let s1 = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::SodBased,
            &Executor::sequential(),
        )
        .expect("sequential sample");
        let s8 = select_sample(
            &docs,
            &recognizers(),
            &sod(),
            &cfg,
            SampleStrategy::SodBased,
            &Executor::new(8),
        )
        .expect("parallel sample");
        assert_eq!(render(s1), render(s8));
    }
}
