//! The end-to-end ObjectRunner pipeline.
//!
//! Page cleaning → visual simplification to the main block →
//! annotation + sample selection (Algorithm 1) → wrapper generation
//! (Algorithm 2) with the §IV self-validation loop ("when necessary,
//! we variate the parameters of the wrapping algorithm and re-execute
//! it … by variating the support between 3 and 5 pages") → extraction
//! from all pages.
//!
//! The pipeline is *staged*: each step above is a node of the explicit
//! stage graph in [`crate::stage`], driven by the deterministic fan-out
//! executor in [`crate::exec`]. Per-page stages run on a worker pool
//! sized by [`PipelineConfig::threads`] (default: `OBJECTRUNNER_THREADS`
//! or the machine's available parallelism), and the self-validation
//! loop evaluates its candidate support values concurrently. All
//! reductions are index-ordered, so output is byte-identical at any
//! thread count.

use crate::annotate::{AnnotatedPage, Annotator};
use crate::eqclass::EqConfig;
use crate::exec::Executor;
use crate::roles::DiffConfig;
use crate::sample::{select_sample_timed_with, SampleConfig, SampleError, SampleStrategy};
use crate::stage::{
    apply_block_stage, clean_stage, extract_stage, parse_stage, segment_stage, Stage, StageTiming,
};
use crate::wrapper::{generate_wrapper, Wrapper, WrapperError};
use objectrunner_html::{CleanOptions, Document};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_segment::{LayoutOptions, MainBlockChoice};
use objectrunner_sod::{Instance, Sod};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Sampling parameters (size k, α threshold).
    pub sample: SampleConfig,
    /// How the sample is chosen (Table II's comparison knob).
    pub strategy: SampleStrategy,
    /// Support values tried by the self-validation loop (inclusive).
    pub support_range: (usize, usize),
    /// Stop the loop early once a wrapper reaches this quality.
    pub quality_threshold: f64,
    /// Apply the VIPS-style main-block simplification.
    pub use_main_block: bool,
    /// HTML cleaning options.
    pub clean: CleanOptions,
    /// Exclude annotated data words from template classes (the
    /// ObjectRunner guard; baselines turn this off).
    pub annotations_guard: bool,
    /// Worker threads for the fan-out stages. `None` (the default)
    /// resolves `OBJECTRUNNER_THREADS`, falling back to the machine's
    /// available parallelism; `Some(n)` pins the count explicitly.
    /// Output is byte-identical at any setting.
    pub threads: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sample: SampleConfig::default(),
            strategy: SampleStrategy::SodBased,
            support_range: (3, 5),
            quality_threshold: 0.9,
            use_main_block: true,
            clean: CleanOptions::default(),
            annotations_guard: true,
            threads: None,
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The source was discarded during sampling (§III-E).
    Sample(SampleError),
    /// No support value produced a wrapper.
    Wrapper(WrapperError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sample(e) => write!(f, "sampling: {e}"),
            PipelineError::Wrapper(e) => write!(f, "wrapper generation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Run statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    pub pages: usize,
    pub sample_pages: usize,
    pub support_used: usize,
    pub conflict_splits: usize,
    pub rounds: usize,
    pub reruns: usize,
    pub wrapping_micros: u128,
    pub extraction_micros: u128,
    /// Per-stage wall/CPU timings, in execution order. The Annotate
    /// entry accounts the annotation rounds *inside* the Sample stage
    /// (CPU only); Parse appears only for `run_on_html` entry.
    pub stage_timings: Vec<StageTiming>,
    /// Worker threads the run used.
    pub threads: usize,
    /// Annotation memo-cache hits during this run (stats only — the
    /// cached values are pure functions of the text, so hit counts
    /// never influence results; the split is scheduling-dependent,
    /// hits + misses is not).
    pub annotation_cache_hits: u64,
    /// Annotation memo-cache misses (= unique texts matched) during
    /// this run.
    pub annotation_cache_misses: u64,
}

impl PipelineStats {
    /// The timing entry of one stage, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageTiming> {
        self.stage_timings.iter().find(|t| t.stage == stage)
    }

    /// Machine-readable JSON form (one object, no trailing newline).
    /// Key order is fixed, so equal stats render byte-identically;
    /// consumed by the eval runners' `--stats-json` mode and the serve
    /// protocol.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"pages\":{},\"sample_pages\":{},\"support_used\":{},\
             \"conflict_splits\":{},\"rounds\":{},\"reruns\":{},\
             \"wrapping_micros\":{},\"extraction_micros\":{},\"threads\":{},\
             \"annotation_cache_hits\":{},\"annotation_cache_misses\":{},\
             \"stage_timings\":[",
            self.pages,
            self.sample_pages,
            self.support_used,
            self.conflict_splits,
            self.rounds,
            self.reruns,
            self.wrapping_micros,
            self.extraction_micros,
            self.threads,
            self.annotation_cache_hits,
            self.annotation_cache_misses
        ));
        for (i, t) in self.stage_timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"wall_micros\":{},\"cpu_micros\":{}}}",
                t.stage.name(),
                t.wall_micros,
                t.cpu_micros
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Pipeline output.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The extracted objects, all pages concatenated.
    pub objects: Vec<Instance>,
    /// The wrapper that produced them.
    pub wrapper: Wrapper,
    /// The main-block choice the segment stage voted (None when
    /// simplification is off or no candidate block was found). A
    /// persisted wrapper carries this so the extract-only path can
    /// replay the identical simplification on unseen pages.
    pub main_block: Option<MainBlockChoice>,
    pub stats: PipelineStats,
}

/// Output of the extract-only fast path ([`extract_only`]).
#[derive(Debug)]
pub struct ExtractOutcome {
    /// Extracted instances, page boundaries preserved.
    pub per_page: Vec<Vec<Instance>>,
    /// The prepared (cleaned + simplified) documents, for callers that
    /// need to score them afterwards (drift detection).
    pub docs: Vec<Document>,
    /// Stage timings of the fast path: Parse/Clean/Segment/Extract
    /// only — no Annotate, Sample or Wrap entries, proving induction
    /// was skipped.
    pub stats: PipelineStats,
}

impl ExtractOutcome {
    /// All instances, pages concatenated.
    pub fn objects(&self) -> Vec<&Instance> {
        self.per_page.iter().flatten().collect()
    }
}

/// Apply an already-induced wrapper to raw pages, skipping induction
/// entirely: Parse → Clean → Segment (replaying `main_block`) →
/// Extract. The preparation steps mirror [`Pipeline::run_on_html`]
/// byte-for-byte — same cleaning options, same block simplification —
/// so on pages of the unchanged template the output is identical to a
/// fresh pipeline run with this wrapper.
pub fn extract_only<S: AsRef<str>>(
    wrapper: &Wrapper,
    main_block: Option<&MainBlockChoice>,
    clean: &CleanOptions,
    pages: &[S],
    threads: Option<usize>,
) -> ExtractOutcome {
    let exec = Executor::from_env(threads);
    let refs: Vec<&str> = pages.iter().map(AsRef::as_ref).collect();
    let (mut docs, parse_timing) = parse_stage(&exec, &refs);
    let mut timings = vec![parse_timing];
    timings.push(clean_stage(&exec, &mut docs, clean));
    if let Some(choice) = main_block {
        timings.push(apply_block_stage(&exec, &mut docs, choice));
    }
    let extract_start = Instant::now();
    let (per_page, extract_timing) = extract_stage(&exec, wrapper, &docs);
    timings.push(extract_timing);
    let stats = PipelineStats {
        pages: docs.len(),
        support_used: wrapper.support,
        conflict_splits: wrapper.conflict_splits,
        rounds: wrapper.rounds,
        extraction_micros: extract_start.elapsed().as_micros(),
        stage_timings: timings,
        threads: exec.threads(),
        ..PipelineStats::default()
    };
    ExtractOutcome {
        per_page,
        docs,
        stats,
    }
}

/// The ObjectRunner engine for one source.
#[derive(Debug, Clone)]
pub struct Pipeline {
    sod: Sod,
    recognizers: RecognizerSet,
    /// Compiled, memoizing annotation engine over `recognizers`.
    /// Behind an `Arc` so cloned pipelines (and callers holding one via
    /// [`Pipeline::with_annotator`]) share the compiled automatons and
    /// the warm memo cache instead of recompiling.
    annotator: Arc<Annotator>,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with default configuration.
    pub fn new(sod: Sod, recognizers: RecognizerSet) -> Pipeline {
        let annotator = Arc::new(Annotator::new(&recognizers));
        Pipeline {
            sod,
            recognizers,
            annotator,
            config: PipelineConfig::default(),
        }
    }

    /// A pipeline reusing an existing annotation engine (must be
    /// compiled from `recognizers`); the serving layer uses this to
    /// share the compiled automatons and memo cache across requests.
    pub fn with_annotator(
        sod: Sod,
        recognizers: RecognizerSet,
        annotator: Arc<Annotator>,
    ) -> Pipeline {
        Pipeline {
            sod,
            recognizers,
            annotator,
            config: PipelineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// The SOD this pipeline targets.
    pub fn sod(&self) -> &Sod {
        &self.sod
    }

    /// The shared annotation engine.
    pub fn annotator(&self) -> &Arc<Annotator> {
        &self.annotator
    }

    /// Run on raw HTML pages (the batch entry point: pages parse
    /// concurrently).
    pub fn run_on_html<S: AsRef<str>>(
        &self,
        pages: &[S],
    ) -> Result<PipelineOutcome, PipelineError> {
        let exec = Executor::from_env(self.config.threads);
        let refs: Vec<&str> = pages.iter().map(AsRef::as_ref).collect();
        let (docs, parse_timing) = parse_stage(&exec, &refs);
        self.run_staged(docs, &exec, vec![parse_timing])
    }

    /// Run on already-parsed documents.
    pub fn run_on_documents(&self, docs: Vec<Document>) -> Result<PipelineOutcome, PipelineError> {
        let exec = Executor::from_env(self.config.threads);
        self.run_staged(docs, &exec, Vec::new())
    }

    /// Drive the stage graph over parsed documents.
    fn run_staged(
        &self,
        mut docs: Vec<Document>,
        exec: &Executor,
        mut timings: Vec<StageTiming>,
    ) -> Result<PipelineOutcome, PipelineError> {
        // 1. Cleaning (per page).
        timings.push(clean_stage(exec, &mut docs, &self.config.clean));

        // 2. Main-block simplification (per-page scoring, whole-source
        // vote, per-page simplification).
        let mut main_block: Option<MainBlockChoice> = None;
        if self.config.use_main_block {
            let (choice, timing) = segment_stage(exec, &mut docs, &LayoutOptions::default());
            main_block = choice;
            timings.push(timing);
        }

        let wrap_start = Instant::now();
        // 3. Annotation + sampling (annotation rounds fan out per page;
        // shrinking and selection are whole-source).
        let sample_start = Instant::now();
        let cache_hits_before = self.annotator.cache_hits();
        let cache_misses_before = self.annotator.cache_misses();
        let sample_outcome = select_sample_timed_with(
            &docs,
            &self.recognizers,
            &self.annotator,
            &self.sod,
            &self.config.sample,
            self.config.strategy,
            exec,
        )
        .map_err(PipelineError::Sample)?;
        timings.push(StageTiming {
            stage: Stage::Annotate,
            // Annotation has no wall-clock of its own: its rounds are
            // interleaved with Sample's shrinking, so only CPU is
            // attributed here.
            wall_micros: 0,
            cpu_micros: sample_outcome.annotate_busy.as_micros(),
        });
        timings.push(StageTiming::record(
            Stage::Sample,
            sample_start,
            sample_outcome.annotate_busy,
        ));
        let sample = sample_outcome.sample;

        // 4. Wrapper generation with the self-validation loop (support
        // values evaluated concurrently).
        let wrap_stage_start = Instant::now();
        let (wrapper, reruns, wrap_busy) = self.best_wrapper(&sample, exec)?;
        timings.push(StageTiming::record(
            Stage::Wrap,
            wrap_stage_start,
            wrap_busy,
        ));
        let wrapping_micros = wrap_start.elapsed().as_micros();

        // 5. Extraction from all pages (per page).
        let extract_start = Instant::now();
        let (per_page, extract_timing) = extract_stage(exec, &wrapper, &docs);
        let objects: Vec<Instance> = per_page.into_iter().flatten().collect();
        timings.push(extract_timing);
        let extraction_micros = extract_start.elapsed().as_micros();

        let stats = PipelineStats {
            pages: docs.len(),
            sample_pages: sample.len(),
            support_used: wrapper.support,
            conflict_splits: wrapper.conflict_splits,
            rounds: wrapper.rounds,
            reruns,
            wrapping_micros,
            extraction_micros,
            stage_timings: timings,
            threads: exec.threads(),
            annotation_cache_hits: self.annotator.cache_hits() - cache_hits_before,
            annotation_cache_misses: self.annotator.cache_misses() - cache_misses_before,
        };
        Ok(PipelineOutcome {
            objects,
            wrapper,
            main_block,
            stats,
        })
    }

    /// §IV "automatic variation of parameters": run wrapper generation
    /// for each support value — concurrently — then pick the winner by
    /// replaying the serial loop's rule over the results in support
    /// order: best quality wins (earliest support on ties), stopping at
    /// the first support that reaches the quality threshold. Supports
    /// past a serial early stop are computed speculatively and
    /// discarded, so the outcome (wrapper *and* rerun count) is
    /// byte-identical to the sequential loop.
    fn best_wrapper(
        &self,
        sample: &[AnnotatedPage],
        exec: &Executor,
    ) -> Result<(Wrapper, usize, std::time::Duration), PipelineError> {
        let (lo, hi) = self.config.support_range;
        let supports: Vec<usize> = (lo..=hi.max(lo)).collect();
        let (results, busy) = exec.map_timed(&supports, |_, &support| {
            let diff_cfg = DiffConfig {
                eq: EqConfig {
                    min_support: support,
                    annotations_guard: self.config.annotations_guard,
                    ..EqConfig::default()
                },
                ..DiffConfig::default()
            };
            generate_wrapper(sample, &self.sod, &diff_cfg)
        });

        let mut best: Option<Wrapper> = None;
        let mut last_err: Option<WrapperError> = None;
        let mut reruns = 0usize;
        for result in results {
            match result {
                Ok(w) => {
                    let good_enough = w.quality >= self.config.quality_threshold;
                    if best.as_ref().map(|b| w.quality > b.quality).unwrap_or(true) {
                        best = Some(w);
                    }
                    if good_enough {
                        break;
                    }
                }
                Err(e) => last_err = Some(e),
            }
            reruns += 1;
        }
        match best {
            Some(w) => Ok((w, reruns.saturating_sub(1), busy)),
            None => Err(PipelineError::Wrapper(
                last_err.unwrap_or(WrapperError::EmptySample),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;
    use objectrunner_sod::{Multiplicity, SodBuilder};

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    fn recognizers(artists: &[&str]) -> RecognizerSet {
        let mut g = Gazetteer::new();
        for a in artists {
            g.insert(a, 0.9, 5.0);
        }
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(g));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    fn source_pages(n_pages: usize) -> Vec<String> {
        (0..n_pages)
            .map(|p| {
                let recs: String = (0..(p % 3 + 1))
                    .map(|i| {
                        format!(
                            "<li><div>Band{p}x{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                format!(
                    "<html><head><title>t</title></head><body>\
                     <div class=\"nav\">home about contact pages</div>\
                     <div class=\"content\"><ul>{recs}</ul></div>\
                     <div class=\"footer\">copyright legal privacy terms</div>\
                     </body></html>"
                )
            })
            .collect()
    }

    #[test]
    fn full_pipeline_extracts_from_synthetic_source() {
        let pages = source_pages(12);
        // Dictionary knows a fifth of the artists (paper: ≥20%).
        let known: Vec<String> = (0..12).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        // Every record extracted: pages have 1..3 records.
        let expected: usize = (0..12).map(|p| p % 3 + 1).sum();
        assert_eq!(outcome.objects.len(), expected);
        // No nav/footer noise in values.
        for o in &outcome.objects {
            let mut vals = Vec::new();
            o.values_of_type("artist", &mut vals);
            for v in vals {
                assert!(v.starts_with("Band"), "noise extracted: {v}");
            }
        }
        assert_eq!(outcome.stats.pages, 12);
        assert!(outcome.stats.sample_pages <= 8);
    }

    #[test]
    fn discards_irrelevant_source() {
        let pages: Vec<String> = (0..8)
            .map(|i| {
                format!("<html><body><p>weather report number {i} nothing else</p></body></html>")
            })
            .collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&["Metallica"]));
        let err = pipeline.run_on_html(&pages).expect_err("discarded");
        assert!(matches!(err, PipelineError::Sample(_)));
    }

    #[test]
    fn random_strategy_also_runs() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                strategy: SampleStrategy::Random(17),
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(!outcome.objects.is_empty());
    }

    #[test]
    fn wrapping_time_is_recorded() {
        let pages = source_pages(10);
        let known: Vec<String> = (0..10).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs));
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(outcome.stats.wrapping_micros > 0);
    }

    #[test]
    fn stage_timings_cover_the_graph() {
        let pages = source_pages(10);
        let known: Vec<String> = (0..10).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs));
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        for stage in [
            Stage::Parse,
            Stage::Clean,
            Stage::Segment,
            Stage::Annotate,
            Stage::Sample,
            Stage::Wrap,
            Stage::Extract,
        ] {
            assert!(
                outcome.stats.stage(stage).is_some(),
                "missing timing for stage {stage}"
            );
        }
        assert!(outcome.stats.threads >= 1);
        // The Sample stage dominates the wrap clock together with Wrap.
        let sample_wall = outcome.stats.stage(Stage::Sample).unwrap().wall_micros;
        let wrap_wall = outcome.stats.stage(Stage::Wrap).unwrap().wall_micros;
        assert!(sample_wall + wrap_wall <= outcome.stats.wrapping_micros + 1_000);
    }

    #[test]
    fn extract_only_matches_full_pipeline() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let config = PipelineConfig {
            sample: SampleConfig {
                sample_size: 8,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs)).with_config(config.clone());
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        assert!(outcome.main_block.is_some(), "segment vote captured");

        let fast = extract_only(
            &outcome.wrapper,
            outcome.main_block.as_ref(),
            &config.clean,
            &pages,
            None,
        );
        let fast_objects: Vec<String> = fast.objects().iter().map(|o| o.to_string()).collect();
        let full_objects: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
        assert_eq!(fast_objects, full_objects, "fast path diverged");

        // Induction stages never ran on the fast path.
        for stage in [Stage::Annotate, Stage::Sample, Stage::Wrap] {
            assert!(
                fast.stats.stage(stage).is_none(),
                "{stage} ran on fast path"
            );
        }
        for stage in [Stage::Parse, Stage::Clean, Stage::Segment, Stage::Extract] {
            assert!(fast.stats.stage(stage).is_some(), "{stage} missing");
        }
    }

    #[test]
    fn stats_json_is_machine_readable() {
        let stats = PipelineStats {
            pages: 3,
            sample_pages: 2,
            support_used: 4,
            stage_timings: vec![StageTiming {
                stage: Stage::Parse,
                wall_micros: 10,
                cpu_micros: 9,
            }],
            threads: 1,
            ..PipelineStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pages\":3"));
        assert!(json.contains("\"stage\":\"parse\""));
        assert!(json.contains("\"wall_micros\":10"));
        // Fixed key order: equal stats render byte-identically.
        assert_eq!(json, stats.clone().to_json());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let run = |threads: usize| {
            let pipeline =
                Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                    threads: Some(threads),
                    sample: SampleConfig {
                        sample_size: 8,
                        ..SampleConfig::default()
                    },
                    ..PipelineConfig::default()
                });
            let outcome = pipeline.run_on_html(&pages).expect("runs");
            let objects: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
            (objects, outcome.stats.support_used, outcome.stats.reruns)
        };
        assert_eq!(run(1), run(8));
    }
}
