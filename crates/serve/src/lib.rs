//! # objectrunner-serve
//!
//! The serving layer over the wrapper store: a long-running daemon
//! that answers extraction requests from the wrapper cache, skipping
//! Parse→Wrap induction entirely on the cached path, while watching
//! each source for **template drift** — the site shipping a redesign
//! that silently breaks the stored wrapper.
//!
//! See [`service`] for the protocol and drift lifecycle, and
//! `src/main.rs` for the `objectrunner-serve` binary (stdin/TCP
//! loop, `seed-corpus`, `extract-file`).

pub mod service;

pub use service::{instance_json, ServeConfig, Service, WrapperState};
