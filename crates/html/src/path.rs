//! DOM paths and structural node signatures.
//!
//! The paper identifies "the best candidate block ... by its tag name,
//! its path in the DOM tree and its attribute names and values" so the
//! same block can be found across all pages of a source. This module
//! provides those identifiers.
//!
//! Paths are interned [`PathId`]s computed incrementally at tree
//! construction, so both [`node_path`] and [`NodeSignature::of`] are
//! O(1) field reads — no ancestor walk, no per-call `String`.

use crate::dom::{Document, NodeId, NodeKind};
use crate::intern::{PathId, Symbol};
use std::sync::OnceLock;

/// Tag path from the root to `id`, e.g. `html/body/div/span`.
///
/// Text nodes contribute the pseudo-tag `#text`. Positions (sibling
/// indices) are deliberately *not* included: tokens at the same tag
/// path start out with the same role (paper §III-C, Algorithm 2 line 1)
/// and are differentiated later by equivalence-class analysis.
pub fn node_path(doc: &Document, id: NodeId) -> String {
    doc.path_id(id).render()
}

/// Interned form of [`node_path`]: the node's [`PathId`], read in O(1).
pub fn node_path_id(doc: &Document, id: NodeId) -> PathId {
    doc.path_id(id)
}

/// Structural identity of a node: tag, DOM path, and identifying
/// attributes. Two nodes on different pages with equal signatures are
/// treated as "the same block". Fully interned: comparison and hashing
/// never touch strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeSignature {
    pub tag: Symbol,
    pub path: PathId,
    /// `id` and `class` attribute values (the stable identifiers that
    /// survive cleaning).
    pub attrs: Vec<(Symbol, Symbol)>,
}

fn identifying_attrs() -> (Symbol, Symbol) {
    static ATTRS: OnceLock<(Symbol, Symbol)> = OnceLock::new();
    *ATTRS.get_or_init(|| (Symbol::intern("id"), Symbol::intern("class")))
}

impl NodeSignature {
    /// Compute the signature of an element node; `None` for
    /// non-elements. O(1) in tree depth: the path is the node's
    /// precomputed [`PathId`].
    pub fn of(doc: &Document, id: NodeId) -> Option<NodeSignature> {
        let NodeKind::Element { name, attrs } = &doc.node(id).kind else {
            return None;
        };
        let (id_attr, class_attr) = identifying_attrs();
        let keep: Vec<(Symbol, Symbol)> = attrs
            .iter()
            .filter(|(a, _)| *a == id_attr || *a == class_attr)
            .copied()
            .collect();
        Some(NodeSignature {
            tag: *name,
            path: doc.path_id(id),
            attrs: keep,
        })
    }

    /// Find all nodes in `doc` matching this signature.
    pub fn find_in(&self, doc: &Document) -> Vec<NodeId> {
        doc.descendants(doc.root())
            .filter(|&id| NodeSignature::of(doc, id).as_ref() == Some(self))
            .collect()
    }
}

/// Depth of a node (root has depth 0). O(1): each node contributes one
/// segment to its interned path, so depth equals the path's length.
pub fn depth(doc: &Document, id: NodeId) -> usize {
    doc.path_id(id).depth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::path_probe_count;
    use crate::parse;

    #[test]
    fn paths_follow_tag_chain() {
        let doc = parse("<html><body><div><span>x</span></div></body></html>");
        let span = doc.elements_by_tag(doc.root(), "span")[0];
        assert_eq!(node_path(&doc, span), "html/body/div/span");
        let text = doc.children(span)[0];
        assert_eq!(node_path(&doc, text), "html/body/div/span/#text");
        assert_eq!(node_path_id(&doc, span).render(), node_path(&doc, span));
    }

    #[test]
    fn signature_matches_same_structure_across_pages() {
        let p1 = parse("<body><div class=\"main\"><p>a</p></div></body>");
        let p2 = parse("<body><div class=\"main\"><p>bbb</p></div></body>");
        let d1 = p1.elements_by_tag(p1.root(), "div")[0];
        let sig = NodeSignature::of(&p1, d1).expect("element");
        let found = sig.find_in(&p2);
        assert_eq!(found.len(), 1);
        assert_eq!(p2.text_content(found[0]), "bbb");
    }

    #[test]
    fn signature_distinguishes_classes() {
        let p = parse("<body><div class=\"a\">1</div><div class=\"b\">2</div></body>");
        let divs = p.elements_by_tag(p.root(), "div");
        let sig_a = NodeSignature::of(&p, divs[0]).expect("element");
        assert_eq!(sig_a.find_in(&p).len(), 1);
    }

    #[test]
    fn signature_ignores_non_identifying_attrs() {
        let p1 = parse("<div class=\"m\" href=\"1\">x</div>");
        let p2 = parse("<div class=\"m\" href=\"2\">y</div>");
        let d1 = p1.elements_by_tag(p1.root(), "div")[0];
        let sig = NodeSignature::of(&p1, d1).expect("element");
        assert_eq!(sig.find_in(&p2).len(), 1);
    }

    #[test]
    fn depth_counts_ancestors() {
        let doc = parse("<a><b><c>x</c></b></a>");
        let c = doc.elements_by_tag(doc.root(), "c")[0];
        assert_eq!(depth(&doc, c), 3);
        assert_eq!(depth(&doc, doc.root()), 0);
    }

    /// Satellite guarantee: computing all N signatures of an N-node
    /// document does O(N) total work — zero path-interner probes after
    /// tree construction, because `of` reads the node's precomputed
    /// `PathId` instead of walking ancestors.
    #[test]
    fn signatures_do_constant_path_work_per_node() {
        // Deep + wide document so an O(depth) walk would be visible.
        let mut html = String::new();
        for i in 0..40 {
            html.push_str(&format!("<div class=\"lvl{i}\">"));
        }
        for _ in 0..200 {
            html.push_str("<span><em>x</em></span>");
        }
        for _ in 0..40 {
            html.push_str("</div>");
        }
        let doc = parse(&html);
        let n = doc.reachable_count();
        assert!(n > 400, "want a non-trivial tree, got {n} nodes");

        let before = path_probe_count();
        let mut sigs = 0usize;
        for id in doc.descendants(doc.root()) {
            if NodeSignature::of(&doc, id).is_some() {
                sigs += 1;
            }
        }
        let probes = path_probe_count() - before;
        assert!(sigs > 400, "computed {sigs} signatures");
        assert_eq!(
            probes, 0,
            "signature computation must not re-derive paths (O(N) total)"
        );
    }
}
