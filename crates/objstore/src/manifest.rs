//! The store manifest: the single source of truth for what is
//! committed.
//!
//! The manifest is an `ORMAN` frame (shared [`objectrunner_store::frame`]
//! codec) listing every segment with its committed byte length and a
//! whole-prefix FNV-64 checksum, plus the store's cumulative counters.
//! Commit is atomic: render to `MANIFEST.tmp`, fsync, rename over
//! `MANIFEST`. A crash before the rename leaves the previous manifest
//! in force — appended-but-uncommitted segment bytes are truncated
//! away at the next open, so readers never see a half-committed batch.
//!
//! Deliberately absent: wall-clock timestamps. Manifest bytes are a
//! pure function of the committed history, which is what lets tests
//! assert byte-identical stores across thread counts and restarts.

use crate::ObjStoreError;
use objectrunner_store::{frame, FrameError, Json};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Magic of the manifest frame.
pub const MANIFEST_MAGIC: &str = "ORMAN";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Oldest version this build still reads.
pub const MIN_MANIFEST_VERSION: u32 = 1;

/// One committed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the store directory.
    pub file: String,
    /// Committed record count.
    pub records: u64,
    /// Committed byte length (header + whole frames). Bytes past this
    /// are a torn append and are discarded on open.
    pub committed_bytes: u64,
    /// FNV-1a/64 over the committed prefix.
    pub checksum: u64,
}

/// The committed state of a store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Compaction generation current segments belong to (starts at 1).
    pub generation: u64,
    /// Next store-wide record sequence number.
    pub next_seq: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Cumulative: objects presented to ingest.
    pub ingested: u64,
    /// Cumulative: objects first seen (version-1 records).
    pub new_objects: u64,
    /// Cumulative: ingests fused into an existing object.
    pub fused: u64,
    /// Cumulative: ingests that collided with an existing identity key.
    pub duplicates: u64,
    /// Cumulative: objects skipped for missing key attributes.
    pub skipped: u64,
    /// Committed segments, append order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// A fresh, empty store.
    pub fn fresh() -> Manifest {
        Manifest {
            generation: 1,
            next_seq: 1,
            ..Manifest::default()
        }
    }

    /// Render the framed manifest bytes.
    pub fn render(&self) -> String {
        let segments = self
            .segments
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::str(&s.file)),
                    ("records".into(), Json::int(s.records as i64)),
                    (
                        "committed_bytes".into(),
                        Json::int(s.committed_bytes as i64),
                    ),
                    ("checksum".into(), Json::str(format!("{:016x}", s.checksum))),
                ])
            })
            .collect();
        let payload = Json::Obj(vec![
            ("generation".into(), Json::int(self.generation as i64)),
            ("next_seq".into(), Json::int(self.next_seq as i64)),
            ("compactions".into(), Json::int(self.compactions as i64)),
            ("ingested".into(), Json::int(self.ingested as i64)),
            ("new_objects".into(), Json::int(self.new_objects as i64)),
            ("fused".into(), Json::int(self.fused as i64)),
            ("duplicates".into(), Json::int(self.duplicates as i64)),
            ("skipped".into(), Json::int(self.skipped as i64)),
            ("segments".into(), Json::Arr(segments)),
        ]);
        frame::encode(MANIFEST_MAGIC, MANIFEST_VERSION, &payload.render())
    }

    /// Parse framed manifest bytes.
    pub fn parse(data: &str) -> Result<Manifest, ObjStoreError> {
        let (_, payload) =
            frame::decode(data, MANIFEST_MAGIC, MIN_MANIFEST_VERSION, MANIFEST_VERSION).map_err(
                |e| match e {
                    FrameError::BadHeader => ObjStoreError::BadHeader {
                        file: MANIFEST_FILE.into(),
                        detail: "not an ORMAN frame".into(),
                    },
                    FrameError::UnsupportedVersion(v) => ObjStoreError::UnsupportedVersion(v),
                    FrameError::Corrupt { expected, found } => ObjStoreError::Corrupt {
                        file: MANIFEST_FILE.into(),
                        detail: format!("expected {expected}, found {found}"),
                    },
                },
            )?;
        let j = Json::parse(payload).map_err(|e| ObjStoreError::Malformed {
            file: MANIFEST_FILE.into(),
            detail: format!("payload is not JSON: {e}"),
        })?;
        let malformed = |detail: String| ObjStoreError::Malformed {
            file: MANIFEST_FILE.into(),
            detail,
        };
        let u64_field = |j: &Json, k: &str| {
            j.get(k)
                .and_then(Json::as_i64)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| malformed(format!("missing or invalid '{k}'")))
        };
        let segments = j
            .get("segments")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing 'segments' array".into()))?
            .iter()
            .map(|s| {
                let file = s
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("segment missing 'file'".into()))?
                    .to_owned();
                let checksum = s
                    .get("checksum")
                    .and_then(Json::as_str)
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| malformed("segment missing hex 'checksum'".into()))?;
                Ok(SegmentMeta {
                    file,
                    records: u64_field(s, "records")?,
                    committed_bytes: u64_field(s, "committed_bytes")?,
                    checksum,
                })
            })
            .collect::<Result<Vec<_>, ObjStoreError>>()?;
        Ok(Manifest {
            generation: u64_field(&j, "generation")?,
            next_seq: u64_field(&j, "next_seq")?,
            compactions: u64_field(&j, "compactions")?,
            ingested: u64_field(&j, "ingested")?,
            new_objects: u64_field(&j, "new_objects")?,
            fused: u64_field(&j, "fused")?,
            duplicates: u64_field(&j, "duplicates")?,
            skipped: u64_field(&j, "skipped")?,
            segments,
        })
    }

    /// Load the manifest from a store directory; `Ok(None)` when the
    /// store has never committed (fresh directory).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, ObjStoreError> {
        let path = dir.join(MANIFEST_FILE);
        match fs::read_to_string(&path) {
            Ok(data) => Manifest::parse(&data).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ObjStoreError::Io(e)),
        }
    }

    /// Atomically commit: write `MANIFEST.tmp`, fsync, rename over
    /// `MANIFEST`. Readers either see the old manifest or this one.
    pub fn commit(&self, dir: &Path) -> Result<(), ObjStoreError> {
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(self.render().as_bytes())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all(); // persist the rename; best-effort on non-POSIX
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            generation: 2,
            next_seq: 42,
            compactions: 1,
            ingested: 100,
            new_objects: 60,
            fused: 10,
            duplicates: 40,
            skipped: 3,
            segments: vec![
                SegmentMeta {
                    file: "seg-g00002-00000.seg".into(),
                    records: 60,
                    committed_bytes: 4096,
                    checksum: 0xdead_beef_cafe_f00d,
                },
                SegmentMeta {
                    file: "seg-g00002-00001.seg".into(),
                    records: 2,
                    committed_bytes: 128,
                    checksum: 7,
                },
            ],
        }
    }

    #[test]
    fn codec_is_a_fixed_point() {
        let m = manifest();
        let bytes = m.render();
        let back = Manifest::parse(&bytes).expect("parses");
        assert_eq!(back, m);
        assert_eq!(back.render(), bytes);
    }

    #[test]
    fn corruption_and_bad_headers_are_typed() {
        let bytes = manifest().render();
        assert!(matches!(
            Manifest::parse(&bytes[..bytes.len() - 3]),
            Err(ObjStoreError::Corrupt { .. })
        ));
        assert!(matches!(
            Manifest::parse("ORWRAP v2 1 0000000000000000\nx"),
            Err(ObjStoreError::BadHeader { .. })
        ));
        let future = bytes.replacen("ORMAN v1", "ORMAN v9", 1);
        // Re-framing keeps the checksum valid only if we re-encode; a
        // version bump alone must be caught before the checksum.
        assert!(matches!(
            Manifest::parse(&future),
            Err(ObjStoreError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn commit_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("objstore-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None, "fresh dir");
        let m = manifest();
        m.commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        fs::remove_dir_all(&dir).unwrap();
    }
}
