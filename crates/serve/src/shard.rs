//! Per-source domain shards — the serving core's unit of isolation.
//!
//! Every source (one wrapper, one domain) is a [`SourceShard`]: an
//! immutable wrapper snapshot behind a [`Slot`] (lock-free reads, see
//! `slot.rs`) plus a mutex-guarded mutation lane ([`ShardMut`]) for
//! everything that changes — drift bookkeeping, the suspect-page
//! buffer, lifecycle state, repair and re-induction. The shards hang
//! off a registry map that is itself a `Slot`, so the hot path of a
//! cached `extract` — registry lookup, wrapper snapshot, the staged
//! extraction pipeline, drift scoring — touches **no lock at all**:
//!
//! ```text
//!   request ──> registry Slot ──> SourceShard ──> wrapper Slot ──> extract_only
//!                (atomic load)                     (atomic load)    (pure)
//!                                                      │
//!                          bookkeeping / repair ──> ShardMut lane (per-source mutex)
//! ```
//!
//! Mutation serializes **per source**: two requests drifting the same
//! wrapper queue on that shard's lane, while requests for any other
//! source — any other domain — never contend. A repair or
//! re-induction publishes its new wrapper by storing a fresh `Arc`
//! into the slot and bumping the version stamp; in-flight extractions
//! keep their old snapshot alive until they finish, and every later
//! request picks up the new revision with a single atomic load.
//!
//! Batched extraction: when the connection layer hands over several
//! pipelined `extract` requests against the same source, they run as
//! one staged pipeline ([`extract_only_batch`]) against one snapshot,
//! then each request's drift bookkeeping replays sequentially through
//! the mutation lane. If request *i* triggers a repair, the
//! precomputed outcomes of requests *i+1…* are invalidated (their
//! snapshot is no longer what a serial daemon would have used) and
//! those requests re-extract individually against the new wrapper —
//! so the batch's responses are byte-identical to the serial order.

use crate::service::{err, instance_json, ServiceShared};
use crate::slot::{Slot, SlotReader};
use objectrunner_core::matching::drift_score;
use objectrunner_core::pipeline::{extract_only_batch, extract_only_with, ExtractOutcome};
use objectrunner_core::wrapper::{repair_wrapper, RepairConfig};
use objectrunner_objstore::{IngestContext, IngestObject};
use objectrunner_obs::{Span, DRIFT_BUCKETS_MILLI, LATENCY_BUCKETS_MICROS};
use objectrunner_store::{load_file, Json, RepairProvenance, StoredWrapper};
use objectrunner_webgen::Domain;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lifecycle state of a served wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperState {
    /// Extracting within drift tolerance.
    Fresh,
    /// Drift crossed the threshold; awaiting enough buffered pages.
    Stale,
    /// Patched by tree-diff repair since it was last stale — the
    /// cheap path: no induction stages ran.
    Repaired,
    /// Re-induced from drifted pages since it was last stale.
    Reinduced,
}

impl WrapperState {
    pub fn as_str(self) -> &'static str {
        match self {
            WrapperState::Fresh => "fresh",
            WrapperState::Stale => "stale",
            WrapperState::Repaired => "repaired",
            WrapperState::Reinduced => "reinduced",
        }
    }
}

/// The registry map: source name → shard. Readers hold an immutable
/// snapshot; inserting a source publishes a new map.
pub(crate) type SourceMap = BTreeMap<String, Arc<SourceShard>>;

/// Everything about one source that mutates — guarded by the shard's
/// mutation lane.
pub(crate) struct ShardMut {
    pub state: WrapperState,
    pub extracts: u64,
    pub cache_hits: u64,
    pub drift_events: u64,
    /// Recent drifted pages: (html, drift score), bounded.
    pub buffer: VecDeque<(String, f64)>,
    /// Human-readable lifecycle transitions, oldest first.
    pub log: Vec<String>,
    /// Wall clock (Unix micros) of the last request touching this
    /// source; 0 until first touched.
    pub last_activity_wall: u64,
    /// Monotonic micros of the last request touching this source;
    /// paired with "now" to report idle time without wall-clock jumps.
    pub last_activity_mono: u64,
}

impl ShardMut {
    fn new() -> ShardMut {
        ShardMut {
            state: WrapperState::Fresh,
            extracts: 0,
            cache_hits: 0,
            drift_events: 0,
            buffer: VecDeque::new(),
            log: Vec::new(),
            last_activity_wall: 0,
            last_activity_mono: 0,
        }
    }

    fn touch(&mut self, shared: &ServiceShared) {
        self.last_activity_wall = shared.clock.wall_unix_micros();
        self.last_activity_mono = shared.clock.monotonic_micros();
    }
}

/// One served source: lock-free wrapper snapshot + serialized
/// mutation lane.
pub struct SourceShard {
    pub name: String,
    pub(crate) slot: Slot<StoredWrapper>,
    pub(crate) state: Mutex<ShardMut>,
}

impl SourceShard {
    pub(crate) fn new(name: &str, stored: StoredWrapper) -> Arc<SourceShard> {
        Arc::new(SourceShard {
            name: name.to_owned(),
            slot: Slot::new(Arc::new(stored)),
            state: Mutex::new(ShardMut::new()),
        })
    }

    pub(crate) fn lane(&self) -> MutexGuard<'_, ShardMut> {
        self.state.lock().expect("shard lane poisoned")
    }

    /// The current wrapper snapshot, bypassing any reader cache (cold
    /// paths: status rendering, tests).
    pub(crate) fn snapshot(&self) -> Arc<StoredWrapper> {
        self.slot.load().1
    }
}

/// Per-thread reader-side caches: the registry snapshot and one
/// wrapper snapshot per source. Each pool worker (and the stdin loop)
/// owns one, so steady-state reads never share mutable state.
#[derive(Default)]
pub struct ReaderCache {
    registry: SlotReader<SourceMap>,
    wrappers: BTreeMap<String, SlotReader<StoredWrapper>>,
}

impl ReaderCache {
    pub fn new() -> ReaderCache {
        ReaderCache::default()
    }

    pub(crate) fn sources(&mut self, shared: &ServiceShared) -> Arc<SourceMap> {
        self.registry.get(&shared.registry)
    }

    pub(crate) fn wrapper(&mut self, shard: &SourceShard) -> (u64, Arc<StoredWrapper>) {
        self.wrappers
            .entry(shard.name.clone())
            .or_default()
            .get_versioned(&shard.slot)
    }
}

/// Ensure a source is registered, loading its wrapper from the store
/// directory on first use (daemon restart survival).
pub(crate) fn lookup_or_warm(
    shared: &ServiceShared,
    cache: &mut ReaderCache,
    source: &str,
) -> Result<Arc<SourceShard>, String> {
    if let Some(shard) = cache.sources(shared).get(source) {
        return Ok(Arc::clone(shard));
    }
    // Registry writes serialize; re-check under the write lock so two
    // racing warms insert once.
    let _guard = shared
        .registry_write
        .lock()
        .expect("registry write poisoned");
    if let Some(shard) = cache.sources(shared).get(source) {
        return Ok(Arc::clone(shard));
    }
    let path = shared.wrapper_path(source);
    if !path.exists() {
        return Err(format!("unknown source '{source}' (no wrapper stored)"));
    }
    let stored = load_file(&path).map_err(|e| format!("load: {e}"))?;
    let shard = SourceShard::new(source, stored);
    {
        let mut lane = shard.lane();
        let revision = shard.snapshot().revision;
        lane.log.push(format!(
            "loaded: revision {} from {}",
            revision,
            path.display()
        ));
    }
    let inserted = Arc::clone(&shard);
    shared.registry.update(|map| {
        let mut next = map.clone();
        next.insert(source.to_owned(), Arc::clone(&inserted));
        Arc::new(next)
    });
    Ok(shard)
}

/// Register (or replace) a source after a successful induction. A
/// re-induced source keeps its shard identity — readers' cached
/// `SlotReader`s stay valid — but its counters, buffer and log reset,
/// matching a freshly induced source. Induction is rare, so the whole
/// install runs under the registry write guard.
pub(crate) fn install_induced(
    shared: &ServiceShared,
    source: &str,
    stored: StoredWrapper,
    log_line: String,
) {
    let _guard = shared
        .registry_write
        .lock()
        .expect("registry write poisoned");
    if let Some(shard) = shared.registry.load().1.get(source) {
        let mut lane = shard.lane();
        *lane = ShardMut::new();
        lane.touch(shared);
        lane.log.push(log_line);
        shard.slot.store(Arc::new(stored));
        return;
    }
    let shard = SourceShard::new(source, stored);
    {
        let mut lane = shard.lane();
        lane.touch(shared);
        lane.log.push(log_line);
    }
    shared.registry.update(|map| {
        let mut next = map.clone();
        next.insert(source.to_owned(), Arc::clone(&shard));
        Arc::new(next)
    });
}

/// One parsed-and-validated extract request, ready to run.
struct PendingExtract {
    names: Vec<String>,
    pages: Vec<String>,
}

/// Handle a run of `extract` requests against the same source as one
/// batch: one wrapper snapshot, one staged pipeline over the union of
/// their pages, then per-request drift bookkeeping in request order.
/// `reqs.len() == 1` is the plain serial path.
pub(crate) fn extract_batch(
    shared: &ServiceShared,
    cache: &mut ReaderCache,
    reqs: &[&Json],
    spans: &[Span],
    queue_wait_micros: Option<u64>,
) -> Vec<Json> {
    let started = shared.clock.monotonic_micros();
    let source = match reqs[0].get("source").and_then(Json::as_str) {
        Some(s) => s.to_owned(),
        None => return reqs.iter().map(|_| err("missing 'source'")).collect(),
    };

    // Resolve page input per request; a request with bad input gets
    // its error response without poisoning its batch mates.
    let mut pending: Vec<Result<PendingExtract, String>> = Vec::with_capacity(reqs.len());
    for req in reqs {
        pending.push(crate::service::request_named_pages(req).and_then(|named| {
            if named.is_empty() {
                return Err("no pages".to_owned());
            }
            let mut names = Vec::with_capacity(named.len());
            let mut pages = Vec::with_capacity(named.len());
            for (name, html) in named {
                names.push(name);
                pages.push(html);
            }
            Ok(PendingExtract { names, pages })
        }));
    }

    let shard = match lookup_or_warm(shared, cache, &source) {
        Ok(s) => s,
        Err(e) => return reqs.iter().map(|_| err(&e)).collect(),
    };
    let (snap_version, snap) = cache.wrapper(&shard);

    // One staged pipeline over every valid request's pages. The
    // batched run is byte-identical per request to separate runs —
    // every stage is strictly per-page.
    let batch_pages: Vec<&[String]> = pending
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|p| p.pages.as_slice()))
        .collect();
    if batch_pages.is_empty() {
        return pending
            .iter()
            .map(|p| err(p.as_ref().err().expect("all invalid")))
            .collect();
    }
    let first_span = spans
        .iter()
        .zip(&pending)
        .find(|(_, p)| p.is_ok())
        .map(|(s, _)| s)
        .expect("at least one valid request");
    let trace_context = Some(first_span.context()).filter(|_| first_span.is_enabled());
    let mut outcomes: VecDeque<ExtractOutcome> = extract_only_batch(
        &snap.wrapper,
        snap.main_block.as_ref(),
        &snap.clean,
        &batch_pages,
        shared.config.threads,
        &shared.obs,
        trace_context,
        queue_wait_micros,
    )
    .into();

    // Sequential bookkeeping in request order through the shard's
    // mutation lane.
    pending
        .into_iter()
        .zip(spans)
        .map(|(p, span)| match p {
            Err(e) => err(&e),
            Ok(p) => {
                let outcome = outcomes.pop_front().expect("one outcome per valid request");
                process_request(
                    shared,
                    &shard,
                    &source,
                    p,
                    snap_version,
                    Arc::clone(&snap),
                    outcome,
                    span,
                    started,
                )
            }
        })
        .collect()
}

/// Drift-score every prepared document of `outcome` against the
/// wrapper that extracted it.
fn score_outcome(stored: &StoredWrapper, outcome: &ExtractOutcome) -> Vec<f64> {
    outcome
        .docs
        .iter()
        .map(|doc| drift_score(&stored.wrapper.template, &stored.wrapper.mapping, doc).score())
        .collect()
}

/// The per-request tail of a cached extraction: drift bookkeeping,
/// the staleness triggers, repair / re-induction, the durable sink,
/// and the response — everything the serial daemon did, serialized
/// per source through the shard lane.
#[allow(clippy::too_many_arguments)]
fn process_request(
    shared: &ServiceShared,
    shard: &Arc<SourceShard>,
    source: &str,
    req: PendingExtract,
    snap_version: u64,
    mut snap: Arc<StoredWrapper>,
    outcome: ExtractOutcome,
    span: &Span,
    started: u64,
) -> Json {
    let threads = shared.config.threads;
    let threshold = shared.config.drift_threshold;
    let trace_context = Some(span.context()).filter(|_| span.is_enabled());
    let PendingExtract { names, pages } = req;

    // Take the mutation lane. Repairs happen only under this lock, so
    // once held, the snapshot version can no longer move.
    let mut lane = shard.lane();
    let mut outcome = if shard.slot.version() == snap_version {
        outcome
    } else {
        // A batch mate (or a concurrent connection) repaired the
        // wrapper after this request's batched extraction ran. Replay
        // against the current revision — exactly what the serial
        // order would have produced.
        let (_, fresh) = shard.slot.load();
        snap = fresh;
        extract_only_with(
            &snap.wrapper,
            snap.main_block.as_ref(),
            &snap.clean,
            &pages,
            threads,
            &shared.obs,
            trace_context,
            None,
        )
    };
    let domain_name = snap.domain.clone();
    lane.extracts += 1;
    lane.cache_hits += 1;
    lane.touch(shared);

    // Score template drift on the prepared documents.
    let scores = score_outcome(&snap, &outcome);
    let mean_drift = scores.iter().sum::<f64>() / scores.len() as f64;

    // Per-page drift distribution, in thousandths so the integer
    // histogram resolves the 0..=1 score range.
    for &score in &scores {
        shared.obs.histogram_record(
            &format!("objectrunner.serve.drift.score_milli.{domain_name}"),
            &DRIFT_BUCKETS_MILLI,
            (score * 1000.0).round() as u64,
        );
    }

    // Second staleness signal: the silent miss. Record-level markup
    // can change without touching the separator slots the drift score
    // watches — pages then score clean but extract nothing. A batch
    // whose empty-page fraction crosses the threshold is as stale as
    // a drifted one.
    let empty_pages = outcome.per_page.iter().filter(|p| p.is_empty()).count();
    let empty_fraction = empty_pages as f64 / outcome.per_page.len() as f64;
    let silent_miss =
        mean_drift < threshold && empty_fraction >= shared.config.empty_page_threshold;

    // Buffer the suspect pages (bounded, oldest evicted): drifted
    // pages always, and the zero-extraction pages of a silent-miss
    // batch — those are the only evidence of the new template.
    for (i, (page, &score)) in pages.iter().zip(scores.iter()).enumerate() {
        if score >= threshold || (silent_miss && outcome.per_page[i].is_empty()) {
            if lane.buffer.len() == shared.config.buffer_pages {
                lane.buffer.pop_front();
            }
            lane.buffer.push_back((page.clone(), score));
        }
    }

    if lane.state != WrapperState::Stale {
        if mean_drift >= threshold {
            lane.drift_events += 1;
            lane.state = WrapperState::Stale;
            shared
                .obs
                .counter_add("objectrunner.serve.drift.stale_transitions", 1);
            lane.log.push(format!(
                "stale: mean drift {mean_drift:.2} >= {threshold:.2} on revision {}",
                snap.revision
            ));
        } else if silent_miss {
            lane.drift_events += 1;
            lane.state = WrapperState::Stale;
            shared
                .obs
                .counter_add("objectrunner.serve.drift.silent_miss_transitions", 1);
            lane.log.push(format!(
                "stale (silent miss): {empty_pages}/{} pages extracted nothing at \
                 drift {mean_drift:.2} on revision {}",
                outcome.per_page.len(),
                snap.revision
            ));
        }
    }

    let mut reinduced = false;
    let mut repaired_now = false;
    let mut response_drift = mean_drift;
    if lane.state == WrapperState::Stale && lane.buffer.len() >= shared.config.min_reinduce_pages {
        let buffered: Vec<String> = lane.buffer.iter().map(|(p, _)| p.clone()).collect();
        let domain = match Domain::by_name(&snap.domain) {
            Some(d) => d,
            None => return err(&format!("stored domain '{}' unknown", snap.domain)),
        };
        let revision = snap.revision + 1;
        let stored_old: &StoredWrapper = &snap;

        // Repair first: patch the stored wrapper through a tree diff
        // against the drifted template — no induction stages. Only
        // when the patch is declined (container redesign, a lost gap,
        // coverage under the floor) does the full re-induction
        // pipeline run.
        shared
            .obs
            .counter_add("objectrunner.serve.repair.attempts", 1);
        let mut repair_span = match trace_context {
            Some((t, p)) => shared.obs.span_in(t, p, "serve.repair"),
            None => shared.obs.trace("serve.repair"),
        };
        let repair_context = Some(repair_span.context()).filter(|_| repair_span.is_enabled());
        let prepared = extract_only_with(
            &stored_old.wrapper,
            stored_old.main_block.as_ref(),
            &stored_old.clean,
            &buffered,
            threads,
            &shared.obs,
            repair_context,
            None,
        );
        let repair_cfg = RepairConfig {
            coverage_floor: shared.config.repair_floor,
            ..RepairConfig::default()
        };
        let repair = repair_wrapper(
            &stored_old.wrapper,
            &stored_old.sod,
            &prepared.docs,
            &repair_cfg,
        );
        match &repair {
            Ok(r) => {
                repair_span.attr_str("outcome", "repaired");
                repair_span.attr_f64("coverage", r.report.coverage);
                repair_span.attr_u64("remapped_paths", r.report.remapped_paths as u64);
            }
            Err(e) => {
                repair_span.attr_str("outcome", "declined");
                repair_span.attr_str("reason", &e.to_string());
            }
        }
        repair_span.finish();

        let mut decline_note: Option<String> = None;
        let attempt: Result<(StoredWrapper, String, WrapperState), String> = match repair {
            Ok(r) => {
                shared
                    .obs
                    .counter_add("objectrunner.serve.repair.successes", 1);
                let s = r.report.summary;
                let stored = StoredWrapper {
                    revision,
                    wrapper: r.wrapper,
                    repair: Some(RepairProvenance {
                        repaired_from: stored_old.revision,
                        matched_exact: s.matched_exact,
                        matched_container: s.matched_container,
                        unmatched_old: s.unmatched_old,
                        unmatched_new: s.unmatched_new,
                    }),
                    ..stored_old.clone()
                };
                let line = format!(
                    "repaired: revision {revision} from {} buffered pages \
                     ({} exact + {} container node matches, {} paths remapped, \
                     coverage {:.2})",
                    buffered.len(),
                    s.matched_exact,
                    s.matched_container,
                    r.report.remapped_paths,
                    r.report.coverage,
                );
                Ok((stored, line, WrapperState::Repaired))
            }
            Err(reason) => {
                shared
                    .obs
                    .counter_add("objectrunner.serve.repair.fallbacks", 1);
                decline_note = Some(format!("repair declined ({reason}); re-inducing"));
                shared
                    .induce_wrapper(source, domain, revision, &buffered, span)
                    .map(|(stored, _, _)| {
                        shared.obs.counter_add("objectrunner.serve.reinductions", 1);
                        let line = format!(
                            "reinduced: revision {revision} from {} buffered pages",
                            buffered.len()
                        );
                        (stored, line, WrapperState::Reinduced)
                    })
            }
        };

        match attempt {
            Ok((stored, line, new_state)) => {
                if let Err(e) = shared.persist(&stored) {
                    return err(&e);
                }
                shared.obs.gauge_set(
                    &format!("objectrunner.serve.revision.{source}"),
                    revision as i64,
                );
                if let Some(note) = decline_note.take() {
                    lane.log.push(note);
                }
                // Publish the recovered wrapper: readers pick the new
                // revision up with their next atomic version check.
                snap = Arc::new(stored);
                shard.slot.store(Arc::clone(&snap));
                lane.state = new_state;
                lane.buffer.clear();
                lane.log.push(line);
                reinduced = new_state == WrapperState::Reinduced;
                repaired_now = new_state == WrapperState::Repaired;
                // Replay the batch through the patched wrapper.
                outcome = extract_only_with(
                    &snap.wrapper,
                    snap.main_block.as_ref(),
                    &snap.clean,
                    &pages,
                    threads,
                    &shared.obs,
                    trace_context,
                    None,
                );
                let replay = score_outcome(&snap, &outcome);
                response_drift = replay.iter().sum::<f64>() / replay.len() as f64;
            }
            Err(e) => {
                if let Some(note) = decline_note.take() {
                    lane.log.push(note);
                }
                lane.log
                    .push(format!("re-induction failed (still stale): {e}"));
            }
        }
    }
    let final_state = lane.state;
    drop(lane);

    let latency = shared.clock.monotonic_micros().saturating_sub(started);
    shared.obs.histogram_record(
        &format!("objectrunner.serve.extract.latency_micros.{domain_name}"),
        &LATENCY_BUCKETS_MICROS,
        latency,
    );

    // Durable sink: every object of the final (post-repair-replay)
    // batch flows through dedup into the store, tagged with the page
    // it came from and the wrapper revision that extracted it.
    let mut store_section: Option<Json> = None;
    if let Some(store) = &shared.objstore {
        let domain = match Domain::by_name(&snap.domain) {
            Some(d) => d,
            None => return err(&format!("stored domain '{}' unknown", snap.domain)),
        };
        let key_attrs = domain.key_attributes();
        let offers: Vec<IngestObject> = outcome
            .per_page
            .iter()
            .zip(&names)
            .flat_map(|(objects, name)| {
                objects.iter().map(|o| IngestObject {
                    instance: o.clone(),
                    page_id: name.clone(),
                })
            })
            .collect();
        let ctx = IngestContext {
            source,
            domain: domain.name(),
            wrapper_revision: snap.revision,
            repaired_from: snap.repair.as_ref().map(|r| r.repaired_from),
            extracted_unix_micros: shared.clock.wall_unix_micros(),
            confidence: snap.wrapper.quality,
            key_attrs: &key_attrs,
        };
        let result =
            store
                .write()
                .expect("object store poisoned")
                .ingest(offers, &ctx, trace_context);
        match result {
            Ok(r) => {
                store_section = Some(Json::Obj(vec![
                    ("ingested".into(), Json::int(r.ingested)),
                    ("new".into(), Json::int(r.new_objects)),
                    ("fused".into(), Json::int(r.fused)),
                    ("duplicates".into(), Json::int(r.duplicates)),
                    ("skipped".into(), Json::int(r.skipped)),
                ]));
            }
            Err(e) => return err(&format!("object store ingest: {e}")),
        }
    }

    let objects = outcome.objects();
    let mut response = vec![
        ("ok".into(), Json::Bool(true)),
        ("cmd".into(), Json::str("extract")),
        ("source".into(), Json::str(source)),
        ("cache".into(), Json::str("hit")),
        ("revision".into(), Json::int(snap.revision as i64)),
        ("state".into(), Json::str(final_state.as_str())),
        ("drift".into(), Json::Float(response_drift)),
        ("repaired".into(), Json::Bool(repaired_now)),
        ("reinduced".into(), Json::Bool(reinduced)),
        ("count".into(), Json::int(objects.len())),
        (
            "objects".into(),
            Json::Arr(objects.iter().map(|i| instance_json(i)).collect()),
        ),
        ("stats".into(), Json::Raw(outcome.stats.to_json())),
    ];
    if let Some(section) = store_section {
        response.push(("store".into(), section));
    }
    Json::Obj(response)
}
