#!/usr/bin/env bash
# Workspace CI gate: build, test, formatting, and lint-clean.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

# The full suite runs twice: once pinned to a sequential executor and
# once on an 8-worker pool. Each run is a fresh process, so the second
# pass also proves the parallel pipeline reproduces the golden
# snapshots with its own interner state — the cross-process half of
# the determinism guarantee (tests/determinism.rs is the in-process
# half).
echo "==> cargo test (OBJECTRUNNER_THREADS=1)"
OBJECTRUNNER_THREADS=1 cargo test --workspace -q

echo "==> cargo test (OBJECTRUNNER_THREADS=8)"
OBJECTRUNNER_THREADS=8 cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
