//! The annotated template tree (paper §III-D).
//!
//! "The input of the template construction step is a hierarchy of
//! valid equivalence classes … the corresponding template τ can be
//! represented as a similar tree structure, which can be obtained from
//! the hierarchy of classes by replacing each class by its separators
//! and the type annotations on them. We call this the annotated
//! template tree."
//!
//! Each template node corresponds to one equivalence class. Its
//! per-instance role permutation yields `k−1` **gaps** between
//! consecutive separator tokens; a gap either stays empty, holds data
//! words (annotated or not), or hosts the instances of child classes.

use crate::eqclass::EqAnalysis;
use crate::tokens::{RoleId, SourceTokens};
use objectrunner_html::{FxHashMap, PageToken, PathId, Symbol};

/// Multiplicity of a template node relative to its parent instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMultiplicity {
    /// Exactly once per parent instance.
    One,
    /// Zero or one times per parent instance.
    Optional,
    /// Varying count — a set region.
    Repeating,
}

/// What a gap holds across the sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapKind {
    /// No tokens ever observed.
    Empty,
    /// Free text (the candidate data fields).
    Data,
    /// Hosts child template nodes (may also hold data around them).
    Children,
}

/// A separator matcher: how one permutation role is located on an
/// unseen page. Both halves are interned, so matching a stream token
/// against a matcher is two integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Matcher {
    pub token: PageToken,
    pub path: PathId,
}

/// Statistics of one gap.
#[derive(Debug, Clone, Default)]
pub struct GapInfo {
    /// Annotation histogram over word occurrences in the gap.
    pub annotations: FxHashMap<Symbol, usize>,
    /// Number of instances in which the gap held at least one word.
    pub data_instances: usize,
    /// Total instances observed.
    pub total_instances: usize,
    /// Child template nodes hosted in this gap.
    pub children: Vec<usize>,
    /// Sample values (bounded) for diagnostics and tests.
    pub samples: Vec<String>,
}

impl GapInfo {
    /// Gap classification.
    pub fn kind(&self) -> GapKind {
        if !self.children.is_empty() {
            GapKind::Children
        } else if self.data_instances > 0 {
            GapKind::Data
        } else {
            GapKind::Empty
        }
    }

    /// The majority annotation type of the gap, with its share of all
    /// annotated words.
    pub fn majority_annotation(&self) -> Option<(&str, f64)> {
        let total: usize = self.annotations.values().sum();
        if total == 0 {
            return None;
        }
        self.annotations
            .iter()
            .max_by_key(|(t, &c)| (c, std::cmp::Reverse(t.as_str())))
            .map(|(t, &c)| (t.as_str(), c as f64 / total as f64))
    }

    /// All annotation types present in the gap.
    pub fn annotation_types(&self) -> Vec<&str> {
        let mut types: Vec<&str> = self.annotations.keys().map(|s| s.as_str()).collect();
        types.sort_unstable();
        types
    }
}

/// One template node (≙ one equivalence class; node 0 is the synthetic
/// page root).
#[derive(Debug, Clone)]
pub struct TemplateNode {
    /// Backing class in the analysis (`None` for the synthetic root).
    pub class: Option<usize>,
    /// Stable identity of the node across wrapper revisions: assigned
    /// at induction, *preserved* through tree-diff repair (a repaired
    /// node keeps the id of the old node it was matched to, new nodes
    /// get fresh ids). Node *indices* are positional and change on
    /// every rebuild; stable ids are the identities repair provenance
    /// and cross-revision diagnostics talk about.
    pub stable_id: u64,
    /// Multiplicity relative to the parent instance.
    pub multiplicity: NodeMultiplicity,
    /// Separator matchers, in per-instance order.
    pub matchers: Vec<Matcher>,
    /// The permutation roles (sample-side identities of `matchers`).
    pub permutation: Vec<RoleId>,
    /// Gap statistics; `gaps[j]` sits between `matchers[j]` and
    /// `matchers[j+1]`.
    pub gaps: Vec<GapInfo>,
    /// Child template nodes.
    pub children: Vec<usize>,
    /// Parent template node.
    pub parent: Option<usize>,
}

/// The annotated template tree.
#[derive(Debug, Clone)]
pub struct TemplateTree {
    pub nodes: Vec<TemplateNode>,
}

impl TemplateTree {
    /// The synthetic root.
    pub fn root(&self) -> &TemplateNode {
        &self.nodes[0]
    }

    /// Iterate node indices in depth-first order from the root.
    pub fn dfs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Nodes reachable from `start` through `One`/`Optional` edges
    /// only (the tuple-level neighbourhood used by SOD matching —
    /// crossing a `Repeating` edge would change cardinality).
    pub fn tuple_reach(&self, start: usize) -> Vec<usize> {
        let mut out = vec![start];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for &c in &self.nodes[n].children {
                if self.nodes[c].multiplicity != NodeMultiplicity::Repeating {
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Subtree height of each node: 0 for leaves, 1 + max child height
    /// otherwise (the tree-diff top-down pass matches tall subtrees
    /// first).
    pub fn heights(&self) -> Vec<usize> {
        let mut heights = vec![0usize; self.nodes.len()];
        // Children always have larger indices than their class parent
        // is *not* guaranteed, so walk in reverse DFS (post) order.
        let order = self.dfs();
        for &n in order.iter().rev() {
            heights[n] = self.nodes[n]
                .children
                .iter()
                .map(|&c| heights[c] + 1)
                .max()
                .unwrap_or(0);
        }
        heights
    }

    /// Structural hash of the subtree rooted at `node`: the matcher
    /// *token* sequence (kinds + tag/word strings), the node
    /// multiplicity and the child hashes in order. Tag **paths are
    /// deliberately excluded** — drift shifts every path below a
    /// renamed container while the local token structure survives, and
    /// the top-down matching pass must still recognize such subtrees
    /// as isomorphic. Hashes are computed from interned *strings*, so
    /// they are stable across processes and interner states.
    pub fn structural_hash(&self, node: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let n = &self.nodes[node];
        mix(match n.multiplicity {
            NodeMultiplicity::One => b'1',
            NodeMultiplicity::Optional => b'?',
            NodeMultiplicity::Repeating => b'*',
        });
        for m in &n.matchers {
            let (kind, sym) = match m.token {
                PageToken::Open(s) => (b'o', s),
                PageToken::Close(s) => (b'c', s),
                PageToken::Word(s) => (b'w', s),
            };
            mix(kind);
            for &b in sym.as_str().as_bytes() {
                mix(b);
            }
            mix(0);
        }
        for &c in &n.children {
            mix(b'(');
            for &b in self.structural_hash(c).to_le_bytes().iter() {
                mix(b);
            }
            mix(b')');
        }
        h
    }

    /// The largest stable id in the tree (fresh ids after a repair
    /// start above this).
    pub fn max_stable_id(&self) -> u64 {
        self.nodes.iter().map(|n| n.stable_id).max().unwrap_or(0)
    }
}

/// Cap on stored sample values per gap.
const MAX_GAP_SAMPLES: usize = 12;

/// Build the annotated template tree from a class analysis.
pub fn build_template(src: &SourceTokens, analysis: &EqAnalysis) -> TemplateTree {
    let n_classes = analysis.classes.len();
    // Template node index = class id + 1; 0 is the synthetic root.
    let mut nodes: Vec<TemplateNode> = Vec::with_capacity(n_classes + 1);
    nodes.push(TemplateNode {
        class: None,
        stable_id: 0,
        multiplicity: NodeMultiplicity::One,
        matchers: Vec::new(),
        permutation: Vec::new(),
        gaps: vec![GapInfo::default()],
        children: Vec::new(),
        parent: None,
    });
    for class in &analysis.classes {
        let matchers = class
            .permutation
            .iter()
            .map(|&r| {
                let info = src.roles.info(r);
                Matcher {
                    token: info.token,
                    path: info.path,
                }
            })
            .collect();
        let gap_count = class.permutation.len().saturating_sub(1);
        nodes.push(TemplateNode {
            class: Some(class.id),
            // Fresh induction: stable id = node index. Repair preserves
            // these across rebuilds (see `core::treediff`).
            stable_id: (class.id + 1) as u64,
            multiplicity: node_multiplicity(class, analysis),
            matchers,
            permutation: class.permutation.clone(),
            gaps: vec![GapInfo::default(); gap_count],
            children: Vec::new(),
            parent: None,
        });
    }

    // Wire the hierarchy (class parent or synthetic root).
    for class_id in 0..n_classes {
        let node_idx = class_id + 1;
        let parent_idx = analysis.parent[class_id].map(|p| p + 1).unwrap_or(0);
        nodes[node_idx].parent = Some(parent_idx);
        nodes[parent_idx].children.push(node_idx);
    }

    let mut tree = TemplateTree { nodes };
    fill_gap_info(src, analysis, &mut tree);
    tree
}

/// Multiplicity of a class within its parent instances: counts per
/// parent instance over every page.
fn node_multiplicity(class: &crate::eqclass::EqClass, analysis: &EqAnalysis) -> NodeMultiplicity {
    let parent = analysis.parent[class.id];
    let mut counts: Vec<usize> = Vec::new();
    for (page_idx, page_spans) in class.spans.iter().enumerate() {
        match parent {
            None => counts.push(page_spans.len()),
            Some(p) => {
                let parent_spans = &analysis.classes[p].spans[page_idx];
                for &(ps, pe) in parent_spans {
                    let c = page_spans
                        .iter()
                        .filter(|&&(s, _)| ps <= s && s <= pe)
                        .count();
                    counts.push(c);
                }
            }
        }
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    match (min, max) {
        (1, 1) => NodeMultiplicity::One,
        (0, 0 | 1) => NodeMultiplicity::Optional,
        (_, m) if m <= 1 => NodeMultiplicity::Optional,
        _ => NodeMultiplicity::Repeating,
    }
}

/// Populate gap statistics: which gap each word/child falls into.
fn fill_gap_info(src: &SourceTokens, analysis: &EqAnalysis, tree: &mut TemplateTree) {
    // Child-gap assignment: for each non-root node, find which gap of
    // its parent hosts its instances.
    let child_nodes: Vec<usize> = (1..tree.nodes.len()).collect();
    for &node_idx in &child_nodes {
        let parent_idx = tree.nodes[node_idx].parent.expect("non-root");
        if parent_idx == 0 {
            if !tree.nodes[0].gaps[0].children.contains(&node_idx) {
                tree.nodes[0].gaps[0].children.push(node_idx);
            }
            continue;
        }
        let child_class = tree.nodes[node_idx].class.expect("non-root has class");
        let parent_class = tree.nodes[parent_idx].class.expect("checked above");
        if let Some(gap_j) = host_gap(src, analysis, parent_class, child_class) {
            if !tree.nodes[parent_idx].gaps[gap_j]
                .children
                .contains(&node_idx)
            {
                tree.nodes[parent_idx].gaps[gap_j].children.push(node_idx);
            }
        }
    }

    // Word statistics per gap.
    for node_idx in 1..tree.nodes.len() {
        let class_id = tree.nodes[node_idx].class.expect("non-root");
        let class = analysis.classes[class_id].clone();
        let k = class.permutation.len();
        if k < 2 {
            continue;
        }
        for (page_idx, page_spans) in class.spans.iter().enumerate() {
            for &(s, e) in page_spans {
                // Locate the ordered positions of the permutation roles
                // within this instance.
                let mut sep_positions = Vec::with_capacity(k);
                let mut next_role = 0usize;
                for pos in s..=e {
                    if next_role < k
                        && src.pages[page_idx].occs[pos].role == class.permutation[next_role]
                    {
                        sep_positions.push(pos);
                        next_role += 1;
                    }
                }
                if sep_positions.len() != k {
                    continue; // defensive: malformed instance
                }
                for j in 0..k - 1 {
                    let gap = &mut tree.nodes[node_idx].gaps[j];
                    gap.total_instances += 1;
                    let mut words = Vec::new();
                    for pos in sep_positions[j] + 1..sep_positions[j + 1] {
                        let occ = &src.pages[page_idx].occs[pos];
                        // Words not owned by a nested class count as
                        // this gap's data.
                        if occ.is_tag() {
                            continue;
                        }
                        if analysis.role_class.contains_key(&occ.role) {
                            continue;
                        }
                        if inside_other_class(analysis, class_id, page_idx, pos) {
                            continue;
                        }
                        if let PageToken::Word(w) = &occ.token {
                            words.push(w.as_str());
                        }
                        for ann in &occ.all_annotations {
                            *gap.annotations.entry(*ann).or_insert(0) += 1;
                        }
                    }
                    if !words.is_empty() {
                        gap.data_instances += 1;
                        if gap.samples.len() < MAX_GAP_SAMPLES {
                            gap.samples.push(words.join(" "));
                        }
                    }
                }
            }
        }
    }
}

/// Which gap of `parent_class` hosts the instances of `child_class`?
/// Majority vote across instances (they should all agree).
fn host_gap(
    src: &SourceTokens,
    analysis: &EqAnalysis,
    parent_class: usize,
    child_class: usize,
) -> Option<usize> {
    let parent = &analysis.classes[parent_class];
    let child = &analysis.classes[child_class];
    let k = parent.permutation.len();
    if k < 2 {
        return None;
    }
    let mut votes: FxHashMap<usize, usize> = FxHashMap::default();
    for (page_idx, child_spans) in child.spans.iter().enumerate() {
        for &(cs, _ce) in child_spans {
            // Find the parent instance containing this child instance.
            let Some(&(ps, pe)) = parent.spans[page_idx]
                .iter()
                .find(|&&(ps, pe)| ps <= cs && cs <= pe)
            else {
                continue;
            };
            // Locate parent separator positions in that instance.
            let mut sep_positions = Vec::with_capacity(k);
            let mut next_role = 0usize;
            for pos in ps..=pe {
                if next_role < k
                    && src.pages[page_idx].occs[pos].role == parent.permutation[next_role]
                {
                    sep_positions.push(pos);
                    next_role += 1;
                }
            }
            if sep_positions.len() != k {
                continue;
            }
            for j in 0..k - 1 {
                if sep_positions[j] < cs && cs < sep_positions[j + 1] {
                    *votes.entry(j).or_insert(0) += 1;
                    break;
                }
            }
        }
    }
    votes
        .into_iter()
        .max_by_key(|&(j, v)| (v, j))
        .map(|(j, _)| j)
}

/// Is `pos` inside an instance span of some class other than
/// `class_id` that is itself nested within `class_id`'s span?
fn inside_other_class(analysis: &EqAnalysis, class_id: usize, page_idx: usize, pos: usize) -> bool {
    for other in &analysis.classes {
        if other.id == class_id {
            continue;
        }
        // Only consider classes nested below `class_id`.
        let mut anc = analysis.parent[other.id];
        let mut is_descendant = false;
        while let Some(a) = anc {
            if a == class_id {
                is_descendant = true;
                break;
            }
            anc = analysis.parent[a];
        }
        if !is_descendant {
            continue;
        }
        if other.spans[page_idx]
            .iter()
            .any(|&(s, e)| s <= pos && pos <= e)
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use crate::eqclass::EqConfig;
    use crate::roles::{differentiate, DiffConfig};
    use crate::tokens::SourceTokens;
    use objectrunner_html::{parse, NodeKind};
    use std::collections::HashMap as Map;

    fn annotated_concert_pages(counts: &[usize]) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .map(|&n| {
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><div>Artist{i}</div><div>May {d}, 2010</div></li>",
                            d = i + 1
                        )
                    })
                    .collect();
                let mut page = AnnotatedPage {
                    doc: parse(&format!("<body><ul>{recs}</ul></body>")),
                    annotations: Map::new(),
                };
                // Annotate artist and date words.
                let texts: Vec<_> = page
                    .doc
                    .descendants(page.doc.root())
                    .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                    .collect();
                for (idx, t) in texts.iter().enumerate() {
                    let type_name = if idx % 2 == 0 { "artist" } else { "date" };
                    page.annotations.insert(
                        *t,
                        vec![Annotation {
                            type_name: type_name.to_owned(),
                            confidence: 0.9,
                        }],
                    );
                }
                page
            })
            .collect()
    }

    fn build(counts: &[usize]) -> (SourceTokens, TemplateTree) {
        let pages = annotated_concert_pages(counts);
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(
            &mut src,
            &DiffConfig {
                eq: EqConfig {
                    min_support: 3,
                    ..EqConfig::default()
                },
                ..DiffConfig::default()
            },
            |_, _| false,
        );
        let tree = build_template(&src, &outcome.analysis);
        (src, tree)
    }

    #[test]
    fn record_node_is_repeating() {
        let (_, tree) = build(&[1, 2, 3, 2]);
        let repeating: Vec<&TemplateNode> = tree
            .nodes
            .iter()
            .filter(|n| n.multiplicity == NodeMultiplicity::Repeating)
            .collect();
        assert!(!repeating.is_empty(), "record node should repeat");
        // The record node has li + div separators.
        let record = repeating
            .iter()
            .find(|n| n.matchers.iter().any(|m| m.token.render() == "<li>"))
            .expect("li record node");
        assert!(record.matchers.len() >= 6);
    }

    #[test]
    fn gaps_carry_annotation_histograms() {
        let (_, tree) = build(&[1, 2, 3, 2]);
        let mut artist_gap = None;
        let mut date_gap = None;
        for node in &tree.nodes {
            for gap in &node.gaps {
                match gap.majority_annotation() {
                    Some(("artist", _)) => artist_gap = Some(gap.clone()),
                    Some(("date", _)) => date_gap = Some(gap.clone()),
                    _ => {}
                }
            }
        }
        let artist_gap = artist_gap.expect("artist gap");
        let date_gap = date_gap.expect("date gap");
        assert_eq!(artist_gap.kind(), GapKind::Data);
        assert!(artist_gap.samples.iter().any(|s| s.starts_with("Artist")));
        assert!(date_gap.samples.iter().any(|s| s.contains("May")));
    }

    #[test]
    fn distinct_types_map_to_distinct_gaps() {
        let (_, tree) = build(&[2, 2, 3, 1]);
        // No single gap should mix artist and date annotations in this
        // clean source.
        for node in &tree.nodes {
            for gap in &node.gaps {
                let types = gap.annotation_types();
                assert!(
                    types.len() <= 1,
                    "gap mixes annotations: {types:?} ({:?})",
                    gap.samples
                );
            }
        }
    }

    #[test]
    fn root_hosts_top_level_classes() {
        let (_, tree) = build(&[1, 2, 2, 2]);
        assert!(!tree.root().gaps[0].children.is_empty());
        for &c in &tree.root().gaps[0].children {
            assert_eq!(tree.nodes[c].parent, Some(0));
        }
    }

    #[test]
    fn tuple_reach_stops_at_repeating_edges() {
        let (_, tree) = build(&[1, 2, 2, 2]);
        let reach = tree.tuple_reach(0);
        for &n in &reach {
            if n != 0 {
                assert_ne!(
                    tree.nodes[n].multiplicity,
                    NodeMultiplicity::Repeating,
                    "repeating node inside tuple reach"
                );
            }
        }
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let (_, tree) = build(&[1, 2, 3, 2]);
        let order = tree.dfs();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tree.nodes.len());
    }
}
