//! The RoadRunner baseline (Crescenzi, Mecca & Merialdo, VLDB 2001).
//!
//! RoadRunner infers a *union-free regular expression* wrapper by
//! pairwise alignment ("ACME matching"): the wrapper starts as the
//! first page and is generalized against each further page.
//!
//! * **String mismatches** become `#PCDATA` fields.
//! * **Tag mismatches** trigger *optional* discovery (one side has an
//!   extra region) or *iterator* discovery (one side repeats a
//!   "square" — a record template delimited by matching tags).
//!
//! The documented weakness the paper leans on (§IV-B2): when every
//! sample page shows the **same number of records**, no mismatch ever
//! occurs at the list boundary, no iterator is discovered, and each
//! record's values surface as separate fields — "RoadRunner fails to
//! handle list pages that are 'too regular'".

use crate::FlatRecord;
use objectrunner_html::{Document, NodeKind, Symbol};

/// RoadRunner's token alphabet: tags by interned name, whole text
/// nodes as single string tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrToken {
    Open(Symbol),
    Close(Symbol),
    Text(String),
}

/// Flatten a page into RoadRunner tokens.
pub fn rr_tokens(doc: &Document) -> Vec<RrToken> {
    let mut out = Vec::new();
    flatten(doc, doc.root(), &mut out);
    out
}

fn flatten(doc: &Document, id: objectrunner_html::NodeId, out: &mut Vec<RrToken>) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &c in doc.children(id) {
                flatten(doc, c, out);
            }
        }
        NodeKind::Element { name, .. } => {
            out.push(RrToken::Open(*name));
            for &c in doc.children(id) {
                flatten(doc, c, out);
            }
            out.push(RrToken::Close(*name));
        }
        NodeKind::Text(t) => {
            let t = objectrunner_html::dom::normalize_ws(t);
            if !t.is_empty() {
                out.push(RrToken::Text(t));
            }
        }
        NodeKind::Comment(_) => {}
    }
}

/// One item of the union-free regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrItem {
    /// A constant tag.
    Open(Symbol),
    /// A constant closing tag.
    Close(Symbol),
    /// A constant string.
    Text(String),
    /// `#PCDATA` — a variant string field.
    Field,
    /// `( … )?`
    Optional(Vec<RrItem>),
    /// `( … )+`
    Iterator(Vec<RrItem>),
}

/// The induced RoadRunner wrapper.
#[derive(Debug, Clone)]
pub struct RrWrapper {
    pub items: Vec<RrItem>,
    /// Number of `Field`s (pre-order).
    pub arity: usize,
}

/// Induction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrError {
    /// Fewer than two pages.
    TooFewPages,
    /// Alignment failed on every page pair.
    CannotAlign,
}

impl std::fmt::Display for RrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RrError::TooFewPages => write!(f, "need at least two pages"),
            RrError::CannotAlign => write!(f, "pages cannot be aligned"),
        }
    }
}

impl std::error::Error for RrError {}

/// Induce a wrapper from sample pages.
///
/// ACME-style pairwise generalization: the wrapper starts as the first
/// page's token sequence and is aligned against each further page.
/// Alignment walks the two sequences in parallel; at a mismatch it
/// compares *balanced segment runs* (consecutive same-tag subtrees):
/// a single extra segment becomes an optional, two or more become an
/// iterator, and `fold_squares` then merges the literal copies the
/// pairwise phase emitted into the iterator. Iterators therefore only
/// appear when record counts **differ** between pages — which is
/// exactly why constant-count ("too regular") lists defeat RoadRunner.
pub fn induce(docs: &[Document]) -> Result<RrWrapper, RrError> {
    if docs.len() < 2 {
        return Err(RrError::TooFewPages);
    }
    let mut wrapper: Vec<RrItem> = rr_tokens(&docs[0]).iter().map(token_item).collect();
    let mut aligned_any = false;
    for doc in &docs[1..] {
        let page: Vec<RrItem> = rr_tokens(doc).iter().map(token_item).collect();
        let mut steps = 0usize;
        if let Some(generalized) = align_items(&wrapper, &page, &mut steps, 0) {
            wrapper = fold_squares(generalized);
            aligned_any = true;
        }
        // An unalignable page is skipped (RoadRunner keeps the
        // current wrapper).
    }
    if !aligned_any {
        return Err(RrError::CannotAlign);
    }
    let arity = count_fields(&wrapper);
    Ok(RrWrapper {
        items: wrapper,
        arity,
    })
}

fn token_item(tok: &RrToken) -> RrItem {
    match tok {
        RrToken::Open(n) => RrItem::Open(*n),
        RrToken::Close(n) => RrItem::Close(*n),
        RrToken::Text(s) => RrItem::Text(s.clone()),
    }
}

fn count_fields(items: &[RrItem]) -> usize {
    items
        .iter()
        .map(|i| match i {
            RrItem::Field => 1,
            RrItem::Optional(inner) | RrItem::Iterator(inner) => count_fields(inner),
            _ => 0,
        })
        .sum()
}

// ---------------------------------------------------------------------
// Alignment (item sequence x item sequence -> generalized sequence)
// ---------------------------------------------------------------------

/// Backtracking budget.
const MAX_STEPS: usize = 1_500_000;
/// Recursion depth bound.
const MAX_DEPTH: usize = 600;

/// End index (exclusive) of the balanced segment opening at `i`, when
/// `items[i]` is an `Open` tag. Iterators/optionals/fields are opaque
/// (depth 0).
fn balanced_end(items: &[RrItem], i: usize) -> Option<usize> {
    let RrItem::Open(tag) = &items[i] else {
        return None;
    };
    let mut depth = 0i32;
    for (j, item) in items.iter().enumerate().skip(i) {
        match item {
            RrItem::Open(_) => depth += 1,
            RrItem::Close(t) => {
                depth -= 1;
                if depth == 0 {
                    return if t == tag { Some(j + 1) } else { None };
                }
            }
            _ => {}
        }
    }
    None
}

/// `(count, end)` of the run of consecutive balanced `tag` segments
/// starting at `i`.
fn segment_run(items: &[RrItem], i: usize, tag: Symbol) -> (usize, usize) {
    let mut count = 0;
    let mut cur = i;
    while cur < items.len() {
        match &items[cur] {
            RrItem::Open(t) if *t == tag => match balanced_end(items, cur) {
                Some(end) => {
                    count += 1;
                    cur = end;
                }
                None => break,
            },
            _ => break,
        }
    }
    (count, cur)
}

/// Fold-align all balanced `tag` segments in `items[i..end]` into one
/// generalized unit.
fn fold_run(
    items: &[RrItem],
    i: usize,
    tag: Symbol,
    count: usize,
    steps: &mut usize,
    depth: usize,
) -> Option<Vec<RrItem>> {
    let mut cur = i;
    let mut unit: Option<Vec<RrItem>> = None;
    for _ in 0..count {
        let end = balanced_end(items, cur)?;
        let seg = &items[cur..end];
        unit = Some(match unit {
            None => seg.to_vec(),
            Some(u) => align_items(&u, seg, steps, depth + 1)?,
        });
        cur = end;
        let _ = tag;
    }
    unit
}

/// Align two item sequences into a generalized union-free expression.
fn align_items(a: &[RrItem], b: &[RrItem], steps: &mut usize, depth: usize) -> Option<Vec<RrItem>> {
    *steps += 1;
    if *steps > MAX_STEPS || depth > MAX_DEPTH {
        return None;
    }
    match (a.first(), b.first()) {
        (None, None) => return Some(Vec::new()),
        (None, Some(_)) => return Some(vec![RrItem::Optional(b.to_vec())]),
        (Some(_), None) => return Some(vec![RrItem::Optional(a.to_vec())]),
        _ => {}
    }
    let x = &a[0];
    let y = &b[0];

    // 1. Head merges.
    match (x, y) {
        (RrItem::Open(p), RrItem::Open(q)) if p == q => {
            if let Some(rest) = align_items(&a[1..], &b[1..], steps, depth + 1) {
                return Some(cons(RrItem::Open(*p), rest));
            }
        }
        (RrItem::Close(p), RrItem::Close(q)) if p == q => {
            let rest = align_items(&a[1..], &b[1..], steps, depth + 1)?;
            return Some(cons(RrItem::Close(*p), rest));
        }
        (RrItem::Text(s), RrItem::Text(t)) => {
            let head = if s == t {
                RrItem::Text(s.clone())
            } else {
                RrItem::Field
            };
            let rest = align_items(&a[1..], &b[1..], steps, depth + 1)?;
            return Some(cons(head, rest));
        }
        (RrItem::Field, RrItem::Text(_) | RrItem::Field) | (RrItem::Text(_), RrItem::Field) => {
            let rest = align_items(&a[1..], &b[1..], steps, depth + 1)?;
            return Some(cons(RrItem::Field, rest));
        }
        (RrItem::Iterator(u), RrItem::Iterator(v)) => {
            if let Some(unit) = align_items(u, v, steps, depth + 1) {
                if let Some(rest) = align_items(&a[1..], &b[1..], steps, depth + 1) {
                    return Some(cons(RrItem::Iterator(unit), rest));
                }
            }
        }
        (RrItem::Optional(u), RrItem::Optional(v)) => {
            if let Some(unit) = align_items(u, v, steps, depth + 1) {
                if let Some(rest) = align_items(&a[1..], &b[1..], steps, depth + 1) {
                    return Some(cons(RrItem::Optional(unit), rest));
                }
            }
        }
        // An existing iterator absorbs the other side's segment run.
        (RrItem::Iterator(u), _) => {
            if let Some(result) = absorb_into_iterator(u, &a[1..], b, steps, depth) {
                return Some(result);
            }
        }
        (_, RrItem::Iterator(v)) => {
            if let Some(result) = absorb_into_iterator(v, &b[1..], a, steps, depth) {
                return Some(result);
            }
        }
        // An optional takes (or skips) the other side's segment.
        (RrItem::Optional(u), _) => {
            if let Some(result) = optional_vs_seq(u, &a[1..], b, steps, depth) {
                return Some(result);
            }
        }
        (_, RrItem::Optional(v)) => {
            if let Some(result) = optional_vs_seq(v, &b[1..], a, steps, depth) {
                return Some(result);
            }
        }
        _ => {}
    }

    // 2. Extra-segment discovery at mismatches: one side holds a run
    //    of balanced segments the other lacks.
    for (this, other, this_first) in [(a, b, true), (b, a, false)] {
        let _ = this_first;
        if let RrItem::Open(tag) = &this[0] {
            let (count, end) = segment_run(this, 0, *tag);
            if count >= 1 {
                // Would the other side's head follow the run?
                let head = match count {
                    1 => {
                        let seg = this[..end].to_vec();
                        Some(RrItem::Optional(seg))
                    }
                    _ => fold_run(this, 0, *tag, count, steps, depth).map(RrItem::Iterator),
                };
                if let Some(head) = head {
                    let rest = if std::ptr::eq(this.as_ptr(), a.as_ptr()) {
                        align_items(&this[end..], other, steps, depth + 1)
                    } else {
                        align_items(other, &this[end..], steps, depth + 1)
                    };
                    if let Some(rest) = rest {
                        return Some(cons(head, rest));
                    }
                }
            }
        }
    }

    // 3. Single-item skips (stray text, labels).
    for (this, other) in [(a, b), (b, a)] {
        if matches!(this[0], RrItem::Text(_)) {
            let head = RrItem::Optional(vec![this[0].clone()]);
            let rest = if std::ptr::eq(this.as_ptr(), a.as_ptr()) {
                align_items(&this[1..], other, steps, depth + 1)
            } else {
                align_items(other, &this[1..], steps, depth + 1)
            };
            if let Some(rest) = rest {
                return Some(cons(head, rest));
            }
        }
    }
    None
}

fn cons(head: RrItem, rest: Vec<RrItem>) -> Vec<RrItem> {
    let mut out = Vec::with_capacity(rest.len() + 1);
    out.push(head);
    out.extend(rest);
    out
}

/// `Iterator(unit)` on one side meets raw content on the other: the
/// iterator absorbs the other side's run of matching segments (>= 1).
fn absorb_into_iterator(
    unit: &[RrItem],
    this_rest: &[RrItem],
    other: &[RrItem],
    steps: &mut usize,
    depth: usize,
) -> Option<Vec<RrItem>> {
    let RrItem::Open(tag) = unit.first()? else {
        return None;
    };
    let (count, end) = match other.first() {
        Some(RrItem::Open(t)) if t == tag => segment_run(other, 0, *tag),
        _ => (0, 0),
    };
    if count == 0 {
        return None;
    }
    let mut gen = unit.to_vec();
    let mut cur = 0usize;
    for _ in 0..count {
        let seg_end = balanced_end(other, cur)?;
        gen = align_items(&gen, &other[cur..seg_end], steps, depth + 1)?;
        cur = seg_end;
    }
    debug_assert_eq!(cur, end);
    let rest = align_items(this_rest, &other[end..], steps, depth + 1)?;
    Some(cons(RrItem::Iterator(gen), rest))
}

/// `Optional(unit)` on one side meets raw content on the other: take
/// the optional (align it against a matching balanced segment) or skip
/// it.
fn optional_vs_seq(
    unit: &[RrItem],
    this_rest: &[RrItem],
    other: &[RrItem],
    steps: &mut usize,
    depth: usize,
) -> Option<Vec<RrItem>> {
    if let Some(RrItem::Open(tag)) = unit.first() {
        if let Some(RrItem::Open(t)) = other.first() {
            if t == tag {
                if let Some(seg_end) = balanced_end(other, 0) {
                    if let Some(gen) = align_items(unit, &other[..seg_end], steps, depth + 1) {
                        if let Some(rest) =
                            align_items(this_rest, &other[seg_end..], steps, depth + 1)
                        {
                            return Some(cons(RrItem::Optional(gen), rest));
                        }
                    }
                }
            }
        }
    }
    // Skip branch: the optional stays, the other side continues.
    let rest = align_items(this_rest, other, steps, depth + 1)?;
    Some(cons(RrItem::Optional(unit.to_vec()), rest))
}

/// Fold literal square copies that directly precede an equivalent
/// `Iterator(square)` into the iterator: `sq sq (sq)+ ≡ (sq)+`.
fn fold_squares(items: Vec<RrItem>) -> Vec<RrItem> {
    let mut out: Vec<RrItem> = Vec::with_capacity(items.len());
    for item in items {
        let item = match item {
            RrItem::Optional(inner) => RrItem::Optional(fold_squares(inner)),
            RrItem::Iterator(inner) => RrItem::Iterator(fold_squares(inner)),
            other => other,
        };
        if let RrItem::Iterator(square) = &item {
            let n = square.len();
            // Remove any number of compatible copies just before the
            // iterator, generalizing the square as we go.
            let mut merged = square.clone();
            let mut removed = false;
            while n > 0 && out.len() >= n && compatible_run(&out[out.len() - n..], &merged) {
                let start = out.len() - n;
                for (i, prev) in out[start..].iter().enumerate() {
                    merged[i] = generalize_pair(prev, &merged[i]);
                }
                out.truncate(start);
                removed = true;
            }
            if removed {
                out.push(RrItem::Iterator(merged));
                continue;
            }
        }
        out.push(item);
    }
    out
}

fn compatible_run(prev: &[RrItem], square: &[RrItem]) -> bool {
    prev.len() == square.len()
        && prev
            .iter()
            .zip(square.iter())
            .all(|(a, b)| items_compatible(a, b))
}

fn items_compatible(a: &RrItem, b: &RrItem) -> bool {
    match (a, b) {
        (RrItem::Open(x), RrItem::Open(y)) | (RrItem::Close(x), RrItem::Close(y)) => x == y,
        (RrItem::Text(x), RrItem::Text(y)) => x == y,
        (RrItem::Text(_), RrItem::Field)
        | (RrItem::Field, RrItem::Text(_))
        | (RrItem::Field, RrItem::Field) => true,
        (RrItem::Optional(x), RrItem::Optional(y)) | (RrItem::Iterator(x), RrItem::Iterator(y)) => {
            compatible_run(x, y)
        }
        _ => false,
    }
}

fn generalize_pair(a: &RrItem, b: &RrItem) -> RrItem {
    match (a, b) {
        (RrItem::Text(x), RrItem::Text(y)) if x == y => a.clone(),
        (RrItem::Text(_), RrItem::Text(_))
        | (RrItem::Field, RrItem::Text(_))
        | (RrItem::Text(_), RrItem::Field)
        | (RrItem::Field, RrItem::Field) => RrItem::Field,
        (RrItem::Optional(x), RrItem::Optional(y)) => RrItem::Optional(
            x.iter()
                .zip(y.iter())
                .map(|(i, j)| generalize_pair(i, j))
                .collect(),
        ),
        (RrItem::Iterator(x), RrItem::Iterator(y)) => RrItem::Iterator(
            x.iter()
                .zip(y.iter())
                .map(|(i, j)| generalize_pair(i, j))
                .collect(),
        ),
        _ => a.clone(),
    }
}

/// Does one wrapper item strictly match one page token?
fn item_strict_match(item: &RrItem, tok: &RrToken) -> bool {
    match (item, tok) {
        (RrItem::Open(a), RrToken::Open(b)) | (RrItem::Close(a), RrToken::Close(b)) => a == b,
        (RrItem::Text(a), RrToken::Text(b)) => a == b,
        (RrItem::Field, RrToken::Text(_)) => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

/// A captured field value with its iteration context.
#[derive(Debug, Clone)]
struct Capture {
    field: usize,
    value: String,
    /// Iteration index of the *dominant* iterator, if inside one.
    iteration: Option<usize>,
}

impl RrWrapper {
    /// Extract the records of one page.
    ///
    /// When the wrapper contains a dominant iterator (the one with the
    /// most fields), each of its iterations yields one record;
    /// otherwise the whole page is one record (the "too regular"
    /// failure shape: every record's values in separate fields).
    pub fn extract(&self, doc: &Document) -> Vec<FlatRecord> {
        let tokens = rr_tokens(doc);
        let dominant = dominant_iterator(&self.items);
        let mut captures = Vec::new();
        let mut steps = 0usize;
        if capture_items(
            &self.items,
            &tokens,
            0,
            0,
            dominant,
            None,
            &mut captures,
            &mut steps,
        )
        .is_none()
        {
            return Vec::new();
        }
        assemble_records(&captures, self.arity)
    }

    /// Extract from every page.
    pub fn extract_source(&self, docs: &[Document]) -> Vec<FlatRecord> {
        docs.iter().flat_map(|d| self.extract(d)).collect()
    }
}

/// Path (by item address) of the iterator containing the most fields.
fn dominant_iterator(items: &[RrItem]) -> Option<*const Vec<RrItem>> {
    fn walk(items: &[RrItem], best: &mut Option<(usize, *const Vec<RrItem>)>) {
        for item in items {
            match item {
                RrItem::Iterator(inner) => {
                    let f = count_fields(inner);
                    if best.map(|(bf, _)| f > bf).unwrap_or(true) && f > 0 {
                        *best = Some((f, inner as *const Vec<RrItem>));
                    }
                    walk(inner, best);
                }
                RrItem::Optional(inner) => walk(inner, best),
                _ => {}
            }
        }
    }
    let mut best = None;
    walk(items, &mut best);
    best.map(|(_, p)| p)
}

/// Recursive capture-matching with backtracking. Returns the end
/// position on success. `field_base` is the id of the first field in
/// `items`; iterations of one iterator share field ids (multi-valued
/// fields).
#[allow(clippy::too_many_arguments)]
fn capture_items(
    items: &[RrItem],
    page: &[RrToken],
    pi: usize,
    field_base: usize,
    dominant: Option<*const Vec<RrItem>>,
    iteration: Option<usize>,
    captures: &mut Vec<Capture>,
    steps: &mut usize,
) -> Option<usize> {
    *steps += 1;
    if *steps > MAX_STEPS {
        return None;
    }
    let Some((first, rest)) = items.split_first() else {
        return Some(pi);
    };
    let first_fields = count_fields(std::slice::from_ref(first));
    match first {
        RrItem::Open(_) | RrItem::Close(_) | RrItem::Text(_) => {
            if pi < page.len() && item_strict_match(first, &page[pi]) {
                capture_items(
                    rest,
                    page,
                    pi + 1,
                    field_base,
                    dominant,
                    iteration,
                    captures,
                    steps,
                )
            } else {
                None
            }
        }
        RrItem::Field => {
            if pi < page.len() {
                if let RrToken::Text(s) = &page[pi] {
                    captures.push(Capture {
                        field: field_base,
                        value: s.clone(),
                        iteration,
                    });
                    let save = captures.len();
                    match capture_items(
                        rest,
                        page,
                        pi + 1,
                        field_base + 1,
                        dominant,
                        iteration,
                        captures,
                        steps,
                    ) {
                        Some(end) => return Some(end),
                        None => captures.truncate(save - 1),
                    }
                }
            }
            None
        }
        RrItem::Optional(inner) => {
            // Take branch.
            let save = captures.len();
            if let Some(mid) = capture_items(
                inner, page, pi, field_base, dominant, iteration, captures, steps,
            ) {
                if let Some(end) = capture_items(
                    rest,
                    page,
                    mid,
                    field_base + first_fields,
                    dominant,
                    iteration,
                    captures,
                    steps,
                ) {
                    return Some(end);
                }
            }
            captures.truncate(save);
            // Skip branch: fields inside still use up their ids.
            capture_items(
                rest,
                page,
                pi,
                field_base + first_fields,
                dominant,
                iteration,
                captures,
                steps,
            )
        }
        RrItem::Iterator(inner) => {
            let is_dominant = dominant
                .map(|d| std::ptr::eq(d, inner as *const Vec<RrItem>))
                .unwrap_or(false);
            // Greedy repetition with capture checkpoints.
            let mut ends: Vec<(usize, usize)> = Vec::new(); // (page end, captures len)
            let mut cur = pi;
            loop {
                let reps = ends.len();
                let iter_ctx = if is_dominant { Some(reps) } else { iteration };
                let save = captures.len();
                match capture_items(
                    inner, page, cur, field_base, dominant, iter_ctx, captures, steps,
                ) {
                    Some(end) if end > cur => {
                        cur = end;
                        ends.push((end, captures.len()));
                    }
                    _ => {
                        captures.truncate(save);
                        break;
                    }
                }
            }
            // Backtrack over repetition counts, minimum one.
            while let Some(&(end, caps_len)) = ends.last() {
                captures.truncate(caps_len);
                if let Some(fin) = capture_items(
                    rest,
                    page,
                    end,
                    field_base + first_fields,
                    dominant,
                    iteration,
                    captures,
                    steps,
                ) {
                    return Some(fin);
                }
                ends.pop();
                if let Some(&(_, prev_len)) = ends.last() {
                    captures.truncate(prev_len);
                } else {
                    // Zero repetitions is not allowed.
                    break;
                }
            }
            None
        }
    }
}

/// Group captures into records by the dominant iterator's iteration.
fn assemble_records(captures: &[Capture], arity: usize) -> Vec<FlatRecord> {
    let has_iterations = captures.iter().any(|c| c.iteration.is_some());
    if !has_iterations {
        if captures.is_empty() {
            return Vec::new();
        }
        let mut rec = FlatRecord {
            fields: vec![Vec::new(); arity],
        };
        for c in captures {
            rec.fields[c.field].push(c.value.clone());
        }
        return vec![rec];
    }
    let max_iter = captures
        .iter()
        .filter_map(|c| c.iteration)
        .max()
        .unwrap_or(0);
    let mut records = vec![
        FlatRecord {
            fields: vec![Vec::new(); arity],
        };
        max_iter + 1
    ];
    let mut shared: Vec<&Capture> = Vec::new();
    for c in captures {
        match c.iteration {
            Some(it) => records[it].fields[c.field].push(c.value.clone()),
            None => shared.push(c),
        }
    }
    // Page-level fields are replicated onto every record.
    for c in shared {
        for rec in records.iter_mut() {
            rec.fields[c.field].push(c.value.clone());
        }
    }
    records.retain(|r| !r.is_empty());
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;

    fn list_page(records: &[(&str, &str)]) -> Document {
        let recs: String = records
            .iter()
            .map(|(a, d)| format!("<li><b>{a}</b><i>{d}</i></li>"))
            .collect();
        parse(&format!("<html><body><ul>{recs}</ul></body></html>"))
    }

    #[test]
    fn detail_pages_generalize_to_fields() {
        let docs = vec![
            parse("<html><body><h1>Emma</h1><p>Jane Austen</p></body></html>"),
            parse("<html><body><h1>Dune</h1><p>Frank Herbert</p></body></html>"),
        ];
        let wrapper = induce(&docs).expect("wrapper");
        assert_eq!(wrapper.arity, 2);
        let unseen = parse("<html><body><h1>Ulysses</h1><p>James Joyce</p></body></html>");
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fields[0], vec!["Ulysses"]);
        assert_eq!(records[0].fields[1], vec!["James Joyce"]);
    }

    #[test]
    fn varying_record_counts_discover_an_iterator() {
        // Counts must differ by at least two: a single extra segment
        // is indistinguishable from an optional region.
        let docs = vec![
            list_page(&[("A", "d1"), ("B", "d2")]),
            list_page(&[("C", "d3"), ("D", "d4"), ("E", "d5"), ("F", "d6")]),
        ];
        let wrapper = induce(&docs).expect("wrapper");
        assert!(
            wrapper
                .items
                .iter()
                .any(|i| matches!(i, RrItem::Iterator(_))),
            "iterator expected: {:?}",
            wrapper.items
        );
        let unseen = list_page(&[("X", "d8"), ("Y", "d9"), ("Z", "d10"), ("W", "d11")]);
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 4, "{records:?}");
        assert_eq!(records[0].fields.iter().flatten().count(), 2);
    }

    #[test]
    fn too_regular_lists_yield_one_record_with_many_fields() {
        // Constant record count on every sample page: no mismatch at
        // the list boundary, no iterator — the documented failure.
        let docs = vec![
            list_page(&[("A", "d1"), ("B", "d2")]),
            list_page(&[("C", "d3"), ("D", "d4")]),
            list_page(&[("E", "d5"), ("F", "d6")]),
        ];
        let wrapper = induce(&docs).expect("wrapper");
        assert!(
            !wrapper
                .items
                .iter()
                .any(|i| matches!(i, RrItem::Iterator(_))),
            "no iterator should be discovered on constant-count lists"
        );
        assert_eq!(wrapper.arity, 4, "each record's values become fields");
        let unseen = list_page(&[("X", "d8"), ("Y", "d9")]);
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 1, "one page-record, fields separate");
    }

    #[test]
    fn optional_regions_are_discovered() {
        let docs = vec![
            parse("<html><body><h1>T1</h1><em>sale</em><p>A1</p></body></html>"),
            parse("<html><body><h1>T2</h1><p>A2</p></body></html>"),
        ];
        let wrapper = induce(&docs).expect("wrapper");
        assert!(
            wrapper
                .items
                .iter()
                .any(|i| matches!(i, RrItem::Optional(_))),
            "{:?}",
            wrapper.items
        );
        // Both shapes extract.
        let with = parse("<html><body><h1>T3</h1><em>sale</em><p>A3</p></body></html>");
        let without = parse("<html><body><h1>T4</h1><p>A4</p></body></html>");
        assert_eq!(wrapper.extract(&with).len(), 1);
        assert_eq!(wrapper.extract(&without).len(), 1);
    }

    #[test]
    fn too_few_pages_is_an_error() {
        let docs = vec![list_page(&[("A", "d")])];
        assert_eq!(induce(&docs).expect_err("too few"), RrError::TooFewPages);
    }

    #[test]
    fn extraction_on_mismatched_page_is_empty() {
        let docs = vec![
            list_page(&[("A", "d1")]),
            list_page(&[("B", "d2"), ("C", "d3")]),
        ];
        let wrapper = induce(&docs).expect("wrapper");
        let alien = parse("<html><body><table><tr><td>x</td></tr></table></body></html>");
        assert!(wrapper.extract(&alien).is_empty());
    }

    #[test]
    fn rr_tokens_treat_text_nodes_whole() {
        let doc = parse("<p>two words</p>");
        let toks = rr_tokens(&doc);
        assert_eq!(
            toks,
            vec![
                RrToken::Open("p".into()),
                RrToken::Text("two words".into()),
                RrToken::Close("p".into()),
            ]
        );
    }
}
