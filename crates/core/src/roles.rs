//! Role differentiation (paper Algorithm 2).
//!
//! "First, roles of tokens are determined using the HTML format of the
//! page (line 1) … Then, more refined roles of tokens are assigned in
//! the loop, based on appearance positions in equivalence classes
//! (line 3-10). … tokens without conflicting annotations are treated
//! in the loop along with the other criteria (line 9). Once all
//! equivalence classes are computed in this way, we perform one
//! additional iteration … using conflicting annotations (line 11)."
//!
//! Two refinement mechanisms:
//!
//! * **Positional** — when a class's instances repeat a *constant*
//!   number of times inside their parent's instances (the paper's
//!   three `<div>`s per record), the class roles are split by instance
//!   ordinal. "When the number of consecutive occurrences varies from
//!   one page to another, we settle on the minimal number of
//!   consecutive occurrences" — varying counts mean a genuine
//!   repeating (set) region and are left alone.
//! * **By annotation** — tag roles whose occurrences carry
//!   *conflicting* annotations are split by annotation type, with
//!   incomplete annotations generalized to the majority when it holds
//!   ≥ the 0.7 threshold.

use crate::eqclass::{find_classes, EqAnalysis, EqConfig};
use crate::tokens::{RoleId, SourceTokens};
use objectrunner_html::{FxHashMap, Symbol};

/// Differentiation parameters.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Equivalence-class parameters (support etc.).
    pub eq: EqConfig,
    /// Majority threshold for generalizing incomplete annotations
    /// (0.7 in the paper).
    pub conflict_threshold: f64,
    /// Safety bound on outer rounds.
    pub max_rounds: usize,
    /// SOD entity types that live under a set constructor: regions
    /// whose annotations are predominantly of these types repeat
    /// *within* one object and must not be ordinal-split.
    pub set_types: Vec<String>,
    /// Enable the ordinal ("minimal number of consecutive
    /// occurrences") differentiation of §III-C. This is ObjectRunner's
    /// own mechanism: ExAlg differentiates by HTML context and
    /// equivalence-class position only ("the three `<div>` occurrences
    /// would have the same role"), so the ExAlg baseline disables it.
    pub ordinal_split: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            eq: EqConfig::default(),
            conflict_threshold: 0.7,
            max_rounds: 8,
            set_types: Vec::new(),
            ordinal_split: true,
        }
    }
}

/// Result of running Algorithm 2 to fixpoint.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The final class analysis.
    pub analysis: EqAnalysis,
    /// Inner + outer rounds executed.
    pub rounds: usize,
    /// Number of role splits driven by conflicting annotations (a
    /// quality signal: many conflicts ⇒ lower wrapper confidence).
    pub conflict_splits: usize,
    /// True when the caller's abort check fired (§III-E).
    pub aborted: bool,
}

/// Run Algorithm 2: alternate class construction and role
/// differentiation until a fixpoint.
///
/// `abort_check` implements the §III-E wrapper-phase condition: given
/// the current analysis it returns `true` when no partial SOD matching
/// can exist anymore and the process must stop.
pub fn differentiate(
    src: &mut SourceTokens,
    cfg: &DiffConfig,
    mut abort_check: impl FnMut(&EqAnalysis, &SourceTokens) -> bool,
) -> DiffOutcome {
    let mut rounds = 0usize;
    let mut conflict_splits = 0usize;
    let mut analysis = find_classes(src, &cfg.eq);
    // How many distinct entity types are witnessed in this sample —
    // calibrates the object-region test.
    let present_types = count_present_types(src);

    for _outer in 0..cfg.max_rounds {
        // Inner loop: classes + positional refinement to fixpoint.
        loop {
            rounds += 1;
            if abort_check(&analysis, src) {
                return DiffOutcome {
                    analysis,
                    rounds,
                    conflict_splits,
                    aborted: true,
                };
            }
            let changed = cfg.ordinal_split
                && positional_split(src, &analysis, rounds, present_types, &cfg.set_types);
            if !changed || rounds > cfg.max_rounds * 4 {
                break;
            }
            analysis = find_classes(src, &cfg.eq);
        }
        mark_consistent_annotations(src);

        // Outer step: conflicting annotations.
        let splits = conflicting_annotation_split(src, &analysis, cfg.conflict_threshold, rounds);
        conflict_splits += splits;
        if splits == 0 {
            break;
        }
        analysis = find_classes(src, &cfg.eq);
    }

    DiffOutcome {
        analysis,
        rounds,
        conflict_splits,
        aborted: false,
    }
}

/// Split the roles of classes by instance ordinal within their parent
/// instances. Returns whether anything changed.
///
/// When counts vary, the paper's rule applies: "settle on the minimal
/// number of consecutive occurrences across pages, and differentiate
/// roles within this scope" — the first `m_min` instances get distinct
/// roles and the surplus shares one overflow role (the shape optional
/// trailing cells take). Regions whose content is predominantly
/// set-typed (author lists) repeat *within* one object and are left
/// whole.
fn positional_split(
    src: &mut SourceTokens,
    analysis: &EqAnalysis,
    round: usize,
    present_types: usize,
    set_types: &[String],
) -> bool {
    // Plan: occurrence (page, pos) -> ordinal, for roles being split.
    let mut plan: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let mut split_roles: Vec<RoleId> = Vec::new();

    for class in &analysis.classes {
        let parent = analysis.parent[class.id];
        // The SOD's double role (§III-C): a class whose instances span
        // (nearly) all witnessed entity types *and* sit directly at
        // page level is a candidate object region (a record list).
        // Splitting it by ordinal would bake a constant record count
        // into the template — the "too regular" trap the paper calls
        // out for RoadRunner. Cells nested inside another class (the
        // three <div>s around one value each) are safe to split.
        // Ordinals of each class instance within its parent instance.
        let Some((ordinals, spread)) = instance_ordinals(class, parent, analysis) else {
            continue;
        };
        // A wide count spread is repetition evidence (records per
        // page); a spread of one is either an optional trailer (the
        // paper's minimal-occurrences rule) or a narrow set region —
        // set regions repeat within one object and stay whole. Classes
        // with constant counts are never sets.
        if spread > 1 {
            continue;
        }
        if spread == 1 && is_set_region(src, class, set_types) {
            continue;
        }
        // Record-list protection: a class sitting in fixed page
        // structure whose instances cover (nearly) all entity types is
        // the record list — splitting it would bake a constant record
        // count into the template (the "too regular" trap). Without
        // annotations, a large constant count is itself list evidence
        // (detail pages carry a handful of rows, result lists carry
        // many records) — ExAlg treats such classes as iterated.
        if parent_is_page_like(parent, analysis) {
            if is_object_region(src, class, present_types) {
                continue;
            }
            let per_parent = ordinals
                .iter()
                .flatten()
                .copied()
                .max()
                .map(|m| m + 1)
                .unwrap_or(0);
            if spread == 0 && per_parent > MAX_PAGE_FURNITURE {
                continue;
            }
        }
        let m = ordinals
            .iter()
            .flatten()
            .copied()
            .max()
            .map(|mx| mx + 1)
            .unwrap_or(1);
        if m <= 1 {
            continue;
        }
        // Mark every occurrence of every member role with its
        // instance's ordinal.
        for &role in &class.roles {
            split_roles.push(role);
        }
        for (page_idx, page_spans) in class.spans.iter().enumerate() {
            for (inst_idx, &(s, e)) in page_spans.iter().enumerate() {
                let ord = ordinals[page_idx][inst_idx];
                for pos in s..=e {
                    let occ = &src.pages[page_idx].occs[pos];
                    if class.roles.contains(&occ.role) {
                        plan.insert((page_idx, pos), ord);
                    }
                }
            }
        }
    }

    if plan.is_empty() {
        return false;
    }

    // Apply: intern refined roles and rewrite occurrences.
    let mut changed = false;
    for page_idx in 0..src.pages.len() {
        for pos in 0..src.pages[page_idx].occs.len() {
            let Some(&ord) = plan.get(&(page_idx, pos)) else {
                continue;
            };
            let old_role = src.pages[page_idx].occs[pos].role;
            if !split_roles.contains(&old_role) {
                continue;
            }
            let tag = Symbol::intern(&format!("#r{round}o{ord}"));
            let new_role = src.roles.refine(old_role, tag);
            if new_role != old_role {
                src.pages[page_idx].occs[pos].role = new_role;
                changed = true;
            }
        }
    }
    changed
}

/// Constant per-page repetitions up to this count are treated as fixed
/// page furniture (detail rows, column shells); larger constant counts
/// are content lists.
const MAX_PAGE_FURNITURE: usize = 5;

/// Is the parent context fixed page structure: no parent class, or a
/// parent occurring a constant number of times on every page (the
/// skeleton, or constant shells like nav/content/footer)?
fn parent_is_page_like(parent: Option<usize>, analysis: &EqAnalysis) -> bool {
    match parent {
        None => true,
        Some(p) => {
            let v = &analysis.classes[p].vector;
            let first = v.first().copied().unwrap_or(0);
            first > 0 && v.iter().all(|&c| c == first)
        }
    }
}

/// Distinct entity types annotated anywhere in the sample.
fn count_present_types(src: &SourceTokens) -> usize {
    let mut types: Vec<&str> = Vec::new();
    for page in &src.pages {
        for occ in &page.occs {
            for ann in &occ.all_annotations {
                if !types.contains(&ann.as_str()) {
                    types.push(ann.as_str());
                }
            }
        }
    }
    types.len()
}

/// Does some instance of `class` cover (nearly) every witnessed entity
/// type? Such a class delimits whole objects. A cell that merely pairs
/// two of four types (a concert's theater + address) is not a record.
fn is_object_region(
    src: &SourceTokens,
    class: &crate::eqclass::EqClass,
    present_types: usize,
) -> bool {
    let needed = 2.max(present_types.saturating_sub(1));
    for (page_idx, page_spans) in class.spans.iter().enumerate() {
        for &(s, e) in page_spans {
            let mut seen: Vec<&str> = Vec::new();
            for pos in s..=e {
                for ann in &src.pages[page_idx].occs[pos].all_annotations {
                    if !seen.contains(&ann.as_str()) {
                        seen.push(ann.as_str());
                        if seen.len() >= needed {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Is the class's content predominantly set-typed? Count annotated
/// instances: those holding only set-type annotations vs the rest.
fn is_set_region(
    src: &SourceTokens,
    class: &crate::eqclass::EqClass,
    set_types: &[String],
) -> bool {
    if set_types.is_empty() {
        return false;
    }
    let mut pure_set = 0usize;
    let mut other = 0usize;
    for (page_idx, page_spans) in class.spans.iter().enumerate() {
        for &(s, e) in page_spans {
            let mut saw_set = false;
            let mut saw_other = false;
            for pos in s..=e {
                for ann in &src.pages[page_idx].occs[pos].all_annotations {
                    if set_types.iter().any(|t| t == ann.as_str()) {
                        saw_set = true;
                    } else {
                        saw_other = true;
                    }
                }
            }
            match (saw_set, saw_other) {
                (true, false) => pure_set += 1,
                (false, false) => {}
                _ => other += 1,
            }
        }
    }
    pure_set > other
}

/// `ordinals[page][instance]` = index of the class instance within its
/// parent instance, clamped at the minimal per-parent count (the
/// paper's "minimal number of consecutive occurrences" rule: surplus
/// instances share the overflow ordinal `m_min`). Also reports the
/// count spread `m_max − m_min`. Returns `None` when parent instances
/// cannot be resolved.
fn instance_ordinals(
    class: &crate::eqclass::EqClass,
    parent: Option<usize>,
    analysis: &EqAnalysis,
) -> Option<(Vec<Vec<usize>>, usize)> {
    let mut raw: Vec<Vec<usize>> = Vec::with_capacity(class.spans.len());
    let mut min_count: Option<usize> = None;
    let mut max_count: usize = 0;

    for (page_idx, page_spans) in class.spans.iter().enumerate() {
        let mut page_ords = Vec::with_capacity(page_spans.len());
        // Group instances by their parent instance index.
        let mut counts_per_parent: FxHashMap<usize, usize> = FxHashMap::default();
        for &(s, _e) in page_spans {
            let parent_inst = match parent {
                None => 0, // the page itself
                Some(p) => {
                    let spans = &analysis.classes[p].spans[page_idx];
                    spans.iter().position(|&(ps, pe)| ps <= s && s <= pe)?
                }
            };
            let ord = counts_per_parent.entry(parent_inst).or_insert(0);
            page_ords.push(*ord);
            *ord += 1;
        }
        for &count in counts_per_parent.values() {
            min_count = Some(min_count.map(|m: usize| m.min(count)).unwrap_or(count));
            max_count = max_count.max(count);
        }
        raw.push(page_ords);
    }
    let m_min = min_count?;
    if m_min == 0 {
        return None;
    }
    // With a single guaranteed occurrence, "repeats" and "cells plus
    // optional trailer" are indistinguishable without annotations —
    // treat the region as repeating (no split).
    if m_min == 1 && max_count > 1 {
        return None;
    }
    // Clamp ordinals at m_min: surplus occurrences share one role.
    for page_ords in raw.iter_mut() {
        for ord in page_ords.iter_mut() {
            *ord = (*ord).min(m_min);
        }
    }
    Some((raw, max_count - m_min))
}

/// Pass C: record the consistent annotation of roles whose occurrences
/// all agree (or are unannotated).
pub fn mark_consistent_annotations(src: &mut SourceTokens) {
    let mut role_anns: FxHashMap<RoleId, (Option<Symbol>, bool)> = FxHashMap::default(); // (ann, conflicted)
    for page in &src.pages {
        for occ in &page.occs {
            let entry = role_anns.entry(occ.role).or_insert((None, false));
            if entry.1 {
                continue;
            }
            match (&entry.0, &occ.annotation) {
                (_, None) => {}
                (None, Some(a)) => entry.0 = Some(*a),
                (Some(prev), Some(a)) if prev == a => {}
                (Some(_), Some(_)) => entry.1 = true,
            }
        }
    }
    for (role, (ann, conflicted)) in role_anns {
        src.roles.info_mut(role).annotation = if conflicted { None } else { ann };
    }
}

/// Pass D: split *tag* roles whose occurrences carry conflicting
/// annotations. Returns the number of roles split.
///
/// Applied "cautiously" (§III-C): a role is split only when its
/// annotations are *position-deterministic* — within each enclosing
/// instance, the occurrence at ordinal `i` always carries the same
/// annotation bucket. Mixed annotations at one position mean mixed
/// cell content (merged fields), not distinct template roles, and
/// splitting there would tear cells out of the template.
fn conflicting_annotation_split(
    src: &mut SourceTokens,
    analysis: &EqAnalysis,
    threshold: f64,
    round: usize,
) -> usize {
    // Gather annotation histograms per role.
    let mut histograms: FxHashMap<RoleId, FxHashMap<Option<Symbol>, usize>> = FxHashMap::default();
    for page in &src.pages {
        for occ in &page.occs {
            if !occ.is_tag() {
                continue;
            }
            *histograms
                .entry(occ.role)
                .or_default()
                .entry(occ.annotation)
                .or_insert(0) += 1;
        }
    }

    let mut splits = 0usize;
    for (role, hist) in histograms {
        let distinct = hist.keys().filter(|a| a.is_some()).count();
        if distinct < 2 {
            continue; // not conflicting
        }
        // Majority annotation among annotated occurrences. Ties break
        // on the annotation *string*: symbol ids are interning-order
        // dependent and must never decide algorithm output.
        let annotated_total: usize = hist
            .iter()
            .filter(|(a, _)| a.is_some())
            .map(|(_, &c)| c)
            .sum();
        let (majority, majority_count) = hist
            .iter()
            .filter(|(a, _)| a.is_some())
            .max_by_key(|(a, &c)| (c, a.map(|s| s.as_str())))
            .map(|(a, &c)| (*a, c))
            .expect("≥2 distinct annotations");
        // "Generalizing the most frequent one if beyond a given
        // threshold": a dominant majority types the whole position —
        // minority conflicters are annotation noise, and splitting on
        // them would tear a few records' cells out of the template.
        if majority_count as f64 / annotated_total.max(1) as f64 >= threshold {
            src.roles.info_mut(role).annotation = majority;
            continue;
        }
        if !annotations_position_deterministic(src, analysis, role) {
            continue; // mixed content at one position — not a split
        }

        // Genuine conflict: split occurrences by annotation.
        let mut changed_any = false;
        for page_idx in 0..src.pages.len() {
            for pos in 0..src.pages[page_idx].occs.len() {
                if src.pages[page_idx].occs[pos].role != role {
                    continue;
                }
                let ann = src.pages[page_idx].occs[pos].annotation;
                let bucket = ann.map(|s| s.as_str()).unwrap_or("none");
                let tag = Symbol::intern(&format!("~r{round}a:{bucket}"));
                let new_role = src.roles.refine(role, tag);
                if new_role != role {
                    src.pages[page_idx].occs[pos].role = new_role;
                    changed_any = true;
                }
            }
        }
        if changed_any {
            splits += 1;
        }
    }
    splits
}

/// Is the annotation bucket of `role`'s occurrences fully determined
/// by their ordinal within the tightest enclosing class instance?
fn annotations_position_deterministic(
    src: &SourceTokens,
    analysis: &EqAnalysis,
    role: RoleId,
) -> bool {
    // ordinal within instance → the single bucket seen there. The
    // role's own class is excluded: we want the *surrounding* context.
    let own_class = analysis.role_class.get(&role).copied();
    let mut per_ordinal: FxHashMap<usize, Option<Symbol>> = FxHashMap::default();
    for (page_idx, page) in src.pages.iter().enumerate() {
        // Count role occurrences per enclosing instance as we scan.
        let mut counters: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for (pos, occ) in page.occs.iter().enumerate() {
            if occ.role != role {
                continue;
            }
            let key = analysis
                .enclosing_instance_excluding(page_idx, pos, own_class)
                .unwrap_or((usize::MAX, 0));
            let counter = counters.entry(key).or_insert(0);
            let ordinal = *counter;
            *counter += 1;
            match per_ordinal.entry(ordinal) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(occ.annotation);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != occ.annotation {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use objectrunner_html::{parse, NodeKind};
    use std::collections::HashMap as Map;

    fn plain(html: &str) -> AnnotatedPage {
        AnnotatedPage {
            doc: parse(html),
            annotations: Map::new(),
        }
    }

    /// Pages shaped like the paper's running example: every record has
    /// three <div>s at the same path.
    fn running_example(counts: &[usize]) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .map(|&n| {
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><div>artist{i}</div><div>date{i} x</div><div>addr{i} y</div></li>"
                        )
                    })
                    .collect();
                plain(&format!("<body><ul>{recs}</ul></body>"))
            })
            .collect()
    }

    fn cfg() -> DiffConfig {
        DiffConfig::default()
    }

    #[test]
    fn positional_split_separates_the_three_divs() {
        let pages = running_example(&[1, 2, 2, 3]);
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(&mut src, &cfg(), |_, _| false);
        assert!(!outcome.aborted);
        // After differentiation the record class contains three
        // distinct <div> open roles.
        let record = outcome
            .analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![1, 2, 2, 3])
            .expect("record class");
        let div_opens = record
            .roles
            .iter()
            .filter(|&&r| src.roles.info(r).token.render() == "<div>")
            .count();
        assert_eq!(div_opens, 3, "three differentiated <div> roles");
    }

    #[test]
    fn varying_counts_are_not_split() {
        // Author-like repeated region: varying <b> counts per record.
        let htmls = [
            "<ul><li><b>a</b></li><li><b>a</b><b>b</b></li></ul>",
            "<ul><li><b>a</b><b>b</b><b>c</b></li></ul>",
            "<ul><li><b>a</b></li><li><b>a</b></li></ul>",
        ];
        let pages: Vec<AnnotatedPage> = htmls.iter().map(|h| plain(h)).collect();
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(&mut src, &cfg(), |_, _| false);
        // The <b> roles must remain a single (repeating) role pair.
        let b_class = outcome
            .analysis
            .classes
            .iter()
            .find(|c| {
                c.roles
                    .iter()
                    .any(|&r| src.roles.info(r).token.render() == "<b>")
            })
            .expect("b class");
        assert_eq!(b_class.vector, vec![3, 3, 2]);
    }

    #[test]
    fn conflicting_annotations_split_roles_when_structure_cannot() {
        // Two records per page where each record has a *varying*
        // number of <div>s — positional splitting cannot apply — but
        // annotations distinguish artist-divs from date-divs.
        let mk = |extra: usize| {
            let extras: String = (0..extra).map(|i| format!("<div>pad{i} z</div>")).collect();
            let html = format!(
                "<body><ul><li><div>Metallica</div><div>May 11, 2010</div>{extras}</li></ul></body>"
            );
            let mut page = plain(&html);
            // Annotate first div text as artist, second as date.
            let texts: Vec<_> = page
                .doc
                .descendants(page.doc.root())
                .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                .collect();
            page.annotations.insert(
                texts[0],
                vec![Annotation {
                    type_name: "artist".into(),
                    confidence: 0.9,
                }],
            );
            page.annotations.insert(
                texts[1],
                vec![Annotation {
                    type_name: "date".into(),
                    confidence: 0.9,
                }],
            );
            crate::annotate::propagate_upwards(&mut page);
            page
        };
        let pages: Vec<AnnotatedPage> = vec![mk(0), mk(1), mk(2), mk(0)];
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(&mut src, &cfg(), |_, _| false);
        assert!(outcome.conflict_splits > 0, "conflict splits expected");
        // There are now distinct div roles labelled by annotation.
        let labels: Vec<&str> = (0..src.roles.len())
            .map(|i| src.roles.info(RoleId(i as u32)).label.as_str())
            .collect();
        assert!(labels.iter().any(|l| l.contains("a:artist")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("a:date")), "{labels:?}");
    }

    #[test]
    fn consistent_annotations_are_marked_on_roles() {
        let mut page = plain("<ul><li><i>Metallica</i></li><li><i>Muse</i></li></ul>");
        let texts: Vec<_> = page
            .doc
            .descendants(page.doc.root())
            .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .collect();
        for t in texts {
            page.annotations.insert(
                t,
                vec![Annotation {
                    type_name: "artist".into(),
                    confidence: 0.9,
                }],
            );
        }
        crate::annotate::propagate_upwards(&mut page);
        let mut src = SourceTokens::from_pages(std::slice::from_ref(&page));
        mark_consistent_annotations(&mut src);
        let i_role = src.pages[0]
            .occs
            .iter()
            .find(|o| o.token.render() == "<i>")
            .expect("i open")
            .role;
        assert_eq!(
            src.roles.info(i_role).annotation.map(|s| s.as_str()),
            Some("artist")
        );
    }

    #[test]
    fn abort_check_stops_the_process() {
        let pages = running_example(&[1, 2, 2]);
        let mut src = SourceTokens::from_pages(&pages);
        let outcome = differentiate(&mut src, &cfg(), |_, _| true);
        assert!(outcome.aborted);
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn differentiation_terminates_and_is_deterministic() {
        let run = || {
            let pages = running_example(&[2, 3, 2, 4]);
            let mut src = SourceTokens::from_pages(&pages);
            let outcome = differentiate(&mut src, &cfg(), |_, _| false);
            (
                outcome.rounds,
                src.roles.len(),
                outcome.analysis.classes.len(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.0 <= 40);
    }
}
