//! `objectrunner-obs` — the observability layer: hierarchical spans,
//! a typed metrics registry, and canonical exporters (events JSONL,
//! Chrome `trace_event`, human report, legacy `--stats-json`).
//!
//! Design (DESIGN.md §10):
//!
//! * **Dependency-free leaf.** Every other crate may depend on this
//!   one, so it depends on nothing — including `store`; it carries its
//!   own minimal JSON parser for the `obs_check` validator.
//! * **Zero-cost when disabled.** [`Obs::disabled`] is `const`; every
//!   operation on a disabled handle is one branch. The `ci.sh`
//!   bench-smoke stage enforces ≤2% overhead on the annotation bench
//!   with observability *enabled*.
//! * **Deterministic by construction.** Span parenthood is explicit
//!   ([`Span::child`] / [`Obs::span_in`]), never thread-local, so the
//!   trace tree's shape depends only on the code path. Exports sort by
//!   `(trace, id)` and render with fixed key order; the determinism
//!   suite byte-compares span trees across `OBJECTRUNNER_THREADS=1`
//!   and `=8` after normalizing worker-allocated ids.
//!
//! Metric names follow `objectrunner.<crate>.<stage>.<name>`.

pub mod check;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod span;
pub mod window;

pub use clock::{Clock, ClockSource, FakeClock, SystemClock};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, DRIFT_BUCKETS_MILLI,
    LATENCY_BUCKETS_MICROS,
};
pub use span::{AttrValue, Obs, Span, SpanRecord, DEFAULT_SPAN_CAPACITY};
pub use window::{SlidingWindow, WindowConfig, WindowRegistry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Install `obs` as the process-wide handle used by build-level
/// counters in the html / segment / knowledge crates (the crates the
/// pipeline cannot reasonably thread a handle into). First caller
/// wins; returns whether this call installed it.
///
/// Only *enabled* handles are installed — setting a disabled handle is
/// a no-op so the ambient fast path stays a single relaxed load.
pub fn set_global(obs: Obs) -> bool {
    if !obs.is_enabled() {
        return false;
    }
    let installed = GLOBAL.set(obs).is_ok();
    if installed {
        GLOBAL_ENABLED.store(true, Ordering::Release);
    }
    installed
}

/// The process-wide handle, or a disabled one if none was installed.
/// The disabled path is one relaxed atomic load.
#[inline]
pub fn global() -> Obs {
    if !GLOBAL_ENABLED.load(Ordering::Relaxed) {
        return Obs::disabled();
    }
    GLOBAL.get().cloned().unwrap_or(Obs::disabled())
}

/// Is a process-wide handle installed? One relaxed load — the guard
/// instrumented crates use before doing any counting work.
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Bump a counter on the global handle if one is installed. The
/// disabled cost is the `global_enabled` load plus a branch.
#[inline]
pub fn global_count(name: &str, n: u64) {
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        if let Some(obs) = GLOBAL.get() {
            obs.counter_add(name, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global handle is process-wide state, so all assertions about
    // it live in one test (test threads share the process).
    #[test]
    fn global_handle_lifecycle() {
        assert!(
            !set_global(Obs::disabled()),
            "disabled handles are rejected"
        );
        // Before installation the ambient path must be inert…
        // (cannot assert global_enabled()==false here: another test
        // binary run may have installed it — within this unit test
        // binary, we are the only installer.)
        let obs = Obs::enabled();
        assert!(set_global(obs.clone()));
        assert!(global_enabled());
        assert!(!set_global(Obs::enabled()), "first caller wins");
        global_count("objectrunner.test.global", 3);
        global_count("objectrunner.test.global", 4);
        assert_eq!(obs.snapshot().counter("objectrunner.test.global"), 7);
        let via_global = global();
        via_global.counter_add("objectrunner.test.global", 1);
        assert_eq!(obs.snapshot().counter("objectrunner.test.global"), 8);
    }
}
