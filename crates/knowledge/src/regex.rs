//! A small regular-expression engine (Thompson NFA construction with
//! breadth-first simulation — linear time in `input × states`, no
//! catastrophic backtracking).
//!
//! Supported syntax: literals, `.`, character classes `[a-z0-9]` /
//! `[^…]`, escapes `\d \w \s \D \W \S` and escaped metacharacters,
//! repetition `* + ?` and `{n}` / `{n,}` / `{n,m}`, alternation `|`,
//! grouping `( )`, anchors `^ $`. Matching is over `char`s, so Unicode
//! text is safe (classes are ASCII-oriented, as the paper's predefined
//! types need).

use std::fmt;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: Vec<Inst>,
    pattern: String,
    anchored_start: bool,
    anchored_end: bool,
}

/// Errors from [`Regex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Unbalanced parenthesis or bracket.
    Unbalanced(&'static str),
    /// A quantifier with nothing to repeat.
    DanglingQuantifier,
    /// Malformed `{n,m}` repetition.
    BadRepetition,
    /// Trailing backslash.
    TrailingEscape,
    /// Empty character class.
    EmptyClass,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Unbalanced(what) => write!(f, "unbalanced {what}"),
            RegexError::DanglingQuantifier => write!(f, "quantifier with nothing to repeat"),
            RegexError::BadRepetition => write!(f, "malformed {{n,m}} repetition"),
            RegexError::TrailingEscape => write!(f, "trailing backslash"),
            RegexError::EmptyClass => write!(f, "empty character class"),
        }
    }
}

impl std::error::Error for RegexError {}

/// Character matcher for one NFA step.
#[derive(Debug, Clone, PartialEq)]
enum CharClass {
    Literal(char),
    Any,
    Digit(bool),
    Word(bool),
    Space(bool),
    /// Ranges and singletons; `negated` flips membership.
    Set {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => true,
            CharClass::Digit(pos) => c.is_ascii_digit() == *pos,
            CharClass::Word(pos) => (c.is_ascii_alphanumeric() || c == '_') == *pos,
            CharClass::Space(pos) => c.is_whitespace() == *pos,
            CharClass::Set { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                inside != *negated
            }
        }
    }
}

/// NFA instruction.
#[derive(Debug, Clone)]
enum Inst {
    Char(CharClass),
    Split(usize, usize),
    Jmp(usize),
    Match,
}

// ---------------------------------------------------------------------
// Parser: pattern -> AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(CharClass),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    Repeat(Box<Ast>, usize, Option<usize>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let left = self.parse_concat()?;
        if self.chars.peek() == Some(&'|') {
            self.chars.next();
            let right = self.parse_alt()?;
            Ok(Ast::Alt(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some('+') => {
                self.chars.next();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.chars.next();
                Ok(Ast::Quest(Box::new(atom)))
            }
            Some('{') => {
                self.chars.next();
                let (min, max) = self.parse_bounds()?;
                Ok(Ast::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_bounds(&mut self) -> Result<(usize, Option<usize>), RegexError> {
        let mut min_s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                min_s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        let min: usize = min_s.parse().map_err(|_| RegexError::BadRepetition)?;
        match self.chars.next() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                let mut max_s = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() {
                        max_s.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                match self.chars.next() {
                    Some('}') => {
                        let max = if max_s.is_empty() {
                            None
                        } else {
                            let m: usize = max_s.parse().map_err(|_| RegexError::BadRepetition)?;
                            if m < min {
                                return Err(RegexError::BadRepetition);
                            }
                            Some(m)
                        };
                        Ok((min, max))
                    }
                    _ => Err(RegexError::BadRepetition),
                }
            }
            _ => Err(RegexError::BadRepetition),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.chars.next() {
            None => Ok(Ast::Empty),
            Some('(') => {
                let inner = self.parse_alt()?;
                match self.chars.next() {
                    Some(')') => Ok(inner),
                    _ => Err(RegexError::Unbalanced("parenthesis")),
                }
            }
            Some(')') => Err(RegexError::Unbalanced("parenthesis")),
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Char(CharClass::Any)),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => {
                let _ = c;
                Err(RegexError::DanglingQuantifier)
            }
            Some(c) => Ok(Ast::Char(CharClass::Literal(c))),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        match self.chars.next() {
            None => Err(RegexError::TrailingEscape),
            Some('d') => Ok(Ast::Char(CharClass::Digit(true))),
            Some('D') => Ok(Ast::Char(CharClass::Digit(false))),
            Some('w') => Ok(Ast::Char(CharClass::Word(true))),
            Some('W') => Ok(Ast::Char(CharClass::Word(false))),
            Some('s') => Ok(Ast::Char(CharClass::Space(true))),
            Some('S') => Ok(Ast::Char(CharClass::Space(false))),
            Some('n') => Ok(Ast::Char(CharClass::Literal('\n'))),
            Some('t') => Ok(Ast::Char(CharClass::Literal('\t'))),
            Some(c) => Ok(Ast::Char(CharClass::Literal(c))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            negated = true;
            self.chars.next();
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            match self.chars.next() {
                None => return Err(RegexError::Unbalanced("bracket")),
                Some(']') => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    break;
                }
                Some('\\') => {
                    let c = self.chars.next().ok_or(RegexError::TrailingEscape)?;
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    match c {
                        'd' => ranges.push(('0', '9')),
                        'w' => {
                            ranges.push(('a', 'z'));
                            ranges.push(('A', 'Z'));
                            ranges.push(('0', '9'));
                            ranges.push(('_', '_'));
                        }
                        's' => {
                            ranges.push((' ', ' '));
                            ranges.push(('\t', '\t'));
                            ranges.push(('\n', '\n'));
                        }
                        other => pending = Some(other),
                    }
                }
                Some('-') if pending.is_some() && self.chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked");
                    let hi = match self.chars.next() {
                        Some('\\') => self.chars.next().ok_or(RegexError::TrailingEscape)?,
                        Some(c) => c,
                        None => return Err(RegexError::Unbalanced("bracket")),
                    };
                    ranges.push((lo.min(hi), lo.max(hi)));
                }
                Some(c) => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(c);
                }
            }
        }
        if ranges.is_empty() {
            return Err(RegexError::EmptyClass);
        }
        Ok(Ast::Char(CharClass::Set { ranges, negated }))
    }
}

// ---------------------------------------------------------------------
// Compiler: AST -> NFA program
// ---------------------------------------------------------------------

fn compile(ast: &Ast, program: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(cc) => program.push(Inst::Char(cc.clone())),
        Ast::Concat(items) => {
            for item in items {
                compile(item, program);
            }
        }
        Ast::Alt(a, b) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0)); // placeholder -> Split
            compile(a, program);
            let jmp_at = program.len();
            program.push(Inst::Jmp(0)); // placeholder
            let b_start = program.len();
            compile(b, program);
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, b_start);
            program[jmp_at] = Inst::Jmp(end);
        }
        Ast::Star(inner) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0));
            compile(inner, program);
            program.push(Inst::Jmp(split_at));
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, end);
        }
        Ast::Plus(inner) => {
            let start = program.len();
            compile(inner, program);
            let split_at = program.len();
            program.push(Inst::Split(start, split_at + 1));
        }
        Ast::Quest(inner) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0));
            compile(inner, program);
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, end);
        }
        Ast::Repeat(inner, min, max) => {
            for _ in 0..*min {
                compile(inner, program);
            }
            match max {
                None => compile(&Ast::Star(inner.clone()), program),
                Some(m) => {
                    for _ in *min..*m {
                        compile(&Ast::Quest(inner.clone()), program);
                    }
                }
            }
        }
    }
}

impl Regex {
    /// Compile `pattern`. Leading `^` and trailing `$` act as anchors;
    /// without them, [`Regex::find`] scans and [`Regex::is_full_match`]
    /// still requires a whole-string match.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let anchored_start = pattern.starts_with('^');
        let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
        let core = {
            let mut p = pattern;
            if anchored_start {
                p = &p[1..];
            }
            if anchored_end && !p.is_empty() {
                p = &p[..p.len() - 1];
            }
            p
        };
        let mut parser = Parser::new(core);
        let ast = parser.parse_alt()?;
        if parser.chars.next().is_some() {
            return Err(RegexError::Unbalanced("parenthesis"));
        }
        let mut program = Vec::new();
        compile(&ast, &mut program);
        program.push(Inst::Match);
        Ok(Regex {
            program,
            pattern: pattern.to_owned(),
            anchored_start,
            anchored_end,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the *entire* input match?
    pub fn is_full_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        self.match_len_at(&chars, 0, true).is_some()
    }

    /// Find the first match; returns `(byte_start, byte_end)`.
    pub fn find(&self, input: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = input.chars().collect();
        // Byte offset of each char index (plus terminal offset).
        let mut offsets = Vec::with_capacity(chars.len() + 1);
        let mut acc = 0;
        for c in &chars {
            offsets.push(acc);
            acc += c.len_utf8();
        }
        offsets.push(acc);
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            Box::new(std::iter::once(0))
        } else {
            Box::new(0..=chars.len())
        };
        for start in starts {
            if let Some(len) = self.match_len_at(&chars, start, self.anchored_end) {
                return Some((offsets[start], offsets[start + len]));
            }
        }
        None
    }

    /// All non-overlapping matches as `(byte_start, byte_end)`.
    pub fn find_all(&self, input: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut base = 0;
        while base <= input.len() {
            let Some((s, e)) = self.find(&input[base..]) else {
                break;
            };
            out.push((base + s, base + e));
            // Advance past the match (at least one char) to avoid loops.
            let step = if e > s {
                e
            } else {
                match input[base + s..].chars().next() {
                    Some(c) => s + c.len_utf8(),
                    None => break,
                }
            };
            base += step;
            if self.anchored_start {
                break;
            }
        }
        out
    }

    /// Longest match starting exactly at char index `start`; if
    /// `to_end` the match must consume the remaining input. Returns the
    /// match length in chars.
    fn match_len_at(&self, chars: &[char], start: usize, to_end: bool) -> Option<usize> {
        let mut current: Vec<usize> = Vec::new();
        let mut next: Vec<usize> = Vec::new();
        let mut on_current = vec![false; self.program.len()];
        let mut on_next = vec![false; self.program.len()];
        let mut best: Option<usize> = None;

        add_thread(&self.program, 0, &mut current, &mut on_current);
        let mut pos = start;
        loop {
            if current
                .iter()
                .any(|&pc| matches!(self.program[pc], Inst::Match))
            {
                let len = pos - start;
                if !to_end || pos == chars.len() {
                    best = Some(len); // longest-so-far (we keep going)
                }
            }
            if pos >= chars.len() || current.is_empty() {
                break;
            }
            let c = chars[pos];
            next.clear();
            on_next.iter_mut().for_each(|b| *b = false);
            for &pc in &current {
                if let Inst::Char(cc) = &self.program[pc] {
                    if cc.matches(c) {
                        add_thread(&self.program, pc + 1, &mut next, &mut on_next);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut on_current, &mut on_next);
            pos += 1;
        }
        best
    }
}

/// Add a thread and follow epsilon transitions.
fn add_thread(program: &[Inst], pc: usize, list: &mut Vec<usize>, seen: &mut [bool]) {
    if pc >= program.len() || seen[pc] {
        return;
    }
    seen[pc] = true;
    match &program[pc] {
        Inst::Jmp(t) => add_thread(program, *t, list, seen),
        Inst::Split(a, b) => {
            add_thread(program, *a, list, seen);
            add_thread(program, *b, list, seen);
        }
        _ => list.push(pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).expect("pattern should compile")
    }

    #[test]
    fn literal_match() {
        assert!(re("abc").is_full_match("abc"));
        assert!(!re("abc").is_full_match("abd"));
        assert!(!re("abc").is_full_match("abcd"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(re("a.c").is_full_match("axc"));
        assert!(re("[a-c]+").is_full_match("abcabc"));
        assert!(!re("[a-c]+").is_full_match("abd"));
        assert!(re("[^0-9]+").is_full_match("abc"));
        assert!(!re("[^0-9]+").is_full_match("a1c"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d{3}").is_full_match("123"));
        assert!(re(r"\w+").is_full_match("ab_1"));
        assert!(re(r"\s").is_full_match(" "));
        assert!(re(r"\$\d+").is_full_match("$42"));
        assert!(re(r"\D+").is_full_match("abc"));
    }

    #[test]
    fn quantifiers() {
        assert!(re("ab*c").is_full_match("ac"));
        assert!(re("ab*c").is_full_match("abbbc"));
        assert!(re("ab+c").is_full_match("abc"));
        assert!(!re("ab+c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("abc"));
        assert!(!re("ab?c").is_full_match("abbc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(re(r"\d{2,4}").is_full_match("12"));
        assert!(re(r"\d{2,4}").is_full_match("1234"));
        assert!(!re(r"\d{2,4}").is_full_match("1"));
        assert!(!re(r"\d{2,4}").is_full_match("12345"));
        assert!(re(r"a{3}").is_full_match("aaa"));
        assert!(re(r"a{2,}").is_full_match("aaaaa"));
        assert!(!re(r"a{2,}").is_full_match("a"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(re("cat|dog").is_full_match("cat"));
        assert!(re("cat|dog").is_full_match("dog"));
        assert!(!re("cat|dog").is_full_match("cow"));
        assert!(re("(ab)+").is_full_match("ababab"));
        assert!(re("a(b|c)d").is_full_match("abd"));
        assert!(re("a(b|c)d").is_full_match("acd"));
    }

    #[test]
    fn find_scans() {
        assert_eq!(re(r"\d+").find("abc 123 xyz"), Some((4, 7)));
        assert_eq!(re("zzz").find("abc"), None);
    }

    #[test]
    fn find_returns_longest_at_start() {
        assert_eq!(re(r"\d+").find("1234"), Some((0, 4)));
    }

    #[test]
    fn find_all_non_overlapping() {
        let ms = re(r"\d+").find_all("a1b22c333");
        assert_eq!(ms, vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn anchors() {
        assert_eq!(re("^ab").find("xxab"), None);
        assert_eq!(re("^ab").find("abxx"), Some((0, 2)));
        assert_eq!(re("ab$").find("abxx"), None);
        assert_eq!(re("ab$").find("xxab"), Some((2, 4)));
        assert!(re("^ab$").is_full_match("ab"));
    }

    #[test]
    fn unicode_safe() {
        assert!(re("..").is_full_match("é€"));
        let m = re("€").find("a€b").expect("match");
        assert_eq!(&"a€b"[m.0..m.1], "€");
    }

    #[test]
    fn error_cases() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{x}").is_err());
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b against aaaa...c — NFA simulation stays linear.
        let r = re("(a+)+b");
        let input = "a".repeat(200) + "c";
        assert_eq!(r.find(&input), None);
    }

    #[test]
    fn class_with_escape_and_dash() {
        assert!(re(r"[\d-]+").is_full_match("12-34"));
        assert!(re(r"[a\]]+").is_full_match("a]a"));
    }

    #[test]
    fn date_like_pattern() {
        let r = re(
            r"(January|February|March|April|May|June|July|August|September|October|November|December) \d{1,2}, \d{4}",
        );
        assert!(r.find("Concert on August 8, 2010 at 8pm").is_some());
        assert!(r.find("Concert on Augst 8, 2010").is_none());
    }

    #[test]
    fn price_like_pattern() {
        let r = re(r"\$\d+\.\d{2}");
        assert_eq!(r.find("only $12.99 today"), Some((5, 11)));
    }
}
