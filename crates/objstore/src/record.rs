//! The canonical on-disk object record and its JSON codec.
//!
//! A record is one stored *version* of one real-world object: the
//! instance tree, its identity key, and provenance for every atomic
//! attribute value. Provenance is stored run-length style — `provs`
//! holds the distinct provenance entries in first-use order and
//! `attr_prov[i]` names the entry for the `i`-th atom of
//! [`Instance::flatten`] — because all atoms extracted from one page
//! share one provenance, while fusion splices in atoms from others.
//!
//! The codec is canonical the same way the wrapper store's is: fixed
//! key order, insertion-ordered objects, floats in shortest round-trip
//! form. `parse ∘ render` is the identity on rendered records, which
//! is what makes "query results are byte-identical across compaction"
//! checkable at the protocol level.

use crate::ObjStoreError;
use objectrunner_sod::Instance;
use objectrunner_store::Json;

/// Where one attribute value came from.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrProvenance {
    /// Source (site) name the page belongs to.
    pub source: String,
    /// Page identifier within the source (file stem or synthetic id).
    pub page_id: String,
    /// Revision of the wrapper that extracted the value (bumps on
    /// re-induction and repair; see serve's drift lifecycle).
    pub wrapper_revision: u64,
    /// When the extracting wrapper was itself a repair, the revision
    /// it was repaired from (`RepairProvenance` lineage, `.orw` v2).
    pub repaired_from: Option<u64>,
    /// Extraction wall-clock time, microseconds since the Unix epoch.
    pub extracted_unix_micros: u64,
    /// Confidence in the value (the extracting wrapper's induction
    /// quality score in `[0, 1]`).
    pub confidence: f64,
}

impl AttrProvenance {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("source".into(), Json::str(&self.source)),
            ("page".into(), Json::str(&self.page_id)),
            ("revision".into(), Json::int(self.wrapper_revision as i64)),
            (
                "repaired_from".into(),
                match self.repaired_from {
                    Some(r) => Json::int(r as i64),
                    None => Json::Null,
                },
            ),
            (
                "extracted_unix_micros".into(),
                Json::int(self.extracted_unix_micros as i64),
            ),
            ("confidence".into(), Json::Float(self.confidence)),
        ])
    }

    fn from_json(j: &Json, file: &str) -> Result<AttrProvenance, ObjStoreError> {
        let field = |k: &str| {
            j.get(k).ok_or_else(|| ObjStoreError::Malformed {
                file: file.to_owned(),
                detail: format!("provenance missing '{k}'"),
            })
        };
        let str_field = |k: &str| {
            field(k)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| ObjStoreError::Malformed {
                    file: file.to_owned(),
                    detail: format!("provenance '{k}' is not a string"),
                })
        };
        let u64_field = |k: &str| {
            field(k)?
                .as_i64()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| ObjStoreError::Malformed {
                    file: file.to_owned(),
                    detail: format!("provenance '{k}' is not a non-negative integer"),
                })
        };
        let repaired_from = match field("repaired_from")? {
            Json::Null => None,
            other => Some(
                other
                    .as_i64()
                    .and_then(|n| u64::try_from(n).ok())
                    .ok_or_else(|| ObjStoreError::Malformed {
                        file: file.to_owned(),
                        detail: "provenance 'repaired_from' is not null or integer".into(),
                    })?,
            ),
        };
        Ok(AttrProvenance {
            source: str_field("source")?,
            page_id: str_field("page")?,
            wrapper_revision: u64_field("revision")?,
            repaired_from,
            extracted_unix_micros: u64_field("extracted_unix_micros")?,
            confidence: field("confidence")?
                .as_f64()
                .ok_or_else(|| ObjStoreError::Malformed {
                    file: file.to_owned(),
                    detail: "provenance 'confidence' is not a number".into(),
                })?,
        })
    }
}

/// One stored version of one object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// Identity key from `core::dedup::object_key_checked`.
    pub key: String,
    /// Per-key version, 1-based; fusion writes version `n+1`.
    pub version: u64,
    /// Store-wide append sequence number (total order of writes).
    pub seq: u64,
    /// Domain name (e.g. `"Concerts"`).
    pub domain: String,
    /// The object itself.
    pub instance: Instance,
    /// Distinct provenance entries, first-use order.
    pub provs: Vec<AttrProvenance>,
    /// For each atom of `instance.flatten()`, an index into `provs`.
    pub attr_prov: Vec<u32>,
}

impl ObjectRecord {
    /// Provenance of the `i`-th flattened atom.
    pub fn provenance_of(&self, atom: usize) -> &AttrProvenance {
        &self.provs[self.attr_prov[atom] as usize]
    }

    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("key".into(), Json::str(&self.key)),
            ("version".into(), Json::int(self.version as i64)),
            ("seq".into(), Json::int(self.seq as i64)),
            ("domain".into(), Json::str(&self.domain)),
            ("object".into(), instance_json(&self.instance)),
            (
                "provs".into(),
                Json::Arr(self.provs.iter().map(AttrProvenance::to_json).collect()),
            ),
            (
                "attr_prov".into(),
                Json::Arr(
                    self.attr_prov
                        .iter()
                        .map(|&i| Json::int(i as i64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Render to the canonical payload string stored in a segment.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse a segment payload back to a record, validating the
    /// provenance ↔ attribute alignment. `file` names the source file
    /// for error messages.
    pub fn parse(payload: &str, file: &str) -> Result<ObjectRecord, ObjStoreError> {
        let j = Json::parse(payload).map_err(|e| ObjStoreError::Malformed {
            file: file.to_owned(),
            detail: format!("record payload is not JSON: {e}"),
        })?;
        ObjectRecord::from_json(&j, file)
    }

    fn from_json(j: &Json, file: &str) -> Result<ObjectRecord, ObjStoreError> {
        let malformed = |detail: String| ObjStoreError::Malformed {
            file: file.to_owned(),
            detail,
        };
        let field = |k: &str| {
            j.get(k)
                .ok_or_else(|| malformed(format!("record missing '{k}'")))
        };
        let key = field("key")?
            .as_str()
            .ok_or_else(|| malformed("record 'key' is not a string".into()))?
            .to_owned();
        let version = field("version")?
            .as_i64()
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| malformed("record 'version' is not a positive integer".into()))?;
        let seq = field("seq")?
            .as_i64()
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| malformed("record 'seq' is not a non-negative integer".into()))?;
        let domain = field("domain")?
            .as_str()
            .ok_or_else(|| malformed("record 'domain' is not a string".into()))?
            .to_owned();
        let instance = instance_from_json(field("object")?)
            .map_err(|e| malformed(format!("record 'object': {e}")))?;
        let provs = field("provs")?
            .as_arr()
            .ok_or_else(|| malformed("record 'provs' is not an array".into()))?
            .iter()
            .map(|p| AttrProvenance::from_json(p, file))
            .collect::<Result<Vec<_>, _>>()?;
        let attr_prov = field("attr_prov")?
            .as_arr()
            .ok_or_else(|| malformed("record 'attr_prov' is not an array".into()))?
            .iter()
            .map(|n| {
                n.as_i64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| malformed("record 'attr_prov' entry is not an index".into()))
            })
            .collect::<Result<Vec<u32>, _>>()?;

        let atoms = instance.flatten().len();
        if attr_prov.len() != atoms {
            return Err(malformed(format!(
                "provenance misaligned: {} attr_prov entries for {atoms} attribute values",
                attr_prov.len()
            )));
        }
        if let Some(&bad) = attr_prov.iter().find(|&&i| i as usize >= provs.len()) {
            return Err(malformed(format!(
                "attr_prov index {bad} out of range ({} provenance entries)",
                provs.len()
            )));
        }
        if version == 0 {
            return Err(malformed("record 'version' must be >= 1".into()));
        }
        Ok(ObjectRecord {
            key,
            version,
            seq,
            domain,
            instance,
            provs,
            attr_prov,
        })
    }
}

/// Canonical JSON shape of an [`Instance`] — the same shape the serve
/// protocol has emitted since the first extract command:
/// `{"t","v"}` atoms, `{"tuple","fields"}` tuples, `{"set"}` sets.
pub fn instance_json(instance: &Instance) -> Json {
    match instance {
        Instance::Atomic { type_name, value } => Json::Obj(vec![
            ("t".into(), Json::str(type_name)),
            ("v".into(), Json::str(value)),
        ]),
        Instance::Tuple { name, fields } => Json::Obj(vec![
            ("tuple".into(), Json::str(name)),
            (
                "fields".into(),
                Json::Arr(fields.iter().map(instance_json).collect()),
            ),
        ]),
        Instance::Set(items) => Json::Obj(vec![(
            "set".into(),
            Json::Arr(items.iter().map(instance_json).collect()),
        )]),
    }
}

/// Inverse of [`instance_json`].
pub fn instance_from_json(j: &Json) -> Result<Instance, String> {
    if let (Some(t), Some(v)) = (j.get("t"), j.get("v")) {
        let type_name = t.as_str().ok_or("atom 't' is not a string")?;
        let value = v.as_str().ok_or("atom 'v' is not a string")?;
        return Ok(Instance::atomic(type_name, value));
    }
    if let Some(name) = j.get("tuple") {
        let name = name.as_str().ok_or("'tuple' is not a string")?;
        let fields = j
            .get("fields")
            .and_then(Json::as_arr)
            .ok_or("tuple missing 'fields' array")?
            .iter()
            .map(instance_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Instance::Tuple {
            name: name.to_owned(),
            fields,
        });
    }
    if let Some(items) = j.get("set") {
        let items = items
            .as_arr()
            .ok_or("'set' is not an array")?
            .iter()
            .map(instance_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Instance::Set(items));
    }
    Err("instance is none of atom/tuple/set".into())
}

/// Render a record as a query/get hit: key, version, domain, the
/// object tree, and `attrs` — every atomic attribute value with its
/// full provenance. A non-empty `select` projects `attrs` down to the
/// named attribute types and omits the object tree.
pub fn record_json(record: &ObjectRecord, select: &[String]) -> Json {
    let flat = record.instance.flatten();
    let attrs: Vec<Json> = flat
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| select.is_empty() || select.iter().any(|s| s == t))
        .map(|(i, (t, v))| {
            Json::Obj(vec![
                ("t".into(), Json::str(*t)),
                ("v".into(), Json::str(*v)),
                ("prov".into(), record.provenance_of(i).to_json()),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("key".into(), Json::str(&record.key)),
        ("version".into(), Json::int(record.version as i64)),
        ("domain".into(), Json::str(&record.domain)),
    ];
    if select.is_empty() {
        pairs.push(("object".into(), instance_json(&record.instance)));
    }
    pairs.push(("attrs".into(), Json::Arr(attrs)));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov(page: &str) -> AttrProvenance {
        AttrProvenance {
            source: "zvents".into(),
            page_id: page.into(),
            wrapper_revision: 3,
            repaired_from: Some(2),
            extracted_unix_micros: 1_700_000_000_000_000,
            confidence: 0.875,
        }
    }

    fn record() -> ObjectRecord {
        let instance = Instance::Tuple {
            name: "concert".into(),
            fields: vec![
                Instance::atomic("artist", "Metallica"),
                Instance::atomic("date", "May 11, 2010"),
                Instance::Set(vec![
                    Instance::atomic("author", "A"),
                    Instance::atomic("author", "B"),
                ]),
            ],
        };
        ObjectRecord {
            key: "artist=metallica|date=may 11 2010".into(),
            version: 2,
            seq: 17,
            domain: "Concerts".into(),
            instance,
            provs: vec![prov("p1"), prov("p2")],
            attr_prov: vec![0, 0, 1, 1],
        }
    }

    #[test]
    fn record_codec_is_a_fixed_point() {
        let r = record();
        let bytes = r.render();
        let back = ObjectRecord::parse(&bytes, "test").expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.render(), bytes, "render ∘ parse ∘ render is stable");
    }

    #[test]
    fn misaligned_provenance_is_rejected() {
        let mut r = record();
        r.attr_prov.pop();
        let bytes = r.render();
        assert!(matches!(
            ObjectRecord::parse(&bytes, "test"),
            Err(ObjStoreError::Malformed { .. })
        ));
        let mut r = record();
        r.attr_prov[0] = 9;
        assert!(matches!(
            ObjectRecord::parse(&r.render(), "test"),
            Err(ObjStoreError::Malformed { .. })
        ));
    }

    #[test]
    fn instance_codec_round_trips_all_shapes() {
        let r = record();
        let j = instance_json(&r.instance);
        assert_eq!(instance_from_json(&j).expect("round trip"), r.instance);
        assert!(instance_from_json(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn record_json_projects_and_carries_provenance() {
        let r = record();
        let full = record_json(&r, &[]);
        assert!(full.get("object").is_some());
        assert_eq!(full.get("attrs").and_then(Json::as_arr).unwrap().len(), 4);

        let projected = record_json(&r, &["author".to_owned()]);
        assert!(projected.get("object").is_none(), "select omits the tree");
        let attrs = projected.get("attrs").and_then(Json::as_arr).unwrap();
        assert_eq!(attrs.len(), 2);
        for a in attrs {
            assert_eq!(a.get("t").and_then(Json::as_str), Some("author"));
            let p = a.get("prov").expect("every attr carries provenance");
            assert_eq!(p.get("source").and_then(Json::as_str), Some("zvents"));
            assert_eq!(p.get("revision").and_then(Json::as_i64), Some(3));
            assert_eq!(p.get("confidence").and_then(Json::as_f64), Some(0.875));
        }
    }
}
