//! Hearst-pattern instance harvesting (paper §III-A).
//!
//! "These are simple parameterized, textual, patterns like *Artist such
//! as X*, or *X is an Artist*, by which one wants to find the values
//! for the X parameter in the text."
//!
//! Harvested `(instance, type)` pairs are scored with the
//! Str-ICNorm-Thresh metric of McDowell & Cafarella (Eq. 1):
//!
//! ```text
//! score(i,t) = Σ_p count(i,t,p) / ( max(count(i), count25) · count(t) )
//! ```
//!
//! where `count(i,t,p)` is the number of corpus hits of pair `(i,t)`
//! under pattern `p`, `count(i)` the corpus hit count of `i` alone,
//! `count25` the 25th-percentile hit count over all candidates, and
//! `count(t)` the hit count of the type term.

use crate::corpus::Corpus;
use crate::gazetteer::Gazetteer;
use std::collections::HashMap;

/// Which side of the pattern the instance appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// `...anchor INSTANCE...`
    After,
    /// `...INSTANCE anchor...`
    Before,
}

/// One parameterized pattern: the anchor text is formed from the type
/// name, the instance is the capitalized phrase on `side` of it.
#[derive(Debug, Clone)]
pub struct HearstPattern {
    /// Anchor template; `{t}` is replaced by the lower-cased type name.
    pub anchor: &'static str,
    side: Side,
    /// Short name used in reports.
    pub name: &'static str,
}

/// The pattern inventory (mirrors Hearst 1992 plus copula forms).
pub const PATTERNS: &[HearstPattern] = &[
    HearstPattern {
        anchor: "{t}s such as ",
        side: Side::After,
        name: "such-as",
    },
    HearstPattern {
        anchor: " is a {t}",
        side: Side::Before,
        name: "is-a",
    },
    HearstPattern {
        anchor: " is an {t}",
        side: Side::Before,
        name: "is-an",
    },
    HearstPattern {
        anchor: "{t}s , including ",
        side: Side::After,
        name: "including",
    },
    HearstPattern {
        anchor: "{t}s like ",
        side: Side::After,
        name: "like",
    },
    HearstPattern {
        anchor: " and other {t}s",
        side: Side::Before,
        name: "and-other",
    },
];

/// A harvested instance with its Eq. 1 confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Harvested {
    pub instance: String,
    pub score: f64,
    /// Total pattern-supported hits for the pair.
    pub pair_hits: usize,
    /// Corpus hit count of the instance alone.
    pub instance_hits: usize,
}

/// Harvest instances of `type_name` from `corpus` and score them.
///
/// Returns instances sorted by descending score. `min_score` filters
/// the tail (the "Thresh" in Str-ICNorm-Thresh).
pub fn harvest(corpus: &Corpus, type_name: &str, min_score: f64) -> Vec<Harvested> {
    let t = type_name.to_lowercase();
    // count(i, t, p)
    let mut pair_hits: HashMap<String, HashMap<&'static str, usize>> = HashMap::new();
    // Display casing for each normalized instance.
    let mut display: HashMap<String, String> = HashMap::new();

    for sentence in corpus.sentences() {
        for pattern in PATTERNS {
            let anchor = pattern.anchor.replace("{t}", &t);
            let lower = sentence.to_lowercase();
            let Some(pos) = lower.find(&anchor) else {
                continue;
            };
            let candidate = match pattern.side {
                Side::After => capitalized_phrase_after(sentence, pos + anchor.len()),
                Side::Before => capitalized_phrase_before(sentence, pos),
            };
            let Some(candidate) = candidate else { continue };
            let key = candidate.to_lowercase();
            *pair_hits
                .entry(key.clone())
                .or_default()
                .entry(pattern.name)
                .or_insert(0) += 1;
            display.entry(key).or_insert(candidate);
        }
    }

    if pair_hits.is_empty() {
        return Vec::new();
    }

    // count(i) for each candidate, count(t), count25.
    let count_t = corpus.hit_count(&t).max(1);
    let mut instance_hits: HashMap<&str, usize> = HashMap::new();
    for key in pair_hits.keys() {
        instance_hits.insert(key, corpus.hit_count(key));
    }
    let mut all_counts: Vec<usize> = instance_hits.values().copied().collect();
    all_counts.sort_unstable();
    let count25 = percentile(&all_counts, 0.25).max(1);

    let mut out: Vec<Harvested> = pair_hits
        .iter()
        .map(|(key, per_pattern)| {
            let hits: usize = per_pattern.values().sum();
            let ci = instance_hits[key.as_str()];
            let denom = (ci.max(count25) as f64) * (count_t as f64);
            Harvested {
                instance: display[key].clone(),
                score: hits as f64 / denom,
                pair_hits: hits,
                instance_hits: ci,
            }
        })
        .filter(|h| h.score >= min_score)
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.instance.cmp(&b.instance))
    });
    out
}

/// Build a [`Gazetteer`] directly from harvesting results. Scores are
/// rescaled to `(0, 1]` confidences relative to the best instance; term
/// frequency is the corpus hit count.
pub fn harvest_gazetteer(corpus: &Corpus, type_name: &str, min_score: f64) -> Gazetteer {
    let harvested = harvest(corpus, type_name, min_score);
    let mut g = Gazetteer::new();
    let best = harvested.first().map(|h| h.score).unwrap_or(1.0).max(1e-12);
    for h in &harvested {
        g.insert(
            &h.instance,
            (h.score / best).min(1.0),
            h.instance_hits.max(1) as f64,
        );
    }
    g
}

fn percentile(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The capitalized phrase (1–5 words) starting at byte `from`.
fn capitalized_phrase_after(sentence: &str, from: usize) -> Option<String> {
    let words: Vec<&str> = sentence[from..].split_whitespace().collect();
    let mut taken = Vec::new();
    for w in words.iter().take(5) {
        if is_name_word(w) {
            taken.push(trim_punct(w));
        } else {
            break;
        }
    }
    phrase_from(taken)
}

/// The capitalized phrase (1–5 words) ending just before byte `to`.
fn capitalized_phrase_before(sentence: &str, to: usize) -> Option<String> {
    let words: Vec<&str> = sentence[..to].split_whitespace().collect();
    let mut taken: Vec<&str> = Vec::new();
    for w in words.iter().rev().take(5) {
        if is_name_word(w) {
            taken.push(trim_punct(w));
        } else {
            break;
        }
    }
    taken.reverse();
    phrase_from(taken)
}

fn phrase_from(words: Vec<&str>) -> Option<String> {
    let cleaned: Vec<&str> = words.into_iter().filter(|w| !w.is_empty()).collect();
    if cleaned.is_empty() {
        None
    } else {
        Some(cleaned.join(" "))
    }
}

/// A word that can belong to a proper-name phrase: starts with an
/// uppercase letter or digit (e.g. "B.B", "101cd").
fn is_name_word(w: &str) -> bool {
    let w = trim_punct(w);
    w.chars()
        .next()
        .is_some_and(|c| c.is_uppercase() || c.is_ascii_digit())
}

fn trim_punct(w: &str) -> &str {
    w.trim_matches(|c: char| !c.is_alphanumeric() && c != '.' && c != '\'')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    #[test]
    fn harvests_such_as_pattern() {
        let mut c = Corpus::default();
        c.push("famous artists such as Metallica perform .".to_owned());
        let got = harvest(&c, "Artist", 0.0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].instance, "Metallica");
    }

    #[test]
    fn harvests_copula_pattern() {
        let mut c = Corpus::default();
        c.push("Madonna is an artist of renown .".to_owned());
        c.push("Coldplay is a band .".to_owned());
        let artists = harvest(&c, "Artist", 0.0);
        assert!(artists.iter().any(|h| h.instance == "Madonna"));
        let bands = harvest(&c, "Band", 0.0);
        assert!(bands.iter().any(|h| h.instance == "Coldplay"));
    }

    #[test]
    fn multiword_instances_are_captured() {
        let mut c = Corpus::default();
        c.push("venues like Madison Square Garden fill quickly .".to_owned());
        let got = harvest(&c, "Venue", 0.0);
        assert_eq!(got[0].instance, "Madison Square Garden");
    }

    #[test]
    fn redundancy_increases_score() {
        // Both instances have the same background frequency; Metallica
        // has far more pattern-supported mentions, so Eq. 1 scores it
        // higher. (Without background mentions, ICNorm's count(i)
        // normalization would cancel pure redundancy.)
        let c = CorpusBuilder::new(11)
            .support("Metallica", "Artist", 8)
            .support("Obscure Act", "Artist", 1)
            .mention("Metallica", 5)
            .mention("Obscure Act", 5)
            .distractors(20)
            .build();
        let got = harvest(&c, "Artist", 0.0);
        let m = got
            .iter()
            .find(|h| h.instance == "Metallica")
            .expect("found");
        let o = got
            .iter()
            .find(|h| h.instance.eq_ignore_ascii_case("Obscure Act"))
            .expect("found");
        assert!(m.score > o.score, "m={} o={}", m.score, o.score);
    }

    #[test]
    fn background_mentions_normalize_score_down() {
        // Same pattern support, but one instance is everywhere in the
        // corpus (high count(i)) — its normalized score must be lower.
        let c = CorpusBuilder::new(13)
            .support("Rare Band", "Artist", 4)
            .support("Common Word", "Artist", 4)
            .mention("Common Word", 60)
            .distractors(10)
            .build();
        let got = harvest(&c, "Artist", 0.0);
        let rare = got
            .iter()
            .find(|h| h.instance == "Rare Band")
            .expect("found");
        let common = got
            .iter()
            .find(|h| h.instance == "Common Word")
            .expect("found");
        assert!(rare.score > common.score);
    }

    #[test]
    fn threshold_filters_tail() {
        let c = CorpusBuilder::new(17)
            .support("Strong", "Artist", 10)
            .support("Weak", "Artist", 1)
            .mention("Weak", 50)
            .build();
        let all = harvest(&c, "Artist", 0.0);
        assert_eq!(all.len(), 2);
        let strong_only = harvest(&c, "Artist", all[0].score * 0.9);
        assert_eq!(strong_only.len(), 1);
        assert_eq!(strong_only[0].instance, "Strong");
    }

    #[test]
    fn empty_corpus_harvests_nothing() {
        let c = Corpus::default();
        assert!(harvest(&c, "Artist", 0.0).is_empty());
    }

    #[test]
    fn gazetteer_confidences_are_normalized() {
        let c = CorpusBuilder::new(19)
            .support("Alpha", "Artist", 6)
            .support("Beta", "Artist", 2)
            .mention("Alpha", 2)
            .mention("Beta", 6)
            .build();
        let g = harvest_gazetteer(&c, "Artist", 0.0);
        assert_eq!(g.len(), 2);
        let a = g.get("Alpha").expect("entry").confidence;
        let b = g.get("Beta").expect("entry").confidence;
        assert!((a - 1.0).abs() < 1e-9);
        assert!(b < a);
    }

    #[test]
    fn lowercase_following_words_stop_the_phrase() {
        let mut c = Corpus::default();
        c.push("artists such as Muse performed last night .".to_owned());
        let got = harvest(&c, "Artist", 0.0);
        assert_eq!(got[0].instance, "Muse");
    }
}
