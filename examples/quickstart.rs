//! Quickstart: targeted extraction from a small synthetic source.
//!
//! Shows the full two-phase workflow of the paper:
//! 1. describe the targeted objects with an SOD (the "phase-one query"),
//! 2. attach recognizers to its entity types,
//! 3. let ObjectRunner infer the wrapper and extract every object.
//!
//! Run with: `cargo run --example quickstart`

use objectrunner::prelude::*;

fn main() {
    // ── 1. The Structured Object Description ────────────────────────
    // A concert is a tuple of artist, date and venue.
    let sod = SodBuilder::tuple("concert")
        .entity("artist", Multiplicity::One)
        .entity("date", Multiplicity::One)
        .entity("venue", Multiplicity::One)
        .build();
    println!("SOD: {sod}");

    // ── 2. Recognizers ───────────────────────────────────────────────
    // The artist and venue types are dictionary-based (isInstanceOf);
    // dates use the predefined recognizer. Dictionaries are partial on
    // purpose — the paper only assumes ~20% coverage.
    let mut artists = Gazetteer::new();
    for (name, tf) in [("Metallica", 8.0), ("The Iron Echoes", 3.0), ("Muse", 9.0)] {
        artists.insert(name, 0.9, tf);
    }
    let mut venues = Gazetteer::new();
    venues.insert("Madison Square Garden", 0.9, 5.0);
    venues.insert("Bowery Ballroom", 0.9, 4.0);

    let mut recognizers = RecognizerSet::new();
    recognizers.insert("artist", Recognizer::dictionary(artists));
    recognizers.insert("venue", Recognizer::dictionary(venues));
    recognizers.insert("date", Recognizer::predefined_date());

    // ── 3. A small template-generated source ────────────────────────
    let artists_pool = [
        "Metallica",
        "Muse",
        "The Iron Echoes",
        "Coldplay",
        "The Atomic Horizon",
        "Madonna",
        "The Velvet Parade",
        "The Static Union",
    ];
    let venues_pool = [
        "Madison Square Garden",
        "Bowery Ballroom",
        "The Town Hall",
        "Riverside Amphitheater",
        "Apollo Hall",
    ];
    let pages: Vec<String> = (0..12)
        .map(|p| {
            let records: String = (0..(p % 3 + 2))
                .map(|i| {
                    format!(
                        "<li><div>{}</div><div>May {}, 2012 8:00pm</div><div>{}</div></li>",
                        artists_pool[(p * 3 + i) % artists_pool.len()],
                        (p + i) % 27 + 1,
                        venues_pool[(p + 2 * i) % venues_pool.len()],
                    )
                })
                .collect();
            format!(
                "<html><head><title>concerts</title></head><body>\
                 <div class=\"nav\"><a>home</a><a>gigs</a><a>about</a></div>\
                 <div class=\"content\"><ul>{records}</ul></div>\
                 <div class=\"footer\">copyright example terms</div>\
                 </body></html>"
            )
        })
        .collect();

    // ── 4. Run the pipeline ──────────────────────────────────────────
    let outcome = Pipeline::new(sod, recognizers)
        .run_on_html(&pages)
        .expect("the source is template-based and annotatable");

    println!(
        "wrapper built in {:.1} ms (support {}, {} conflicts), extraction {:.2} ms",
        outcome.stats.wrapping_micros as f64 / 1000.0,
        outcome.stats.support_used,
        outcome.stats.conflict_splits,
        outcome.stats.extraction_micros as f64 / 1000.0,
    );
    println!(
        "extracted {} objects from {} pages:",
        outcome.objects.len(),
        pages.len()
    );
    for object in outcome.objects.iter().take(6) {
        println!("  {object}");
    }
    if outcome.objects.len() > 6 {
        println!("  … and {} more", outcome.objects.len() - 6);
    }
}
