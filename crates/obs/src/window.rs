//! Time-bucketed sliding-window aggregation over the injectable
//! [`Clock`](crate::Clock).
//!
//! A [`SlidingWindow`] is a ring of fixed-width time buckets, each
//! holding one mini-histogram (same inclusive-upper-bound layout as
//! [`Histogram`](crate::Histogram)). Recording stamps the value into
//! the bucket owning `now`; a bucket is lazily reset the first time a
//! record lands in its slot under a newer epoch, so there is no
//! background sweeper thread and an idle window costs nothing.
//!
//! Reads merge the buckets covering the last `window_micros` into one
//! [`HistogramSnapshot`], which gives windowed p50/p99/p999 through
//! the existing `quantile` machinery plus event rates via
//! `count / window_seconds`. All arithmetic is on integer microseconds
//! from the handle's clock: under `Clock::fake()` every windowed value
//! is a pure function of the pinned clock and the recorded values,
//! which is what makes `watch` output byte-comparable across thread
//! counts.
//!
//! The current (partial) bucket is included in every window, so rates
//! over short windows undercount slightly while a bucket fills; that
//! bias is bounded by one bucket width and keeps reads O(buckets)
//! with no interpolation state.

use crate::metrics::HistogramSnapshot;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shape of every window in a [`WindowRegistry`]: `buckets` ring slots
/// of `bucket_micros` each. The defaults (64 × 1 s) cover the 60 s
/// window `status.live` reports with a little slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one ring bucket, in clock microseconds.
    pub bucket_micros: u64,
    /// Number of ring slots; the longest observable window is
    /// `buckets * bucket_micros`.
    pub buckets: usize,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            bucket_micros: 1_000_000,
            buckets: 64,
        }
    }
}

/// Sentinel epoch for a slot that has never been written.
const EMPTY: u64 = u64::MAX;

#[derive(Debug)]
struct Slot {
    /// Which absolute bucket (`now / bucket_micros`) this slot holds.
    epoch: u64,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Slot {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.sum = 0;
        self.count = 0;
    }
}

/// One metric's ring of time buckets. Shared behind an `Arc` by the
/// recording path and `status.live` readers; a single mutex guards the
/// ring (windowed metrics are recorded at request rate, not in the
/// pipeline's per-token hot loops).
#[derive(Debug)]
pub struct SlidingWindow {
    bucket_micros: u64,
    bounds: Vec<u64>,
    slots: Mutex<Vec<Slot>>,
}

impl SlidingWindow {
    pub fn new(bounds: &[u64], config: WindowConfig) -> SlidingWindow {
        let buckets = config.buckets.max(1);
        SlidingWindow {
            bucket_micros: config.bucket_micros.max(1),
            bounds: bounds.to_vec(),
            slots: Mutex::new(
                (0..buckets)
                    .map(|_| Slot {
                        epoch: EMPTY,
                        counts: vec![0; bounds.len() + 1],
                        sum: 0,
                        count: 0,
                    })
                    .collect(),
            ),
        }
    }

    /// Record `value` into the bucket owning `now_micros`. A record
    /// stamped with a clock reading older than what its ring slot
    /// already holds (a reader raced a slow writer across a full ring
    /// revolution) is dropped rather than corrupting a newer bucket.
    pub fn record(&self, now_micros: u64, value: u64) {
        let epoch = now_micros / self.bucket_micros;
        let mut slots = self.slots.lock().expect("window ring poisoned");
        let n = slots.len();
        let slot = &mut slots[(epoch as usize) % n];
        if slot.epoch != epoch {
            if slot.epoch != EMPTY && slot.epoch > epoch {
                return;
            }
            slot.reset(epoch);
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        slot.counts[idx] += 1;
        slot.sum += value;
        slot.count += 1;
    }

    /// Merge the buckets covering the last `window_micros` (ending at
    /// `now_micros`, current partial bucket included) into one
    /// histogram snapshot. Windows longer than the ring are clamped to
    /// the ring span.
    pub fn snapshot(&self, now_micros: u64, window_micros: u64) -> HistogramSnapshot {
        let slots = self.slots.lock().expect("window ring poisoned");
        let span = (window_micros / self.bucket_micros)
            .max(1)
            .min(slots.len() as u64);
        let now_epoch = now_micros / self.bucket_micros;
        let from_epoch = now_epoch.saturating_sub(span - 1);
        let mut merged = HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: vec![0; self.bounds.len() + 1],
            sum: 0,
            count: 0,
        };
        for slot in slots.iter() {
            if slot.epoch == EMPTY || slot.epoch < from_epoch || slot.epoch > now_epoch {
                continue;
            }
            for (acc, &c) in merged.counts.iter_mut().zip(slot.counts.iter()) {
                *acc += c;
            }
            merged.sum += slot.sum;
            merged.count += slot.count;
        }
        merged
    }

    /// Events per second over the last `window_micros` (clamped to the
    /// ring span, like [`snapshot`](SlidingWindow::snapshot)).
    pub fn rate(&self, now_micros: u64, window_micros: u64) -> f64 {
        let slots_len = self.slots.lock().expect("window ring poisoned").len() as u64;
        let span = (window_micros / self.bucket_micros).max(1).min(slots_len);
        let effective_micros = span * self.bucket_micros;
        let count = self.snapshot(now_micros, window_micros).count;
        count as f64 / (effective_micros as f64 / 1_000_000.0)
    }
}

/// Name → window map mirroring the histogram registry: every
/// histogram recorded through a windows-enabled [`Obs`](crate::Obs)
/// handle also lands in a window created on first use with the same
/// bucket bounds.
#[derive(Debug)]
pub struct WindowRegistry {
    config: WindowConfig,
    windows: Mutex<BTreeMap<String, Arc<SlidingWindow>>>,
}

impl WindowRegistry {
    pub fn new(config: WindowConfig) -> WindowRegistry {
        WindowRegistry {
            config,
            windows: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The window registered under `name` (created on first use;
    /// `bounds` applies only then, like the histogram registry).
    pub fn window(&self, name: &str, bounds: &[u64]) -> Arc<SlidingWindow> {
        let mut map = self.windows.lock().expect("window registry poisoned");
        match map.get(name) {
            Some(w) => Arc::clone(w),
            None => {
                let w = Arc::new(SlidingWindow::new(bounds, self.config));
                map.insert(name.to_owned(), Arc::clone(&w));
                w
            }
        }
    }

    /// Look up an existing window without creating one.
    pub fn get(&self, name: &str) -> Option<Arc<SlidingWindow>> {
        self.windows
            .lock()
            .expect("window registry poisoned")
            .get(name)
            .map(Arc::clone)
    }

    /// Record into the named window (created on first use).
    pub fn record(&self, name: &str, bounds: &[u64], now_micros: u64, value: u64) {
        self.window(name, bounds).record(now_micros, value);
    }

    /// All registered window names, sorted (BTreeMap order) — the
    /// deterministic iteration order `status.live` renders in.
    pub fn names(&self) -> Vec<String> {
        self.windows
            .lock()
            .expect("window registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(bucket_micros: u64, buckets: usize) -> SlidingWindow {
        SlidingWindow::new(
            &[10, 100],
            WindowConfig {
                bucket_micros,
                buckets,
            },
        )
    }

    #[test]
    fn records_within_one_bucket_aggregate() {
        let w = window(1_000_000, 8);
        w.record(0, 5);
        w.record(999_999, 50); // same bucket: inclusive of the whole width
        let s = w.snapshot(999_999, 1_000_000);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 55);
        assert_eq!(s.counts, vec![1, 1, 0]);
    }

    #[test]
    fn bucket_boundary_rolls_over() {
        let w = window(1_000_000, 8);
        w.record(999_999, 5);
        w.record(1_000_000, 50); // first micro of the next bucket
                                 // A 1s window at t=1_000_000 sees only the new bucket.
        let s = w.snapshot(1_000_000, 1_000_000);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 50);
        // A 2s window sees both.
        let s2 = w.snapshot(1_000_000, 2_000_000);
        assert_eq!(s2.count, 2);
        assert_eq!(s2.sum, 55);
    }

    #[test]
    fn old_buckets_age_out_of_the_window() {
        let w = window(1_000_000, 8);
        w.record(0, 5);
        w.record(5_000_000, 50);
        // 3s window ending at t=5s: covers epochs 3..=5 only.
        let s = w.snapshot(5_000_000, 3_000_000);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 50);
    }

    #[test]
    fn ring_wraparound_resets_stale_slots() {
        let w = window(1_000_000, 4);
        w.record(0, 5); // epoch 0 → slot 0
        w.record(4_000_000, 50); // epoch 4 → slot 0 again: must reset
        let s = w.snapshot(4_000_000, 4_000_000);
        assert_eq!(s.count, 1, "epoch-0 data must not leak into epoch 4");
        assert_eq!(s.sum, 50);
    }

    #[test]
    fn window_longer_than_ring_is_clamped() {
        let w = window(1_000_000, 4);
        for epoch in 0..6u64 {
            w.record(epoch * 1_000_000, 5);
        }
        // Asking for 60s of history from a 4-bucket ring yields the
        // ring span (epochs 2..=5 survive; 0 and 1 were overwritten).
        let s = w.snapshot(5_000_000, 60_000_000);
        assert_eq!(s.count, 4);
        // Rate divides by the effective (clamped) span, not 60s.
        let r = w.rate(5_000_000, 60_000_000);
        assert!((r - 1.0).abs() < 1e-9, "4 events / 4s, got {r}");
    }

    #[test]
    fn late_records_older_than_the_slot_are_dropped() {
        let w = window(1_000_000, 4);
        w.record(4_000_000, 50); // epoch 4 owns slot 0
        w.record(0, 5); // epoch 0 maps to slot 0 but is older: dropped
        let s = w.snapshot(4_000_000, 4_000_000);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 50);
    }

    #[test]
    fn windowed_quantiles_use_bucket_bounds() {
        let w = window(1_000_000, 8);
        for v in [1, 2, 3, 50, 60, 5_000] {
            w.record(500_000, v);
        }
        let s = w.snapshot(500_000, 1_000_000);
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(0.99), 100, "overflow reports the last bound");
    }

    #[test]
    fn rates_over_multiple_windows() {
        let w = window(1_000_000, 64);
        // 10 events in the current second, 2 in the previous.
        for _ in 0..2 {
            w.record(8_000_000, 7);
        }
        for _ in 0..10 {
            w.record(9_000_000, 7);
        }
        assert!((w.rate(9_000_000, 1_000_000) - 10.0).abs() < 1e-9);
        assert!((w.rate(9_000_000, 10_000_000) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn registry_creates_on_first_use_and_lists_names() {
        let reg = WindowRegistry::new(WindowConfig::default());
        assert!(reg.get("objectrunner.test.h").is_none());
        reg.record("objectrunner.test.h", &[10], 0, 3);
        reg.record("objectrunner.test.a", &[10], 0, 3);
        assert_eq!(
            reg.names(),
            vec!["objectrunner.test.a", "objectrunner.test.h"]
        );
        let w = reg.get("objectrunner.test.h").expect("created");
        assert_eq!(w.snapshot(0, 1_000_000).count, 1);
    }
}
