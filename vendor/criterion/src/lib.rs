//! Offline stand-in for the `criterion` crate.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock harness:
//! a short warm-up, `sample_size` timed samples, and a median/mean
//! report on stdout. No statistics beyond that; the numbers are for
//! relative comparisons in EXPERIMENTS.md, not publication.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.default_sample_size, None, |b| f(b));
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation; folded into the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `sample_size` samples of the routine (one call per sample
    /// after a single untimed warm-up call).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.target_samples.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let mut line = format!(
        "{label:<48} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        bencher.samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!("  {:.1} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test` may pass
            // test-harness flags. Only a plain or `--bench` invocation
            // runs the benchmarks, mirroring criterion's behavior.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 7), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            })
        });
        group.finish();
        // one warm-up + sample_size timed calls
        assert_eq!(calls, 4);
        c.bench_function("plain", |b| b.iter(|| 42));
    }
}
